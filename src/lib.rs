//! # relm
//!
//! A complete reproduction of *"Black or White? How to Develop an AutoTuner
//! for Memory-based Analytics"* (Kunjir & Babu, SIGMOD 2020) as a Rust
//! workspace — the RelM white-box memory tuner, Guided Bayesian
//! Optimization, and the full simulated Spark/YARN/JVM substrate the
//! evaluation needs.
//!
//! This facade crate re-exports the public API of every workspace member:
//!
//! ```
//! use relm::prelude::*;
//!
//! // Simulate PageRank on the paper's 8-node cluster under the vendor
//! // defaults, then let RelM recommend a configuration from that single
//! // profiled run.
//! let engine = Engine::new(ClusterSpec::cluster_a());
//! let app = pagerank();
//! let mut env = TuningEnv::new(engine, app, 42);
//! let mut relm = RelmTuner::default();
//! let rec = relm.tune(&mut env).unwrap();
//! assert!(rec.evaluations <= 2); // one or two profiled runs, per the paper
//! rec.config.validate().unwrap();
//! ```
//!
//! See `DESIGN.md` for the crate inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use relm_app as app;
pub use relm_bo as bayesopt;
pub use relm_cluster as cluster;
pub use relm_common as common;
pub use relm_core as core;
pub use relm_ddpg as ddpg;
pub use relm_jvm as jvm;
pub use relm_profile as profile;
pub use relm_surrogate as surrogate;
pub use relm_tune as tune;
pub use relm_workloads as workloads;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use relm_app::{AppSpec, Engine, EngineCostModel, InputSource, RunResult, StageSpec};
    pub use relm_bo::{BayesOpt, BoConfig, ModelRepository, SurrogateKind};
    pub use relm_cluster::{ClusterSpec, ContainerSpec};
    pub use relm_common::{Mem, MemoryConfig, Millis, Rng};
    pub use relm_core::{QModel, RelmTuner};
    pub use relm_ddpg::DdpgTuner;
    pub use relm_profile::{derive_stats, DerivedStats, Profile};
    pub use relm_tune::{
        ConfigSpace, DefaultPolicy, ExhaustiveSearch, Observation, RandomSearch, Recommendation,
        RecursiveRandomSearch, Tuner, TuningEnv,
    };
    pub use relm_workloads::{
        benchmark_suite, kmeans, max_resource_allocation, pagerank, sortbykey, svm, svm_scaled,
        tpch_queries, tpch_query, wordcount,
    };
}
