//! The CDBTune-style reward (§5.3: "it considers the performance change at
//! not only the previous timestep but also the first timestep when the
//! tuning request was made").
//!
//! For a latency objective (lower is better) define the relative
//! improvements `Δ₀ = (perf₀ − perf_t) / perf₀` against the initial run and
//! `Δ_t = (perf_{t−1} − perf_t) / perf_{t−1}` against the previous step.
//! CDBTune's shaping then rewards configurations that beat the initial
//! performance, amplified when they also improve on the previous step, and
//! penalizes regressions symmetrically.

/// Computes the reward for the latest objective value (minutes; lower is
/// better) given the initial and previous values.
pub fn cdbtune_reward(initial: f64, previous: f64, current: f64) -> f64 {
    let initial = initial.max(1e-9);
    let previous = previous.max(1e-9);
    let delta0 = (initial - current) / initial;
    let delta_t = (previous - current) / previous;

    if delta0 > 0.0 {
        ((1.0 + delta0).powi(2) - 1.0) * (1.0 + delta_t).abs()
    } else {
        -(((1.0 - delta0).powi(2) - 1.0) * (1.0 - delta_t).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_over_initial_is_positive() {
        assert!(cdbtune_reward(10.0, 10.0, 6.0) > 0.0);
    }

    #[test]
    fn regression_from_initial_is_negative() {
        assert!(cdbtune_reward(10.0, 10.0, 15.0) < 0.0);
    }

    #[test]
    fn bigger_improvements_earn_more() {
        let small = cdbtune_reward(10.0, 10.0, 9.0);
        let big = cdbtune_reward(10.0, 10.0, 5.0);
        assert!(big > small);
    }

    #[test]
    fn improving_on_previous_step_amplifies() {
        // Same Δ0, but one also improves on the previous step.
        let momentum = cdbtune_reward(10.0, 9.0, 7.0);
        let relapse = cdbtune_reward(10.0, 5.0, 7.0);
        assert!(momentum > relapse);
    }

    #[test]
    fn no_change_is_zero() {
        assert_eq!(cdbtune_reward(10.0, 10.0, 10.0), 0.0);
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        assert!(cdbtune_reward(0.0, 0.0, 5.0).is_finite());
        assert!(cdbtune_reward(10.0, 0.0, 5.0).is_finite());
    }
}
