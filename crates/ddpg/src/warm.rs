//! Replay-buffer seeding from cross-session memory.
//!
//! A retrieved [`relm_memory::SessionDigest`] holds the session's mean
//! Table-6 statistics and its ordered `(config, score)` observations —
//! enough to replay the session as a sequence of DDPG transitions: the
//! state of step *k* is the shared featurization
//! ([`crate::tuner::state_vector_from_stats`]) of the digest's stats under
//! the configuration of step *k−1*, the action is the encoded
//! configuration of step *k*, and the reward is the same CDBTune score a
//! live session would have computed. Feeding these through
//! [`crate::DdpgTuner::seed_replay`] pre-fills the experience buffer so
//! the agent's first noisy actions on a *new* workload are already shaped
//! by how similar workloads responded.

use crate::replay::Transition;
use crate::reward::cdbtune_reward;
use crate::tuner::state_vector_from_stats;
use relm_memory::PriorBundle;
use relm_tune::ConfigSpace;

/// Reconstructs replay transitions from a retrieved prior. Sessions
/// without statistics (no clean run) are skipped; sessions with fewer
/// than two observations yield no transition. Deterministic: transitions
/// follow retrieval order, then each digest's history order.
pub fn transitions_from_prior(prior: &PriorBundle, space: &ConfigSpace) -> Vec<Transition> {
    let mut out = Vec::new();
    for (_similarity, digest) in &prior.sessions {
        let Some(stats) = &digest.stats else {
            continue;
        };
        let obs = &digest.observations;
        if obs.len() < 2 {
            continue;
        }
        // The digest's first observation plays the vendor-default role the
        // live session's bootstrap run plays: it anchors the reward scale.
        let initial = obs[0].score_mins;
        for k in 1..obs.len() {
            let prev = &obs[k - 1];
            let cur = &obs[k];
            out.push(Transition {
                state: state_vector_from_stats(stats, &prev.config),
                action: space.encode(&cur.config).to_vec(),
                reward: cdbtune_reward(initial, prev.score_mins, cur.score_mins),
                next_state: state_vector_from_stats(stats, &cur.config),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_app::Engine;
    use relm_cluster::ClusterSpec;
    use relm_memory::{build_prior, MemoryStore, SessionDigest, DEFAULT_PRIOR_CAP};
    use relm_tune::TuningEnv;
    use relm_workloads::{max_resource_allocation, wordcount};

    #[test]
    fn prior_replays_into_well_formed_transitions() {
        let mut env = TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), wordcount(), 5);
        let base = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        env.evaluate(&base);
        let mut thin = base;
        thin.containers_per_node = 4;
        thin.heap = env.heap_for(4);
        env.evaluate(&thin);
        env.evaluate(&base);

        let mut store = MemoryStore::new();
        store.ingest(SessionDigest::from_env("WordCount", 5, &env));
        let query = store.fingerprint_for_workload("WordCount").unwrap();
        let prior = build_prior(&store.retrieve(&query, 3), env.space(), DEFAULT_PRIOR_CAP);

        let transitions = transitions_from_prior(&prior, env.space());
        assert_eq!(transitions.len(), 2, "3 observations replay 2 steps");
        for t in &transitions {
            assert_eq!(t.state.len(), crate::STATE_DIMS);
            assert_eq!(t.next_state.len(), crate::STATE_DIMS);
            assert_eq!(t.action.len(), 4);
            assert!(t.reward.is_finite());
        }

        // And they seed a tuner's buffer.
        let mut tuner = crate::DdpgTuner::new(9);
        assert_eq!(tuner.seed_replay(transitions), 2);
        assert_eq!(tuner.agent().replay_len(), 2);
    }
}
