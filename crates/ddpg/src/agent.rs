//! The DDPG actor–critic agent.
//!
//! The actor `μ(s|θ^μ)` maps a state to an action in `[0, 1]^act`; the
//! critic `Q(s, a|θ^Q)` scores state–action pairs. Targets use Polyak-
//! averaged copies of both networks. The critic minimizes the TD error
//! against `r + γ Q'(s', μ'(s'))`; the actor ascends the critic's action
//! gradient.

use crate::nn::{Activation, Mlp};
use crate::noise::OrnsteinUhlenbeck;
use crate::replay::{ReplayBuffer, Transition};
use relm_common::Rng;

/// Agent hyperparameters (sizes follow CDBTune's small dense networks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// State dimensionality.
    pub state_dims: usize,
    /// Action dimensionality.
    pub action_dims: usize,
    /// Hidden width of both networks.
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Polyak factor τ for target tracking.
    pub tau: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Initial OU noise scale.
    pub noise_sigma: f64,
}

impl AgentConfig {
    /// Defaults for the 4-knob tuning problem.
    pub fn for_dims(state_dims: usize, action_dims: usize) -> Self {
        AgentConfig {
            state_dims,
            action_dims,
            hidden: 48,
            gamma: 0.9,
            tau: 0.05,
            actor_lr: 2e-3,
            critic_lr: 4e-3,
            replay_capacity: 512,
            batch: 16,
            noise_sigma: 0.35,
        }
    }
}

/// The agent.
#[derive(Debug, Clone)]
pub struct DdpgAgent {
    cfg: AgentConfig,
    actor: Mlp,
    actor_target: Mlp,
    critic: Mlp,
    critic_target: Mlp,
    replay: ReplayBuffer,
    noise: OrnsteinUhlenbeck,
    rng: Rng,
    train_steps: u64,
}

impl DdpgAgent {
    /// Creates an agent with freshly initialized networks.
    pub fn new(cfg: AgentConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ 0x3C6E_F372);
        let actor = Mlp::new(
            &[cfg.state_dims, cfg.hidden, cfg.hidden, cfg.action_dims],
            &[Activation::Relu, Activation::Relu, Activation::Sigmoid],
            &mut rng,
        );
        let critic = Mlp::new(
            &[cfg.state_dims + cfg.action_dims, cfg.hidden, cfg.hidden, 1],
            &[Activation::Relu, Activation::Relu, Activation::Identity],
            &mut rng,
        );
        let actor_target = actor.clone();
        let critic_target = critic.clone();
        let noise = OrnsteinUhlenbeck::new(cfg.action_dims, cfg.noise_sigma);
        DdpgAgent {
            cfg,
            actor,
            actor_target,
            critic,
            critic_target,
            replay: ReplayBuffer::new(cfg.replay_capacity),
            noise,
            rng,
            train_steps: 0,
        }
    }

    /// Greedy action for a state.
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        self.actor.forward(state)
    }

    /// Exploratory action: greedy plus OU noise, clamped to `[0, 1]`.
    pub fn act_noisy(&mut self, state: &[f64]) -> Vec<f64> {
        let mut a = self.actor.forward(state);
        let noise = self.noise.sample(&mut self.rng);
        for (ai, ni) in a.iter_mut().zip(noise) {
            *ai = (*ai + ni).clamp(0.0, 1.0);
        }
        a
    }

    /// Anneals exploration noise.
    pub fn decay_noise(&mut self, factor: f64) {
        self.noise.decay(factor);
    }

    /// Starts a new tuning session: resets the OU process state and restores
    /// a minimum exploration level so a transferred model still probes its
    /// new environment a little before exploiting.
    pub fn begin_session(&mut self, min_sigma: f64) {
        self.noise.reset();
        if self.noise.sigma() < min_sigma {
            let factor = min_sigma / self.noise.sigma().max(1e-9);
            self.noise.decay(factor); // decay with factor > 1 raises sigma
        }
    }

    /// Stores a transition in replay memory.
    pub fn observe(&mut self, t: Transition) {
        self.replay.push(t);
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Critic value of a state–action pair.
    pub fn critic_value(&self, state: &[f64], action: &[f64]) -> f64 {
        let mut input = state.to_vec();
        input.extend_from_slice(action);
        self.critic.forward(&input)[0]
    }

    /// Total learnable parameters (Table 10's model size).
    pub fn parameter_count(&self) -> usize {
        self.actor.parameter_count() + self.critic.parameter_count()
    }

    /// One gradient step on a replay minibatch (critic TD regression, actor
    /// policy gradient, soft target updates). No-op until the buffer holds a
    /// minibatch.
    pub fn train_step(&mut self) {
        if self.replay.len() < self.cfg.batch {
            return;
        }
        self.train_steps += 1;
        let batch: Vec<Transition> = self
            .replay
            .sample(self.cfg.batch, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        let inv_batch = 1.0 / batch.len() as f64;

        // ---- Critic update ----
        self.critic.zero_grads();
        for t in &batch {
            // Target: r + γ Q'(s', μ'(s')).
            let next_action = self.actor_target.forward(&t.next_state);
            let mut next_input = t.next_state.clone();
            next_input.extend_from_slice(&next_action);
            let target_q = t.reward + self.cfg.gamma * self.critic_target.forward(&next_input)[0];

            let mut input = t.state.clone();
            input.extend_from_slice(&t.action);
            let cache = self.critic.forward_cached(&input);
            let td = cache.output()[0] - target_q;
            // d(0.5 td²)/dQ = td; average over the batch.
            self.critic.backward(&cache, &[td * inv_batch]);
        }
        self.critic.adam_step(self.cfg.critic_lr);

        // ---- Actor update ----
        self.actor.zero_grads();
        for t in &batch {
            let action_cache = self.actor.forward_cached(&t.state);
            let action = action_cache.output().to_vec();
            let mut input = t.state.clone();
            input.extend_from_slice(&action);
            // ∂Q/∂a via the critic's input gradient.
            let critic_cache = self.critic.forward_cached(&input);
            let mut scratch = self.critic.clone();
            scratch.zero_grads();
            let grad_input = scratch.backward(&critic_cache, &[1.0]);
            let grad_action = &grad_input[self.cfg.state_dims..];
            // Ascend Q: backprop −∂Q/∂a through the actor.
            let grad_out: Vec<f64> = grad_action.iter().map(|g| -g * inv_batch).collect();
            self.actor.backward(&action_cache, &grad_out);
        }
        self.actor.adam_step(self.cfg.actor_lr);

        // ---- Target tracking ----
        self.actor_target
            .soft_update_from(&self.actor, self.cfg.tau);
        self.critic_target
            .soft_update_from(&self.critic, self.cfg.tau);
    }

    /// Gradient steps taken so far.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-state bandit: reward = 1 − (a − 0.7)², optimal action 0.7.
    #[test]
    fn agent_learns_a_static_bandit() {
        let cfg = AgentConfig {
            noise_sigma: 0.4,
            ..AgentConfig::for_dims(2, 1)
        };
        let mut agent = DdpgAgent::new(cfg, 42);
        let state = vec![0.5, -0.5];
        for step in 0..400 {
            let a = agent.act_noisy(&state);
            let reward = 1.0 - (a[0] - 0.7).powi(2) * 4.0;
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward,
                next_state: state.clone(),
            });
            for _ in 0..4 {
                agent.train_step();
            }
            if step % 40 == 0 {
                agent.decay_noise(0.85);
            }
        }
        let greedy = agent.act(&state);
        assert!(
            (greedy[0] - 0.7).abs() < 0.15,
            "agent failed to find the bandit optimum: a = {}",
            greedy[0]
        );
    }

    #[test]
    fn critic_learns_values() {
        let cfg = AgentConfig::for_dims(1, 1);
        let mut agent = DdpgAgent::new(cfg, 7);
        // Reward depends on action only: r = a (higher action, higher value).
        for _ in 0..200 {
            let a = agent.act_noisy(&[0.0]);
            agent.observe(Transition {
                state: vec![0.0],
                action: a.clone(),
                reward: a[0],
                next_state: vec![0.0],
            });
            agent.train_step();
        }
        let low = agent.critic_value(&[0.0], &[0.1]);
        let high = agent.critic_value(&[0.0], &[0.9]);
        assert!(
            high > low,
            "critic must rank high actions above low: {high} vs {low}"
        );
    }

    #[test]
    fn noisy_actions_stay_in_bounds() {
        let mut agent = DdpgAgent::new(AgentConfig::for_dims(3, 4), 9);
        for _ in 0..100 {
            let a = agent.act_noisy(&[0.2, 0.4, 0.6]);
            assert_eq!(a.len(), 4);
            assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn train_step_is_noop_until_batch_available() {
        let mut agent = DdpgAgent::new(AgentConfig::for_dims(2, 2), 11);
        agent.train_step();
        assert_eq!(agent.train_steps(), 0);
    }

    #[test]
    fn parameter_count_is_positive() {
        let agent = DdpgAgent::new(AgentConfig::for_dims(14, 4), 13);
        assert!(agent.parameter_count() > 1000);
    }
}
