//! # relm-ddpg
//!
//! Deep Deterministic Policy Gradient (§5.3) implemented from scratch:
//! dense neural networks with manual backpropagation and Adam, an
//! experience-replay buffer, Ornstein–Uhlenbeck exploration noise, the
//! actor–critic DDPG agent with target networks and soft updates, and the
//! CDBTune-style reward that scores a configuration change against both the
//! initial and the previous performance.
//!
//! The agent's *state* is the resource-usage statistics of Table 6 plus the
//! three model-Q metrics (following §5.3); its *action* is a point of the
//! 4-dimensional configuration space.

pub mod agent;
pub mod nn;
pub mod noise;
pub mod replay;
pub mod reward;
pub mod tuner;
pub mod warm;

pub use agent::{AgentConfig, DdpgAgent};
pub use nn::{Activation, Mlp};
pub use noise::OrnsteinUhlenbeck;
pub use replay::{ReplayBuffer, Transition};
pub use reward::cdbtune_reward;
pub use tuner::{state_vector, state_vector_from_stats, DdpgTuner, STATE_DIMS};
pub use warm::transitions_from_prior;
