//! Ornstein–Uhlenbeck exploration noise (§5.3: "Exploration of action space
//! is carried out by adding a noise sampled from a noise process N to the
//! actor").

use relm_common::Rng;

/// A mean-reverting OU process, one component per action dimension.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    theta: f64,
    sigma: f64,
    mu: f64,
    state: Vec<f64>,
}

impl OrnsteinUhlenbeck {
    /// Standard DDPG parameters: θ = 0.15, σ as given, μ = 0.
    pub fn new(dims: usize, sigma: f64) -> Self {
        OrnsteinUhlenbeck {
            theta: 0.15,
            sigma,
            mu: 0.0,
            state: vec![0.0; dims],
        }
    }

    /// Resets the process state to the mean.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = self.mu);
    }

    /// Decays the noise scale (annealed exploration).
    pub fn decay(&mut self, factor: f64) {
        self.sigma *= factor;
    }

    /// Current noise scale.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Advances the process and returns the current noise vector.
    pub fn sample(&mut self, rng: &mut Rng) -> Vec<f64> {
        for s in &mut self.state {
            *s += self.theta * (self.mu - *s) + self.sigma * rng.normal();
        }
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_reverts_to_mu() {
        let mut ou = OrnsteinUhlenbeck::new(1, 0.05);
        let mut rng = Rng::new(1);
        let samples: Vec<f64> = (0..5_000).map(|_| ou.sample(&mut rng)[0]).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "OU mean drifted: {mean}");
    }

    #[test]
    fn consecutive_samples_are_correlated() {
        let mut ou = OrnsteinUhlenbeck::new(1, 0.2);
        let mut rng = Rng::new(2);
        let xs: Vec<f64> = (0..2_000).map(|_| ou.sample(&mut rng)[0]).collect();
        let corr = relm_common::stats::pearson(&xs[..xs.len() - 1], &xs[1..]);
        assert!(
            corr > 0.5,
            "OU noise should be temporally correlated, r = {corr}"
        );
    }

    #[test]
    fn decay_shrinks_sigma_and_reset_zeroes_state() {
        let mut ou = OrnsteinUhlenbeck::new(3, 0.4);
        ou.decay(0.5);
        assert!((ou.sigma() - 0.2).abs() < 1e-12);
        let mut rng = Rng::new(3);
        ou.sample(&mut rng);
        ou.reset();
        assert_eq!(ou.sample(&mut rng).len(), 3);
    }
}
