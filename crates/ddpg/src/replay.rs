//! Experience replay (§5.3: "DDPG uses an experience replay memory to store
//! the explored state-action pairs and uses a sample from the memory for
//! learning its critic model").

use relm_common::Rng;
use serde::{Deserialize, Serialize};

/// One transition `(s, a, r, s')`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action taken (a configuration point).
    pub action: Vec<f64>,
    /// Reward received.
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
}

/// A bounded ring buffer of transitions.
#[derive(Debug, Clone, Default)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            capacity: capacity.max(1),
            items: Vec::new(),
            next: 0,
        }
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Samples `batch` transitions with replacement.
    pub fn sample(&self, batch: usize, rng: &mut Rng) -> Vec<&Transition> {
        (0..batch)
            .map(|_| &self.items[rng.below(self.items.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(tag: f64) -> Transition {
        Transition {
            state: vec![tag],
            action: vec![tag],
            reward: tag,
            next_state: vec![tag],
        }
    }

    #[test]
    fn push_and_len() {
        let mut buf = ReplayBuffer::new(3);
        assert!(buf.is_empty());
        for i in 0..3 {
            buf.push(transition(i as f64));
        }
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn eviction_is_fifo() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(transition(0.0));
        buf.push(transition(1.0));
        buf.push(transition(2.0)); // evicts 0
        let rewards: Vec<f64> = buf.items.iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&1.0) && rewards.contains(&2.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sampling_covers_contents() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(transition(i as f64));
        }
        let mut rng = Rng::new(1);
        let sample = buf.sample(100, &mut rng);
        assert_eq!(sample.len(), 100);
        let distinct: std::collections::BTreeSet<u64> =
            sample.iter().map(|t| t.reward as u64).collect();
        assert!(
            distinct.len() >= 6,
            "sampling should cover most of the buffer"
        );
    }
}
