//! The DDPG tuning policy (Figure 15): the agent interacts with the tuning
//! environment in discrete timesteps — an *action* changes the configuration
//! knobs, the *state* is the resource-usage metrics of the resulting run
//! (Table 6 statistics plus the model-Q metrics), and the *reward* follows
//! CDBTune.

use crate::agent::{AgentConfig, DdpgAgent};
use crate::replay::Transition;
use crate::reward::cdbtune_reward;
use relm_common::{MemoryConfig, Result};
use relm_core::QModel;
use relm_profile::{derive_stats, DerivedStats, Profile};
use relm_tune::{recommendation, Recommendation, Tuner, TuningEnv};
use relm_workloads::max_resource_allocation;

/// Dimensionality of the state vector built by [`state_vector`].
pub const STATE_DIMS: usize = 14;

/// Builds the agent's state from a run's profile: normalized Table-6
/// statistics plus the model-Q metrics of the configuration that produced
/// the profile (§5.3).
pub fn state_vector(profile: &Profile) -> Vec<f64> {
    let stats: DerivedStats = derive_stats(profile);
    state_vector_from_stats(&stats, &profile.config)
}

/// Like [`state_vector`], but from an already-derived statistics vector
/// and the configuration that produced it. This is the form cross-session
/// memory uses to reconstruct states from a [`relm_memory::SessionDigest`]
/// (which keeps mean stats and configs, not profiles) when pre-filling the
/// replay buffer — the featurization is shared so seeded and live
/// transitions live in the same state space.
pub fn state_vector_from_stats(stats: &DerivedStats, config: &MemoryConfig) -> Vec<f64> {
    let q = QModel::new(*stats, relm_core::DEFAULT_SAFETY).q(config);
    let heap = stats.heap.as_mb().max(1.0);
    vec![
        stats.cpu_avg / 100.0,
        stats.disk_avg / 100.0,
        stats.m_i.as_mb() / heap,
        stats.m_c.as_mb() / heap,
        stats.m_s.as_mb() / heap,
        stats.m_u.as_mb() / heap,
        stats.p as f64 / 8.0,
        stats.h,
        stats.s,
        stats.containers_per_node as f64 / 4.0,
        heap / 16_384.0,
        q[0].min(3.0),
        q[1].min(5.0) / 5.0,
        q[2].min(5.0) / 5.0,
    ]
    .into_iter()
    // A corrupted or truncated profile must not feed NaN/Inf into the
    // networks — one bad state would propagate through every later update.
    .map(|v| if v.is_finite() { v } else { 0.0 })
    .collect()
}

/// The DDPG tuner. The agent persists across [`Tuner::tune`] calls, which is
/// what gives DDPG its adaptability to new environments (§6.6, Figure 27):
/// tune on Cluster A, then call `tune` again with a Cluster-B environment
/// and a small budget.
#[derive(Debug, Clone)]
pub struct DdpgTuner {
    agent: DdpgAgent,
    /// Stress tests per tuning session (the paper stops DDPG after
    /// observing 10 new samples).
    budget: usize,
    /// Gradient steps after each observation.
    updates_per_step: usize,
}

impl DdpgTuner {
    /// Creates a fresh tuner with the paper's 10-sample session budget.
    pub fn new(seed: u64) -> Self {
        DdpgTuner {
            agent: DdpgAgent::new(AgentConfig::for_dims(STATE_DIMS, 4), seed),
            budget: 10,
            updates_per_step: 12,
        }
    }

    /// Overrides the per-session stress-test budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// The underlying agent (for analysis).
    pub fn agent(&self) -> &DdpgAgent {
        &self.agent
    }

    /// Pre-fills the replay buffer with transitions reconstructed from
    /// cross-session memory (see [`crate::warm::transitions_from_prior`])
    /// and pre-trains on them, so the first session on a new workload
    /// starts from experience instead of noise. Returns how many
    /// transitions were seeded. Training is a no-op until the buffer
    /// holds a batch, exactly as during a live session.
    pub fn seed_replay(&mut self, transitions: impl IntoIterator<Item = Transition>) -> usize {
        let mut seeded = 0usize;
        for t in transitions {
            self.agent.observe(t);
            seeded += 1;
        }
        if seeded > 0 {
            for _ in 0..self.updates_per_step.saturating_mul(4) {
                self.agent.train_step();
            }
        }
        seeded
    }
}

impl Tuner for DdpgTuner {
    fn name(&self) -> &'static str {
        "DDPG"
    }

    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation> {
        let telemetry = env.obs().clone();
        let _session = telemetry.span("tuner.tune").with("policy", self.name());
        self.agent.begin_session(0.12);
        // Initial observation: the vendor default, which also seeds the
        // reward baseline.
        let default = max_resource_allocation(env.engine().cluster(), env.app());
        let (obs0, profile0) = env.evaluate_profiled(&default);
        let initial_score = obs0.score_mins;
        let mut prev_score = initial_score;
        let mut state = state_vector(&profile0);

        for iter in 0..self.budget {
            let act_started = std::time::Instant::now();
            let action = {
                let _act = telemetry.span("ddpg.act").with("iter", iter);
                self.agent.act_noisy(&state)
            };
            telemetry.record("ddpg.act_ms", act_started.elapsed().as_secs_f64() * 1e3);
            let config = env.space().decode(&action);
            let (obs, profile) = env.evaluate_profiled(&config);
            let reward = cdbtune_reward(initial_score, prev_score, obs.score_mins);
            let next_state = state_vector(&profile);
            self.agent.observe(Transition {
                state: state.clone(),
                action,
                reward,
                next_state: next_state.clone(),
            });
            let update_started = std::time::Instant::now();
            {
                let _update = telemetry
                    .span("ddpg.update")
                    .with("iter", iter)
                    .with("steps", self.updates_per_step);
                for _ in 0..self.updates_per_step {
                    self.agent.train_step();
                }
            }
            telemetry.record(
                "ddpg.update_ms",
                update_started.elapsed().as_secs_f64() * 1e3,
            );
            self.agent.decay_noise(0.93);
            prev_score = obs.score_mins;
            state = next_state;
        }

        let best = env
            .best()
            .ok_or_else(|| relm_common::Error::Tuning("no observations".into()))?
            .config;
        Ok(recommendation(self.name(), env, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_app::Engine;
    use relm_cluster::ClusterSpec;
    use relm_workloads::{sortbykey, svm};

    #[test]
    fn state_vector_has_declared_dims_and_is_finite() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let app = svm();
        let cfg = max_resource_allocation(engine.cluster(), &app);
        let (_, profile) = engine.run(&app, &cfg, 3);
        let s = state_vector(&profile);
        assert_eq!(s.len(), STATE_DIMS);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ddpg_session_respects_budget() {
        let mut env = TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), sortbykey(), 1);
        let mut tuner = DdpgTuner::new(1).with_budget(5);
        let rec = tuner.tune(&mut env).unwrap();
        // 1 initial + 5 exploratory runs.
        assert_eq!(rec.evaluations, 6);
        assert_eq!(rec.policy, "DDPG");
        assert!(tuner.agent().replay_len() == 5);
    }

    #[test]
    fn agent_persists_across_sessions() {
        let mut tuner = DdpgTuner::new(2).with_budget(4);
        let mut env_a = TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), svm(), 2);
        tuner.tune(&mut env_a).unwrap();
        let replay_after_a = tuner.agent().replay_len();
        let mut env_b = TuningEnv::new(Engine::new(ClusterSpec::cluster_b()), svm(), 3);
        tuner.tune(&mut env_b).unwrap();
        assert!(
            tuner.agent().replay_len() > replay_after_a,
            "replay should accumulate"
        );
    }

    #[test]
    fn recommendation_is_best_observed() {
        let mut env = TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), sortbykey(), 5);
        let mut tuner = DdpgTuner::new(5).with_budget(6);
        let rec = tuner.tune(&mut env).unwrap();
        let best = env.best().unwrap();
        assert_eq!(rec.config, best.config);
    }
}
