//! Dense neural networks with manual backpropagation and Adam.
//!
//! Small fully-connected networks are all DDPG needs (CDBTune uses a few
//! hidden layers of tens of units); this module implements them directly on
//! `Vec<f64>` with no external tensor library.

use relm_common::Rng;

/// Activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// 1 / (1 + e^{-x})
    Sigmoid,
    /// x
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer with its Adam state.
#[derive(Debug, Clone)]
struct Layer {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    /// Weights, row-major `out_dim × in_dim`.
    w: Vec<f64>,
    b: Vec<f64>,
    // Accumulated gradients.
    gw: Vec<f64>,
    gb: Vec<f64>,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut Rng) -> Self {
        // Xavier/Glorot uniform initialization.
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.uniform_in(-bound, bound))
            .collect();
        Layer {
            in_dim,
            out_dim,
            activation,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        (0..self.out_dim)
            .map(|o| {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                let z: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.b[o];
                self.activation.apply(z)
            })
            .collect()
    }

    /// Backward pass given this layer's input and output (from the forward
    /// cache) and the loss gradient w.r.t. the output. Accumulates parameter
    /// gradients and returns the gradient w.r.t. the input.
    fn backward(&mut self, input: &[f64], output: &[f64], grad_out: &[f64]) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let dz = grad_out[o] * self.activation.derivative_from_output(output[o]);
            self.gb[o] += dz;
            let row = o * self.in_dim;
            for i in 0..self.in_dim {
                self.gw[row + i] += dz * input[i];
                grad_in[i] += dz * self.w[row + i];
            }
        }
        grad_in
    }

    fn zero_grads(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn adam_step(&mut self, lr: f64, t: u64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            self.mw[i] = B1 * self.mw[i] + (1.0 - B1) * self.gw[i];
            self.vw[i] = B2 * self.vw[i] + (1.0 - B2) * self.gw[i] * self.gw[i];
            self.w[i] -= lr * (self.mw[i] / bc1) / ((self.vw[i] / bc2).sqrt() + EPS);
        }
        for i in 0..self.b.len() {
            self.mb[i] = B1 * self.mb[i] + (1.0 - B1) * self.gb[i];
            self.vb[i] = B2 * self.vb[i] + (1.0 - B2) * self.gb[i] * self.gb[i];
            self.b[i] -= lr * (self.mb[i] / bc1) / ((self.vb[i] / bc2).sqrt() + EPS);
        }
    }
}

/// The layer activations recorded by a forward pass, needed for backprop.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i+1]` is layer `i`'s
    /// output.
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output.
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            .expect("cache always holds the input")
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    adam_t: u64,
}

impl Mlp {
    /// Builds an MLP. `sizes` are the layer widths (including input and
    /// output); `activations.len() == sizes.len() - 1`.
    pub fn new(sizes: &[usize], activations: &[Activation], rng: &mut Rng) -> Self {
        assert_eq!(
            activations.len(),
            sizes.len() - 1,
            "one activation per layer"
        );
        let layers = sizes
            .windows(2)
            .zip(activations)
            .map(|(pair, &act)| Layer::new(pair[0], pair[1], act, rng))
            .collect();
        Mlp { layers, adam_t: 0 }
    }

    /// Inference without caching.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Forward pass that records activations for a subsequent backward pass.
    pub fn forward_cached(&self, x: &[f64]) -> ForwardCache {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.forward(activations.last().expect("non-empty"));
            activations.push(next);
        }
        ForwardCache { activations }
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the network input.
    pub fn backward(&mut self, cache: &ForwardCache, grad_out: &[f64]) -> Vec<f64> {
        let mut grad = grad_out.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let input = &cache.activations[i];
            let output = &cache.activations[i + 1];
            grad = layer.backward(input, output, &grad);
        }
        grad
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// One Adam update with the accumulated gradients, then clears them.
    pub fn adam_step(&mut self, lr: f64) {
        self.adam_t += 1;
        for layer in &mut self.layers {
            layer.adam_step(lr, self.adam_t);
        }
        self.zero_grads();
    }

    /// Polyak soft update `θ ← τ θ_src + (1−τ) θ` (target-network tracking).
    pub fn soft_update_from(&mut self, src: &Mlp, tau: f64) {
        for (dst, s) in self.layers.iter_mut().zip(&src.layers) {
            for (w, sw) in dst.w.iter_mut().zip(&s.w) {
                *w = tau * sw + (1.0 - tau) * *w;
            }
            for (b, sb) in dst.b.iter_mut().zip(&s.b) {
                *b = tau * sb + (1.0 - tau) * *b;
            }
        }
    }

    /// Hard copy of parameters.
    pub fn copy_from(&mut self, src: &Mlp) {
        self.soft_update_from(src, 1.0);
    }

    /// Total number of parameters (for Table 10's model-size row).
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp(sizes: &[usize], acts: &[Activation], seed: u64) -> Mlp {
        Mlp::new(sizes, acts, &mut Rng::new(seed))
    }

    #[test]
    fn forward_shapes() {
        let net = mlp(&[3, 5, 2], &[Activation::Relu, Activation::Identity], 1);
        let out = net.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut net = mlp(&[4, 8, 3], &[Activation::Tanh, Activation::Identity], 2);
        let x = [0.3, -0.7, 0.2, 0.9];
        // Loss = 0.5 Σ out², so dL/dout = out.
        let cache = net.forward_cached(&x);
        let grad_out: Vec<f64> = cache.output().to_vec();
        net.zero_grads();
        let grad_in = net.backward(&cache, &grad_out);

        // Finite-difference check of the input gradient.
        let loss =
            |net: &Mlp, x: &[f64]| -> f64 { net.forward(x).iter().map(|o| 0.5 * o * o).sum() };
        let eps = 1e-6;
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fd = (loss(&net, &xp) - loss(&net, &xm)) / (2.0 * eps);
            assert!(
                (fd - grad_in[i]).abs() < 1e-5,
                "input grad {i}: fd={fd} analytic={}",
                grad_in[i]
            );
        }

        // Finite-difference check of a few weight gradients.
        let analytic_gw00 = net.layers[0].gw[0];
        let orig = net.layers[0].w[0];
        net.layers[0].w[0] = orig + eps;
        let lp = loss(&net, &x);
        net.layers[0].w[0] = orig - eps;
        let lm = loss(&net, &x);
        net.layers[0].w[0] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - analytic_gw00).abs() < 1e-5,
            "fd={fd} analytic={analytic_gw00}"
        );
    }

    #[test]
    fn sigmoid_outputs_bounded() {
        let net = mlp(&[2, 6, 4], &[Activation::Relu, Activation::Sigmoid], 3);
        let out = net.forward(&[10.0, -10.0]);
        assert!(out.iter().all(|&o| (0.0..=1.0).contains(&o)));
    }

    #[test]
    fn adam_learns_a_linear_map() {
        let mut rng = Rng::new(4);
        let mut net = mlp(&[2, 16, 1], &[Activation::Tanh, Activation::Identity], 4);
        // Target: y = 2 x0 - x1.
        for _ in 0..800 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let target = 2.0 * x[0] - x[1];
            let cache = net.forward_cached(&x);
            let err = cache.output()[0] - target;
            net.backward(&cache, &[err]);
            net.adam_step(5e-3);
        }
        let mut mse = 0.0;
        for _ in 0..50 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let target = 2.0 * x[0] - x[1];
            mse += (net.forward(&x)[0] - target).powi(2);
        }
        mse /= 50.0;
        assert!(mse < 0.05, "network failed to learn: mse = {mse}");
    }

    #[test]
    fn soft_update_interpolates() {
        let a = mlp(&[2, 3], &[Activation::Identity], 5);
        let mut b = mlp(&[2, 3], &[Activation::Identity], 6);
        let before = b.layers[0].w[0];
        let target = a.layers[0].w[0];
        b.soft_update_from(&a, 0.5);
        let after = b.layers[0].w[0];
        assert!((after - 0.5 * (before + target)).abs() < 1e-12);
        b.copy_from(&a);
        assert_eq!(b.layers[0].w, a.layers[0].w);
    }

    #[test]
    fn parameter_count() {
        let net = mlp(&[3, 5, 2], &[Activation::Relu, Activation::Identity], 7);
        // 3*5 + 5 + 5*2 + 2 = 32.
        assert_eq!(net.parameter_count(), 32);
    }
}
