//! # relm-cluster
//!
//! The resource-management substrate: worker-node hardware descriptions
//! (Table 3's Cluster A and Cluster B), the carving of node memory into
//! homogeneous containers (Figure 1), and a YARN-like resource manager that
//! enforces per-container physical-memory limits by killing containers whose
//! resident set size exceeds their cap, then granting replacements.

pub mod rm;
pub mod spec;

pub use rm::{ContainerEvent, ResourceManager};
pub use spec::{ClusterSpec, ContainerSpec};
