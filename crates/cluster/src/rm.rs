//! A YARN-like resource manager.
//!
//! The manager's role in the simulation is the failure semantics of §3.1:
//! it kills containers whose physical memory usage (RSS) exceeds the preset
//! cap, grants replacement containers after a delay, and lets the framework
//! retry the failed tasks. Out-of-memory errors inside the JVM are reported
//! by the application itself but are accounted for here too, so a run's
//! failure tally is in one place.

use crate::spec::ContainerSpec;
use relm_common::{Mem, Millis};
use serde::{Deserialize, Serialize};

/// Why a container went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerEvent {
    /// The JVM threw `OutOfMemoryError`.
    OutOfMemory,
    /// The resource manager killed the container for exceeding its
    /// physical-memory cap.
    RssKill,
    /// An injected transient kill (preemption, operator restart, kernel
    /// OOM-killer race) took the container down.
    InjectedKill,
    /// The container's node was lost; the replacement comes up on fresh
    /// hardware after the node-manager expiry interval.
    NodeLoss,
}

/// Failure bookkeeping for one application run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResourceManager {
    events: Vec<(Millis, ContainerEvent)>,
    /// Delay before a replacement container is running again.
    replacement_delay: Millis,
    /// Delay before containers of a lost node are rescheduled elsewhere
    /// (YARN waits out `nm.liveness-monitor.expiry-interval` first).
    node_loss_delay: Millis,
}

impl ResourceManager {
    /// Creates a manager with the default replacement delay (container
    /// re-request, scheduling, and JVM start).
    pub fn new() -> Self {
        ResourceManager {
            events: Vec::new(),
            replacement_delay: Millis::secs(12.0),
            node_loss_delay: Millis::secs(45.0),
        }
    }

    /// Checks a container's RSS against its cap; if exceeded, records a kill
    /// and returns the replacement delay to charge to the run.
    pub fn check_rss(
        &mut self,
        now: Millis,
        container: &ContainerSpec,
        rss: Mem,
    ) -> Option<Millis> {
        if rss > container.phys_cap {
            self.events.push((now, ContainerEvent::RssKill));
            Some(self.replacement_delay)
        } else {
            None
        }
    }

    /// Records an out-of-memory container failure and returns the
    /// replacement delay.
    pub fn report_oom(&mut self, now: Millis) -> Millis {
        self.events.push((now, ContainerEvent::OutOfMemory));
        self.replacement_delay
    }

    /// Records an injected transient container kill and returns the
    /// replacement delay.
    pub fn report_injected_kill(&mut self, now: Millis) -> Millis {
        self.events.push((now, ContainerEvent::InjectedKill));
        self.replacement_delay
    }

    /// Records the loss of a whole node (`containers` containers die at
    /// once) and returns the recovery delay before replacements are up.
    pub fn report_node_loss(&mut self, now: Millis, containers: u32) -> Millis {
        for _ in 0..containers.max(1) {
            self.events.push((now, ContainerEvent::NodeLoss));
        }
        self.node_loss_delay
    }

    /// Total container failures of any kind.
    pub fn failures(&self) -> u32 {
        self.events.len() as u32
    }

    /// Count of out-of-memory failures.
    pub fn oom_failures(&self) -> u32 {
        self.events
            .iter()
            .filter(|(_, e)| *e == ContainerEvent::OutOfMemory)
            .count() as u32
    }

    /// Count of RSS-cap kills.
    pub fn rss_kills(&self) -> u32 {
        self.events
            .iter()
            .filter(|(_, e)| *e == ContainerEvent::RssKill)
            .count() as u32
    }

    /// Count of injected failures (transient kills plus node-loss
    /// casualties) — the failures a fault plan, not the configuration,
    /// is responsible for.
    pub fn injected_failures(&self) -> u32 {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, ContainerEvent::InjectedKill | ContainerEvent::NodeLoss))
            .count() as u32
    }

    /// The raw failure log.
    pub fn events(&self) -> &[(Millis, ContainerEvent)] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container() -> ContainerSpec {
        ContainerSpec {
            heap: Mem::mb(4404.0),
            phys_cap: Mem::mb(5400.0),
            cores_share: 8.0,
            disk_mb_per_s_share: 180.0,
            net_mb_per_s_share: 120.0,
        }
    }

    #[test]
    fn rss_within_cap_is_fine() {
        let mut rm = ResourceManager::new();
        assert!(rm
            .check_rss(Millis::ZERO, &container(), Mem::mb(5000.0))
            .is_none());
        assert_eq!(rm.failures(), 0);
    }

    #[test]
    fn rss_over_cap_kills() {
        let mut rm = ResourceManager::new();
        let delay = rm.check_rss(Millis::secs(5.0), &container(), Mem::mb(5600.0));
        assert!(delay.is_some());
        assert_eq!(rm.rss_kills(), 1);
        assert_eq!(rm.oom_failures(), 0);
        assert_eq!(rm.failures(), 1);
    }

    #[test]
    fn oom_is_recorded_separately() {
        let mut rm = ResourceManager::new();
        let delay = rm.report_oom(Millis::secs(1.0));
        assert!(delay > Millis::ZERO);
        assert_eq!(rm.oom_failures(), 1);
        assert_eq!(rm.rss_kills(), 0);
    }

    #[test]
    fn injected_failures_are_tallied_separately() {
        let mut rm = ResourceManager::new();
        let kill_delay = rm.report_injected_kill(Millis::secs(1.0));
        let node_delay = rm.report_node_loss(Millis::secs(2.0), 2);
        assert!(node_delay > kill_delay, "node loss recovers slower");
        assert_eq!(rm.injected_failures(), 3); // 1 kill + 2 node casualties
        assert_eq!(rm.failures(), 3);
        assert_eq!(rm.oom_failures(), 0);
        assert_eq!(rm.rss_kills(), 0);
    }

    #[test]
    fn event_log_keeps_order() {
        let mut rm = ResourceManager::new();
        rm.report_oom(Millis::secs(1.0));
        rm.check_rss(Millis::secs(2.0), &container(), Mem::mb(9999.0));
        let events = rm.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].1, ContainerEvent::OutOfMemory);
        assert_eq!(events[1].1, ContainerEvent::RssKill);
    }
}
