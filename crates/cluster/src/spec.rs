//! Cluster hardware descriptions and container carving.

use relm_common::Mem;
use serde::{Deserialize, Serialize};

/// A homogeneous cluster of worker nodes (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable name ("Cluster A", "Cluster B").
    pub name: String,
    /// Number of worker nodes.
    pub nodes: u32,
    /// Physical memory of each node.
    pub mem_per_node: Mem,
    /// Physical CPU cores per node.
    pub cores_per_node: u32,
    /// Aggregate disk bandwidth per node (MB/s).
    pub disk_mb_per_s: f64,
    /// Network bandwidth per node (MB/s).
    pub net_mb_per_s: f64,
    /// The maximum heap budget the resource manager can hand out per node
    /// (node memory minus OS and node-manager overheads). On Cluster A this
    /// is 4404 MB — the heap `MaxResourceAllocation` grants a single fat
    /// container (Table 4).
    pub heap_budget_per_node: Mem,
    /// Per-container physical-memory overhead allowance beyond the heap
    /// (YARN's `memoryOverhead`): the physical cap of a container is
    /// `heap + max(min_overhead, overhead_fraction * heap)`.
    pub min_container_overhead: Mem,
    /// Fractional part of the overhead allowance.
    pub container_overhead_fraction: f64,
}

impl ClusterSpec {
    /// The physical 8-node evaluation cluster of the paper (Table 3),
    /// mimicking EC2 m4.large nodes.
    pub fn cluster_a() -> Self {
        ClusterSpec {
            name: "Cluster A".to_owned(),
            nodes: 8,
            mem_per_node: Mem::gb(6.0),
            cores_per_node: 8,
            disk_mb_per_s: 180.0,
            net_mb_per_s: 120.0, // 1 Gbps
            heap_budget_per_node: Mem::mb(4404.0),
            min_container_overhead: Mem::mb(720.0),
            container_overhead_fraction: 0.26,
        }
    }

    /// The virtual 4-node EC2 cluster of the paper (Table 3).
    pub fn cluster_b() -> Self {
        ClusterSpec {
            name: "Cluster B".to_owned(),
            nodes: 4,
            mem_per_node: Mem::gb(32.0),
            cores_per_node: 16, // 31 ECU ~ 16 vCPUs
            disk_mb_per_s: 320.0,
            net_mb_per_s: 1200.0, // 10 Gbps
            heap_budget_per_node: Mem::gb(16.0),
            min_container_overhead: Mem::mb(1024.0),
            container_overhead_fraction: 0.2,
        }
    }

    /// The heap each container receives when the node is split into
    /// `containers_per_node` homogeneous containers.
    pub fn heap_for(&self, containers_per_node: u32) -> Mem {
        self.heap_budget_per_node / containers_per_node.max(1) as f64
    }

    /// Enumerates the feasible `(containers per node, heap size)` choices.
    /// The paper allows 1 to 4 containers per node (§6.1).
    pub fn container_options(&self) -> Vec<(u32, Mem)> {
        (1..=4).map(|n| (n, self.heap_for(n))).collect()
    }

    /// Builds the container description for a given split.
    pub fn container(&self, containers_per_node: u32) -> ContainerSpec {
        let n = containers_per_node.max(1);
        let heap = self.heap_for(n);
        let overhead = (heap * self.container_overhead_fraction).max(self.min_container_overhead);
        ContainerSpec {
            heap,
            phys_cap: heap + overhead,
            cores_share: self.cores_per_node as f64 / n as f64,
            disk_mb_per_s_share: self.disk_mb_per_s / n as f64,
            net_mb_per_s_share: self.net_mb_per_s / n as f64,
        }
    }

    /// Total containers across the cluster for a given split.
    pub fn total_containers(&self, containers_per_node: u32) -> u32 {
        self.nodes * containers_per_node.max(1)
    }

    /// Upper bound for Task Concurrency given the split: one task per
    /// physical core (§6.1: "the Task Concurrency value can range from 1 to
    /// the ratio of the physical cores to the number of containers").
    pub fn max_task_concurrency(&self, containers_per_node: u32) -> u32 {
        (self.cores_per_node / containers_per_node.max(1)).max(1)
    }
}

/// The resources of one container.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContainerSpec {
    /// JVM heap.
    pub heap: Mem,
    /// Physical-memory cap enforced by the resource manager; exceeding it
    /// gets the container killed.
    pub phys_cap: Mem,
    /// Share of the node's physical cores.
    pub cores_share: f64,
    /// Share of the node's disk bandwidth (MB/s).
    pub disk_mb_per_s_share: f64,
    /// Share of the node's network bandwidth (MB/s).
    pub net_mb_per_s_share: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_matches_table_4() {
        let a = ClusterSpec::cluster_a();
        let options = a.container_options();
        assert_eq!(options.len(), 4);
        assert_eq!(options[0], (1, Mem::mb(4404.0)));
        assert_eq!(options[1], (2, Mem::mb(2202.0)));
        assert_eq!(options[2], (3, Mem::mb(1468.0)));
        assert_eq!(options[3], (4, Mem::mb(1101.0)));
    }

    #[test]
    fn container_resources_split_evenly() {
        let a = ClusterSpec::cluster_a();
        let c2 = a.container(2);
        assert_eq!(c2.heap, Mem::mb(2202.0));
        assert_eq!(c2.cores_share, 4.0);
        assert!(
            c2.phys_cap > c2.heap,
            "physical cap must leave off-heap headroom"
        );
    }

    #[test]
    fn phys_cap_headroom_shrinks_with_more_containers() {
        let a = ClusterSpec::cluster_a();
        let h1 = a.container(1).phys_cap - a.container(1).heap;
        let h4 = a.container(4).phys_cap - a.container(4).heap;
        assert!(h1 > h4);
    }

    #[test]
    fn concurrency_bounds_follow_cores() {
        let a = ClusterSpec::cluster_a();
        assert_eq!(a.max_task_concurrency(1), 8);
        assert_eq!(a.max_task_concurrency(2), 4);
        assert_eq!(a.max_task_concurrency(4), 2);
        let b = ClusterSpec::cluster_b();
        assert_eq!(b.max_task_concurrency(1), 16);
    }

    #[test]
    fn total_containers() {
        assert_eq!(ClusterSpec::cluster_a().total_containers(3), 24);
        assert_eq!(ClusterSpec::cluster_b().total_containers(2), 8);
    }

    #[test]
    fn cluster_b_is_bigger_per_node() {
        let a = ClusterSpec::cluster_a();
        let b = ClusterSpec::cluster_b();
        assert!(b.mem_per_node > a.mem_per_node);
        assert!(b.net_mb_per_s > a.net_mb_per_s);
        assert!(b.nodes < a.nodes);
    }
}
