//! The tuned configuration space (§6.1).
//!
//! Black-box policies tune four knobs: containers per node (1–4), task
//! concurrency (1 to cores/containers), the dominant memory pool's capacity
//! (cache for cache-heavy applications, shuffle otherwise — the minor pool
//! is pinned at 0.1), and `NewRatio` (1–9). `SurvivorRatio` stays at its
//! default of 8 throughout, as in the paper.

use relm_app::AppSpec;
use relm_cluster::ClusterSpec;
use relm_common::{MemoryConfig, MAX_CONTAINERS_PER_NODE, MAX_NEW_RATIO};
use serde::{Deserialize, Serialize};

/// Which of the two application-level pools is tuned as the 3rd dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DominantPool {
    /// Cache Storage dominates (iterative/ML/graph applications).
    Cache,
    /// Task Shuffle dominates (map-reduce applications).
    Shuffle,
}

/// The 4-dimensional tuned space over a specific cluster.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    cluster: ClusterSpec,
    dominant: DominantPool,
    /// Capacity assigned to the non-dominant pool (0.1 in the paper, 0 when
    /// the application does not use it at all).
    minor_fraction: f64,
}

/// Number of tuned dimensions.
pub const DIMS: usize = 4;

/// Bounds of the capacity dimension.
const CAP_MIN: f64 = 0.05;
const CAP_MAX: f64 = 0.8;
/// Bounds of the NewRatio dimension (upper bound shared with the
/// [`MemoryConfig`] invariants so decoded points always pass `check`).
const NR_MIN: u32 = 1;
const NR_MAX: u32 = MAX_NEW_RATIO;

impl ConfigSpace {
    /// Builds the space for an application: the dominant pool follows the
    /// application's character, mirroring the paper's per-application choice.
    pub fn for_app(cluster: &ClusterSpec, app: &AppSpec) -> Self {
        let dominant = if app.uses_cache() {
            DominantPool::Cache
        } else {
            DominantPool::Shuffle
        };
        let minor_fraction = match dominant {
            DominantPool::Cache if app.uses_shuffle_memory() => 0.1,
            DominantPool::Cache => 0.0,
            DominantPool::Shuffle if app.uses_cache() => 0.1,
            DominantPool::Shuffle => 0.0,
        };
        ConfigSpace {
            cluster: cluster.clone(),
            dominant,
            minor_fraction,
        }
    }

    /// The cluster the space is defined over.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The dominant pool being tuned.
    pub fn dominant(&self) -> DominantPool {
        self.dominant
    }

    /// Decodes a point of the continuous unit hypercube into a configuration.
    /// Every `x ∈ [0,1]⁴` maps to a *valid* configuration (concurrency is
    /// clamped to the per-container core share).
    pub fn decode(&self, x: &[f64]) -> MemoryConfig {
        assert_eq!(x.len(), DIMS, "expected {DIMS} dimensions");
        let clamp01 = |v: f64| v.clamp(0.0, 1.0);

        let n = 1 + (clamp01(x[0]) * (MAX_CONTAINERS_PER_NODE as f64 - 0.001)).floor() as u32;
        let max_p = self.cluster.max_task_concurrency(n);
        let p = 1 + (clamp01(x[1]) * (max_p as f64 - 1.0)).round() as u32;
        let capacity = CAP_MIN + clamp01(x[2]) * (CAP_MAX - CAP_MIN);
        let new_ratio = NR_MIN + (clamp01(x[3]) * (NR_MAX - NR_MIN) as f64).round() as u32;

        let (cache_fraction, shuffle_fraction) = match self.dominant {
            DominantPool::Cache => (capacity, self.minor_fraction),
            DominantPool::Shuffle => (self.minor_fraction, capacity),
        };

        let config = MemoryConfig {
            containers_per_node: n,
            heap: self.cluster.heap_for(n),
            task_concurrency: p,
            cache_fraction,
            shuffle_fraction,
            new_ratio,
            survivor_ratio: 8,
        };
        // Every sampled point must land inside the MemoryConfig invariants;
        // a violation here is a bug in the space, not in the caller.
        debug_assert!(
            config.check().is_ok(),
            "decode produced an invalid configuration ({:?}): {config}",
            config.check()
        );
        config
    }

    /// Encodes a configuration back into the unit hypercube (inverse of
    /// [`ConfigSpace::decode`] up to discretization).
    pub fn encode(&self, config: &MemoryConfig) -> [f64; DIMS] {
        let n = config.containers_per_node.clamp(1, MAX_CONTAINERS_PER_NODE);
        let x0 = (n - 1) as f64 / MAX_CONTAINERS_PER_NODE as f64 + 0.125;
        let max_p = self.cluster.max_task_concurrency(n);
        let x1 = if max_p <= 1 {
            0.0
        } else {
            (config.task_concurrency.min(max_p) - 1) as f64 / (max_p - 1) as f64
        };
        let capacity = match self.dominant {
            DominantPool::Cache => config.cache_fraction,
            DominantPool::Shuffle => config.shuffle_fraction,
        };
        let x2 = ((capacity - CAP_MIN) / (CAP_MAX - CAP_MIN)).clamp(0.0, 1.0);
        let x3 =
            (config.new_ratio.clamp(NR_MIN, NR_MAX) - NR_MIN) as f64 / (NR_MAX - NR_MIN) as f64;
        [x0, x1, x2, x3]
    }

    /// The Exhaustive Search grid: each dimension discretized into 4 values,
    /// invalid concurrency values collapsed — 192 configurations on
    /// Cluster A, exactly as in §6.1.
    pub fn grid(&self) -> Vec<MemoryConfig> {
        let mut out = Vec::new();
        for n in 1u32..=MAX_CONTAINERS_PER_NODE {
            let max_p = self.cluster.max_task_concurrency(n);
            // 4 concurrency values spread over [1, max_p], deduplicated.
            let mut ps: Vec<u32> = (0..4)
                .map(|i| 1 + ((max_p - 1) as f64 * i as f64 / 3.0).round() as u32)
                .collect();
            ps.dedup();
            for &p in &ps {
                for cap in [0.2, 0.4, 0.6, 0.8] {
                    for nr in [1u32, 3, 5, 7] {
                        let (cache_fraction, shuffle_fraction) = match self.dominant {
                            DominantPool::Cache => (cap, self.minor_fraction),
                            DominantPool::Shuffle => (self.minor_fraction, cap),
                        };
                        out.push(MemoryConfig {
                            containers_per_node: n,
                            heap: self.cluster.heap_for(n),
                            task_concurrency: p,
                            cache_fraction,
                            shuffle_fraction,
                            new_ratio: nr,
                            survivor_ratio: 8,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_workloads::{kmeans, sortbykey, wordcount};

    fn cache_space() -> ConfigSpace {
        ConfigSpace::for_app(&ClusterSpec::cluster_a(), &kmeans())
    }

    #[test]
    fn dominant_pool_follows_application() {
        assert_eq!(cache_space().dominant(), DominantPool::Cache);
        let shuffle = ConfigSpace::for_app(&ClusterSpec::cluster_a(), &sortbykey());
        assert_eq!(shuffle.dominant(), DominantPool::Shuffle);
        let wc = ConfigSpace::for_app(&ClusterSpec::cluster_a(), &wordcount());
        assert_eq!(wc.dominant(), DominantPool::Shuffle);
    }

    #[test]
    fn decode_covers_corners() {
        let space = cache_space();
        let lo = space.decode(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(lo.containers_per_node, 1);
        assert_eq!(lo.task_concurrency, 1);
        assert!((lo.cache_fraction - 0.05).abs() < 1e-9);
        assert_eq!(lo.new_ratio, 1);

        let hi = space.decode(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(hi.containers_per_node, 4);
        assert_eq!(hi.task_concurrency, 2); // 8 cores / 4 containers
        assert!((hi.cache_fraction - 0.8).abs() < 1e-9);
        assert_eq!(hi.new_ratio, 9);
    }

    #[test]
    fn decoded_configs_are_valid() {
        let space = cache_space();
        for i in 0..200 {
            let t = i as f64 / 199.0;
            let cfg = space.decode(&[t, 1.0 - t, t, (t * 7.0) % 1.0]);
            assert!(cfg.check().is_ok(), "invalid config from decode: {cfg}");
            assert!(cfg.containers_per_node <= MAX_CONTAINERS_PER_NODE);
            assert!(cfg.new_ratio <= MAX_NEW_RATIO);
            let max_p = space
                .cluster()
                .max_task_concurrency(cfg.containers_per_node);
            assert!(cfg.task_concurrency <= max_p);
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let space = cache_space();
        for x in [
            [0.1, 0.2, 0.3, 0.4],
            [0.9, 0.8, 0.7, 0.6],
            [0.5, 0.0, 1.0, 0.25],
        ] {
            let cfg = space.decode(&x);
            let x2 = space.encode(&cfg);
            let cfg2 = space.decode(&x2);
            assert_eq!(cfg, cfg2, "round trip changed the configuration");
        }
    }

    #[test]
    fn grid_has_192_points_on_cluster_a() {
        // 12 (n, p) pairs × 4 capacities × 4 NewRatios = 192 (§6.1).
        assert_eq!(cache_space().grid().len(), 192);
    }

    #[test]
    fn grid_points_are_valid_and_unique() {
        let grid = cache_space().grid();
        for cfg in &grid {
            assert!(cfg.validate().is_ok());
        }
        let mut keys: Vec<String> = grid.iter().map(|c| c.to_string()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), grid.len(), "grid contains duplicates");
    }

    #[test]
    fn minor_pool_assignment() {
        // K-means uses no shuffle memory: minor pool is 0.
        let km = cache_space().decode(&[0.0; 4]);
        assert_eq!(km.shuffle_fraction, 0.0);
        // SortByKey uses no cache: minor pool is 0.
        let sbk = ConfigSpace::for_app(&ClusterSpec::cluster_a(), &sortbykey()).decode(&[0.0; 4]);
        assert_eq!(sbk.cache_fraction, 0.0);
    }
}
