//! Baseline policies: the cloud-vendor default, exhaustive grid search, and
//! random search.

use crate::env::TuningEnv;
use crate::tuner::{recommendation, Recommendation, Tuner};
use relm_common::{Result, Rng};
use relm_workloads::max_resource_allocation;

/// Amazon EMR's `MaxResourceAllocation` plus the framework defaults
/// (Table 4): no stress tests at all.
#[derive(Debug, Default)]
pub struct DefaultPolicy;

impl Tuner for DefaultPolicy {
    fn name(&self) -> &'static str {
        "Default"
    }

    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation> {
        let obs = env.obs().clone();
        let _session = obs.span("tuner.tune").with("policy", self.name());
        let t0 = std::time::Instant::now();
        let config = {
            let _decide = obs.span("default.decide");
            max_resource_allocation(env.engine().cluster(), env.app())
        };
        obs.record("default.decide_ms", t0.elapsed().as_secs_f64() * 1e3);
        Ok(recommendation(self.name(), env, config))
    }
}

/// Exhaustive grid search over the 192-point grid of §6.1. Deliberately
/// inefficient; used as the quality baseline for every other policy.
#[derive(Debug, Default)]
pub struct ExhaustiveSearch;

impl Tuner for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation> {
        let obs = env.obs().clone();
        let _session = obs.span("tuner.tune").with("policy", self.name());
        let t0 = std::time::Instant::now();
        let grid = {
            let _decide = obs.span("exhaustive.decide").with("kind", "grid");
            env.space().grid()
        };
        obs.record("exhaustive.decide_ms", t0.elapsed().as_secs_f64() * 1e3);
        for config in grid {
            env.evaluate(&config);
        }
        let best = env
            .best()
            .ok_or_else(|| relm_common::Error::Tuning("empty grid".into()))?
            .config;
        Ok(recommendation(self.name(), env, best))
    }
}

/// Uniform random search with a fixed budget of stress tests — the simplest
/// black-box baseline (§2.2's "model-free exploration").
#[derive(Debug)]
pub struct RandomSearch {
    budget: usize,
    rng: Rng,
}

impl RandomSearch {
    /// Creates a random search with the given stress-test budget.
    pub fn new(budget: usize, seed: u64) -> Self {
        RandomSearch {
            budget,
            rng: Rng::new(seed),
        }
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation> {
        let obs = env.obs().clone();
        let _session = obs.span("tuner.tune").with("policy", self.name());
        for iter in 0..self.budget {
            let t0 = std::time::Instant::now();
            let config = {
                let _decide = obs.span("random.decide").with("iter", iter);
                let x = [
                    self.rng.uniform(),
                    self.rng.uniform(),
                    self.rng.uniform(),
                    self.rng.uniform(),
                ];
                env.space().decode(&x)
            };
            obs.record("random.decide_ms", t0.elapsed().as_secs_f64() * 1e3);
            env.evaluate(&config);
        }
        let best = env
            .best()
            .ok_or_else(|| relm_common::Error::Tuning("zero budget".into()))?
            .config;
        Ok(recommendation(self.name(), env, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_app::Engine;
    use relm_cluster::ClusterSpec;
    use relm_workloads::wordcount;

    fn env() -> TuningEnv {
        TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), wordcount(), 5)
    }

    #[test]
    fn default_policy_runs_no_stress_tests() {
        let mut env = env();
        let rec = DefaultPolicy.tune(&mut env).unwrap();
        assert_eq!(rec.evaluations, 0);
        assert_eq!(rec.config.containers_per_node, 1);
        assert_eq!(rec.config.task_concurrency, 2);
    }

    #[test]
    fn random_search_respects_budget_and_picks_best() {
        let mut env = env();
        let rec = RandomSearch::new(6, 1).tune(&mut env).unwrap();
        assert_eq!(rec.evaluations, 6);
        let best_score = env.best().unwrap().score_mins;
        // The recommendation is the best of the history.
        assert!(env
            .history()
            .iter()
            .any(|o| o.config == rec.config && o.score_mins == best_score));
    }

    #[test]
    fn random_search_is_reproducible() {
        let mut e1 = env();
        let mut e2 = env();
        let r1 = RandomSearch::new(4, 9).tune(&mut e1).unwrap();
        let r2 = RandomSearch::new(4, 9).tune(&mut e2).unwrap();
        assert_eq!(r1.config, r2.config);
    }

    // Exhaustive search over 192 configs is exercised in the integration
    // tests (it is slow in debug builds).
}
