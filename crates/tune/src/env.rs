//! The tuning environment: stress-test execution, objective scoring, and
//! bookkeeping shared by every tuning policy.

use crate::space::ConfigSpace;
use relm_app::{AppSpec, Engine, RunResult};
use relm_common::{Mem, MemoryConfig, Millis};
use relm_obs::Obs;
use relm_profile::Profile;
use serde::{Deserialize, Serialize};

/// Multiplier applied to the worst observed runtime when scoring an
/// aborted run (§6.1).
pub const ABORT_PENALTY_FACTOR: f64 = 2.0;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The configuration that was run.
    pub config: MemoryConfig,
    /// The run's metrics.
    pub result: RunResult,
    /// Objective value in minutes. Aborted runs are penalized at twice the
    /// worst runtime observed so far (§6.1), which keeps the failing region
    /// ranked low during exploration.
    pub score_mins: f64,
}

/// Wraps an engine + application + space, executing stress tests and keeping
/// the evaluation history a tuning policy accumulates.
pub struct TuningEnv {
    engine: Engine,
    app: AppSpec,
    space: ConfigSpace,
    history: Vec<Observation>,
    next_seed: u64,
    worst_mins: f64,
    obs: Obs,
}

impl TuningEnv {
    /// Creates an environment. `base_seed` makes the whole tuning session
    /// reproducible; policies repeated with different base seeds produce the
    /// run-to-run variability of Figures 18–20.
    ///
    /// The environment adopts the engine's observability handle, so a
    /// single `Engine::with_obs` call instruments the whole stack.
    pub fn new(engine: Engine, app: AppSpec, base_seed: u64) -> Self {
        let space = ConfigSpace::for_app(engine.cluster(), &app);
        let obs = engine.obs().clone();
        TuningEnv {
            engine,
            app,
            space,
            history: Vec::new(),
            next_seed: base_seed,
            worst_mins: 0.0,
            obs,
        }
    }

    /// Replaces the observability handle (also propagated to future runs
    /// recorded by this environment, not the engine's own spans).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle shared by this environment and the tuners
    /// driving it.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The configuration space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The application under tuning.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn score(&mut self, result: &RunResult) -> f64 {
        let mins = result.runtime_mins();
        // `worst_mins` tracks the worst *observed* runtime, never a
        // penalized score — otherwise consecutive aborts would compound the
        // ×2 penalty and blow up the objective scale.
        self.worst_mins = self.worst_mins.max(mins);
        if result.aborted {
            self.obs.inc("env.abort_penalties");
            ABORT_PENALTY_FACTOR * self.worst_mins
        } else {
            mins
        }
    }

    /// Runs a stress test: executes the application under `config`, scores
    /// it, and appends to the history. Returns the observation.
    pub fn evaluate(&mut self, config: &MemoryConfig) -> Observation {
        let (obs, _) = self.evaluate_profiled(config);
        obs
    }

    /// Like [`TuningEnv::evaluate`] but also returns the collected profile
    /// (used by RelM and GBO).
    pub fn evaluate_profiled(&mut self, config: &MemoryConfig) -> (Observation, Profile) {
        let seed = self.next_seed;
        self.next_seed = self.next_seed.wrapping_add(0x9E37).wrapping_mul(3) | 1;
        let mut span = self.obs.span("env.evaluate");
        let (result, profile) = self.engine.run(&self.app, config, seed);
        let score = self.score(&result);
        if span.is_recording() {
            span.set("seed", seed);
            span.set("score_mins", score);
            span.set("aborted", result.aborted);
            self.obs.inc("env.stress_tests");
            self.obs.add("env.stress_time_ms", result.runtime.as_ms());
            self.obs.record("env.score_mins", score);
        }
        drop(span);
        let obs = Observation {
            config: *config,
            result,
            score_mins: score,
        };
        self.history.push(obs.clone());
        (obs, profile)
    }

    /// All evaluations so far, in order.
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Number of stress tests run.
    pub fn evaluations(&self) -> usize {
        self.history.len()
    }

    /// The best (lowest-score) observation so far.
    pub fn best(&self) -> Option<&Observation> {
        self.history
            .iter()
            .min_by(|a, b| a.score_mins.partial_cmp(&b.score_mins).expect("NaN score"))
    }

    /// Total simulated wall-clock time spent in stress tests — the dominant
    /// training overhead of Figure 16.
    pub fn stress_time(&self) -> Millis {
        self.history.iter().map(|o| o.result.runtime).sum()
    }

    /// Convenience: the per-container heap for `n` containers per node.
    pub fn heap_for(&self, containers_per_node: u32) -> Mem {
        self.engine.cluster().heap_for(containers_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_cluster::ClusterSpec;
    use relm_workloads::{max_resource_allocation, wordcount};

    fn env() -> TuningEnv {
        TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), wordcount(), 11)
    }

    #[test]
    fn evaluate_records_history_and_best() {
        let mut env = env();
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        let o1 = env.evaluate(&cfg);
        let mut thin = cfg;
        thin.containers_per_node = 4;
        thin.heap = env.heap_for(4);
        let o2 = env.evaluate(&thin);
        assert_eq!(env.evaluations(), 2);
        assert!(env.stress_time() > Millis::ZERO);
        let best = env.best().unwrap();
        assert_eq!(best.score_mins, o1.score_mins.min(o2.score_mins));
    }

    #[test]
    fn aborted_runs_are_penalized() {
        let mut env = TuningEnv::new(
            Engine::new(ClusterSpec::cluster_a()),
            relm_workloads::pagerank(),
            3,
        );
        // A config that is safe first, then one that aborts.
        let safe = MemoryConfig {
            containers_per_node: 2,
            heap: ClusterSpec::cluster_a().heap_for(2),
            task_concurrency: 1,
            cache_fraction: 0.2,
            shuffle_fraction: 0.0,
            new_ratio: 3,
            survivor_ratio: 8,
        };
        let safe_obs = env.evaluate(&safe);
        assert!(!safe_obs.result.aborted);
        assert_eq!(safe_obs.score_mins, safe_obs.result.runtime_mins());

        let oomy = MemoryConfig {
            task_concurrency: 8,
            cache_fraction: 0.8,
            ..safe
        };
        let mut saw_abort = false;
        for _ in 0..6 {
            let obs = env.evaluate(&oomy);
            if obs.result.aborted {
                saw_abort = true;
                assert!(
                    obs.score_mins >= obs.result.runtime_mins() * 2.0
                        || obs.score_mins >= 2.0 * safe_obs.score_mins,
                    "aborted run must be penalized"
                );
            }
        }
        assert!(
            saw_abort,
            "expected the hostile config to abort at least once"
        );
    }

    #[test]
    fn abort_penalty_does_not_compound_across_consecutive_aborts() {
        let mut env = TuningEnv::new(
            Engine::new(ClusterSpec::cluster_a()),
            relm_workloads::pagerank(),
            3,
        );
        let hostile = MemoryConfig {
            containers_per_node: 2,
            heap: ClusterSpec::cluster_a().heap_for(2),
            task_concurrency: 8,
            cache_fraction: 0.8,
            shuffle_fraction: 0.0,
            new_ratio: 3,
            survivor_ratio: 8,
        };
        for _ in 0..8 {
            env.evaluate(&hostile);
        }
        // Every penalized score must be exactly 2× the worst runtime seen
        // up to that point; feeding penalized scores back into the
        // baseline would instead double it on every consecutive abort.
        let mut worst = 0.0f64;
        let mut aborts = 0;
        for o in env.history() {
            worst = worst.max(o.result.runtime_mins());
            if o.result.aborted {
                aborts += 1;
                assert_eq!(o.score_mins, ABORT_PENALTY_FACTOR * worst);
            }
        }
        assert!(aborts >= 2, "hostile config should abort repeatedly");
    }

    #[test]
    fn seeds_differ_across_evaluations() {
        let mut env = env();
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        let a = env.evaluate(&cfg);
        let b = env.evaluate(&cfg);
        assert_ne!(a.result.runtime, b.result.runtime);
    }
}
