//! The tuning environment: stress-test execution, objective scoring, and
//! bookkeeping shared by every tuning policy.

use crate::cache::{counter_deltas, CachedEval, EvalStore};
use crate::space::ConfigSpace;
use relm_app::{AppSpec, Engine, RunResult};
use relm_common::{Mem, MemoryConfig, Millis};
use relm_evalcache::{EvalKey, KeyBuilder};
use relm_faults::{AbortCause, AbortClass};
use relm_obs::Obs;
use relm_profile::{derive_stats, Profile, StatsAccumulator};
use serde::{Deserialize, Serialize};

/// Multiplier applied to the worst observed runtime when scoring an
/// aborted run (§6.1).
pub const ABORT_PENALTY_FACTOR: f64 = 2.0;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The configuration that was run.
    pub config: MemoryConfig,
    /// The metrics of the *final* attempt.
    pub result: RunResult,
    /// Objective value in minutes. Aborted runs are penalized at twice the
    /// worst runtime observed so far (§6.1), which keeps the failing region
    /// ranked low during exploration. When the final attempt aborted or
    /// timed out this is a *censored* score: the surrogate sees the
    /// penalty, not the (unknown) true runtime.
    pub score_mins: f64,
    /// How many extra attempts the retry policy spent before this
    /// observation settled (0 = first attempt stood).
    pub retries: u32,
}

impl Observation {
    /// True when the score is censored — the run never finished cleanly,
    /// so `score_mins` is a penalty bound rather than a measurement.
    pub fn is_censored(&self) -> bool {
        self.result.aborted
    }
}

/// Bounded retry/recovery for stress tests on a faulty substrate.
///
/// A real tuning session does not give up on a configuration because a
/// spot instance was preempted mid-run; it re-submits, with backoff, a
/// bounded number of times — and only for abort causes where retrying can
/// help. [`AbortClass::Persistent`] failures (the configuration's own
/// OOMs) are never retried: the rerun would fail the same way and the
/// stress-time budget is better spent elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-executions after a retryable abort (mirrors Spark's
    /// `spark.task.maxFailures = 4`).
    pub max_retries: u32,
    /// Backoff before the first retry, charged to stress time.
    pub backoff: Millis,
    /// Backoff growth per retry (exponential).
    pub backoff_factor: f64,
    /// Per-evaluation budget: a run that would exceed this is cut off and
    /// censored as a [`AbortCause::Timeout`] abort at the budget.
    pub timeout: Option<Millis>,
}

impl RetryPolicy {
    /// The default policy: up to 4 retries, 10 s doubling backoff, no
    /// timeout.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff: Millis::secs(10.0),
            backoff_factor: 2.0,
            timeout: None,
        }
    }

    /// Never retry, never time out — every abort is recorded as-is.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Millis::ZERO,
            backoff_factor: 1.0,
            timeout: None,
        }
    }

    /// The backoff charged before retry number `retry` (1-based).
    pub fn backoff_for(&self, retry: u32) -> Millis {
        let exp = self
            .backoff_factor
            .max(1.0)
            .powi(retry.saturating_sub(1) as i32);
        Millis::ms(self.backoff.as_ms() * exp)
    }

    /// Whether a run aborted with `cause` should be retried after `retries`
    /// re-executions already spent.
    pub fn should_retry(&self, cause: AbortCause, retries: u32) -> bool {
        retries < self.max_retries && cause.class() != AbortClass::Persistent
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Wraps an engine + application + space, executing stress tests and keeping
/// the evaluation history a tuning policy accumulates.
pub struct TuningEnv {
    engine: Engine,
    app: AppSpec,
    space: ConfigSpace,
    history: Vec<Observation>,
    next_seed: u64,
    worst_mins: f64,
    retry: RetryPolicy,
    /// Simulated time burned on failed attempts and backoff — part of the
    /// session's stress time even though no observation records it.
    retry_time: Millis,
    obs: Obs,
    /// Optional shared evaluation cache. `None` (the default) runs every
    /// stress test live.
    cache: Option<EvalStore>,
    /// Lazily computed fingerprint of the cache key's per-session
    /// constants (app, cluster, cost model, fault plan, retry policy), so
    /// per-evaluation keys only re-encode what actually varies.
    cache_static_fp: Option<EvalKey>,
    /// Evaluations answered from the cache instead of run live — cost
    /// attribution for the serving layer's per-session status.
    cache_hits: u64,
    /// Running aggregate of each clean evaluation's Table-6 statistics.
    /// Profiles themselves are dropped once scored; this compact remainder
    /// is what `relm-memory` fingerprints a session from, so checkpoint
    /// and drain never need a live profile. Fed identically by the live
    /// and cache-replay paths.
    stats_acc: StatsAccumulator,
}

impl TuningEnv {
    /// Creates an environment. `base_seed` makes the whole tuning session
    /// reproducible; policies repeated with different base seeds produce the
    /// run-to-run variability of Figures 18–20.
    ///
    /// The environment adopts the engine's observability handle, so a
    /// single `Engine::with_obs` call instruments the whole stack.
    pub fn new(engine: Engine, app: AppSpec, base_seed: u64) -> Self {
        let space = ConfigSpace::for_app(engine.cluster(), &app);
        let obs = engine.obs().clone();
        TuningEnv {
            engine,
            app,
            space,
            history: Vec::new(),
            next_seed: base_seed,
            worst_mins: 0.0,
            retry: RetryPolicy::standard(),
            retry_time: Millis::ZERO,
            obs,
            cache: None,
            cache_static_fp: None,
            cache_hits: 0,
            stats_acc: StatsAccumulator::new(),
        }
    }

    /// Reconstructs an environment from checkpointed state (see
    /// `SessionCheckpoint` in the export module). The restored environment
    /// continues exactly where the captured one stopped: same seed chain,
    /// same penalty baseline, same history.
    pub fn restore(
        engine: Engine,
        app: AppSpec,
        next_seed: u64,
        worst_mins: f64,
        retry_time: Millis,
        history: Vec<Observation>,
    ) -> Self {
        let space = ConfigSpace::for_app(engine.cluster(), &app);
        let obs = engine.obs().clone();
        TuningEnv {
            engine,
            app,
            space,
            history,
            next_seed,
            worst_mins,
            retry: RetryPolicy::standard(),
            retry_time,
            obs,
            cache: None,
            cache_static_fp: None,
            cache_hits: 0,
            stats_acc: StatsAccumulator::new(),
        }
    }

    /// The seed the next evaluation will run under (checkpoint state).
    pub fn next_seed(&self) -> u64 {
        self.next_seed
    }

    /// The worst observed runtime in minutes — the abort-penalty baseline
    /// (checkpoint state).
    pub fn worst_mins(&self) -> f64 {
        self.worst_mins
    }

    /// Replaces the retry policy (the default is [`RetryPolicy::standard`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        // The retry policy is part of the cache key's static fingerprint.
        self.cache_static_fp = None;
        self
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Replaces the observability handle (also propagated to future runs
    /// recorded by this environment, not the engine's own spans).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a shared evaluation cache. Evaluations whose full input —
    /// application, cluster, cost model, configuration, seed-chain
    /// position, fault plan, retry policy — was already simulated (by this
    /// environment, a sibling worker, or a previous process via the
    /// persistent store) are replayed from the cached outcome instead of
    /// re-simulated: same history bytes, same counters, no engine time.
    pub fn with_cache(mut self, cache: EvalStore) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached evaluation cache, if any.
    pub fn cache(&self) -> Option<&EvalStore> {
        self.cache.as_ref()
    }

    /// The observability handle shared by this environment and the tuners
    /// driving it.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The configuration space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The application under tuning.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Scores a settled result against the current penalty baseline
    /// without touching observability. Shared by the live path (which adds
    /// the `env.abort_penalties` counter on top) and the cache-replay path
    /// (where that counter arrives via the replayed deltas instead).
    fn score_value(&mut self, result: &RunResult) -> f64 {
        let mins = result.runtime_mins();
        // `worst_mins` tracks the worst *observed* runtime, never a
        // penalized score — otherwise consecutive aborts would compound the
        // ×2 penalty and blow up the objective scale.
        self.worst_mins = self.worst_mins.max(mins);
        if result.aborted {
            ABORT_PENALTY_FACTOR * self.worst_mins
        } else {
            mins
        }
    }

    fn score(&mut self, result: &RunResult) -> f64 {
        if result.aborted {
            self.obs.inc("env.abort_penalties");
        }
        self.score_value(result)
    }

    /// Runs a stress test: executes the application under `config`, scores
    /// it, and appends to the history. Returns the observation.
    pub fn evaluate(&mut self, config: &MemoryConfig) -> Observation {
        let (obs, _) = self.evaluate_profiled(config);
        obs
    }

    /// Applies the per-evaluation timeout: a run that would exceed the
    /// budget is cut off there and censored as a `Timeout` abort.
    fn apply_timeout(&self, result: &mut RunResult) {
        if let Some(budget) = self.retry.timeout {
            if result.runtime > budget {
                result.runtime = budget;
                result.aborted = true;
                result.abort_cause = Some(AbortCause::Timeout);
                self.obs.inc("env.timeouts");
            }
        }
    }

    /// Runs one attempt and classifies the outcome.
    fn run_attempt(&mut self, config: &MemoryConfig) -> (RunResult, Profile) {
        let seed = self.next_seed;
        self.next_seed = self.next_seed.wrapping_add(0x9E37).wrapping_mul(3) | 1;
        let mut span = self.obs.span("env.evaluate");
        let (mut result, profile) = self.engine.run(&self.app, config, seed);
        self.apply_timeout(&mut result);
        if let Some(cause) = result.abort_cause.filter(|_| result.aborted) {
            // Per-cause abort histogram; summed over causes this equals
            // env.retries + the number of censored observations.
            self.obs.inc(&format!("env.aborts.{cause}"));
        }
        if span.is_recording() {
            span.set("seed", seed);
            span.set("aborted", result.aborted);
            if let Some(cause) = result.abort_cause {
                span.set("abort_cause", cause.as_str());
            }
            self.obs.inc("env.stress_tests");
            self.obs.add("env.stress_time_ms", result.runtime.as_ms());
        }
        (result, profile)
    }

    /// Like [`TuningEnv::evaluate`] but also returns the collected profile
    /// (used by RelM and GBO).
    ///
    /// Failed attempts whose abort cause is transient or infrastructural
    /// are retried (with backoff) up to the policy's bound; each retry runs
    /// under a fresh seed so an injected fault does not recur identically.
    /// Only the attempt that settles is recorded in the history — but every
    /// attempt's runtime, plus backoff, is charged to
    /// [`TuningEnv::stress_time`].
    ///
    /// With a cache attached (see [`TuningEnv::with_cache`]) the
    /// evaluation is first looked up under its content-addressed key; a
    /// hit replays the memoized outcome — advancing the seed chain,
    /// charging retry time, replaying the counter deltas, and re-scoring
    /// against the current penalty baseline — producing the exact history
    /// a live run would have.
    pub fn evaluate_profiled(&mut self, config: &MemoryConfig) -> (Observation, Profile) {
        let Some(cache) = self.cache.clone() else {
            return self.evaluate_live(config);
        };
        let key = self.eval_key(config);
        if let Some(cached) = cache.get(&key) {
            return self.replay_cached(config, &cached);
        }
        let counters_before = self.obs.counters();
        let retry_time_before = self.retry_time;
        let (obs, profile) = self.evaluate_live(config);
        let counters_after = self.obs.counters();
        cache.insert(
            key,
            CachedEval {
                result: obs.result.clone(),
                profile: profile.clone(),
                retries: obs.retries,
                retry_time: Millis::ms(self.retry_time.as_ms() - retry_time_before.as_ms()),
                counters: counter_deltas(&counters_before, &counters_after),
            },
        );
        (obs, profile)
    }

    /// The content-addressed identity of the *next* evaluation of
    /// `config`: everything the engine's outcome is a pure function of.
    /// The seed-chain position is part of the key, so repeated evaluations
    /// of the same configuration within a session stay distinct — exactly
    /// as they are live.
    ///
    /// The session constants (application, cluster, cost model, fault
    /// plan, retry policy) are folded into one fingerprint on first use;
    /// per-evaluation keys then only encode the configuration and the seed
    /// position, keeping key construction off the replay hot path's
    /// critical cost.
    ///
    /// Public because the serving fleet uses the same key as its
    /// cross-worker deduplication identity: the center computes it when
    /// leasing an evaluation to a remote worker, and any worker's result
    /// landed under it commits at most once.
    pub fn eval_key(&mut self, config: &MemoryConfig) -> EvalKey {
        let fp = *self.cache_static_fp.get_or_insert_with(|| {
            let mut key = KeyBuilder::new("tuning-env-static/v1")
                .field("app", &self.app)
                .field("cluster", self.engine.cluster())
                .field("cost", self.engine.cost_model())
                .field("retry", &self.retry);
            if let Some(plan) = self.engine.faults() {
                key = key.field("faults", plan);
            }
            key.finish()
        });
        KeyBuilder::new("tuning-env/v1")
            .field("env", &fp.hex())
            .field("config", config)
            .field("seed", &self.next_seed)
            .finish()
    }

    /// Runs the retry loop live against the engine.
    fn evaluate_live(&mut self, config: &MemoryConfig) -> (Observation, Profile) {
        let mut retries = 0u32;
        let (result, profile) = loop {
            let (result, profile) = self.run_attempt(config);
            let retryable = result
                .abort_cause
                .filter(|_| result.aborted)
                .is_some_and(|cause| self.retry.should_retry(cause, retries));
            if !retryable {
                break (result, profile);
            }
            retries += 1;
            let backoff = self.retry.backoff_for(retries);
            self.retry_time += result.runtime + backoff;
            self.obs.inc("env.retries");
            self.obs.add("env.backoff_ms", backoff.as_ms());
        };
        let score = self.score(&result);
        self.obs.record("env.score_mins", score);
        if !result.aborted {
            self.stats_acc.add(&derive_stats(&profile));
        }
        let obs = Observation {
            config: *config,
            result,
            score_mins: score,
            retries,
        };
        self.history.push(obs.clone());
        (obs, profile)
    }

    /// Replays a memoized evaluation: identical session state transitions
    /// (seed chain, retry time, penalty baseline, history) and identical
    /// counters (via the stored deltas) — without touching the engine.
    fn replay_cached(
        &mut self,
        config: &MemoryConfig,
        cached: &CachedEval,
    ) -> (Observation, Profile) {
        self.cache_hits += 1;
        // One seed-chain step per attempt, exactly as `run_attempt` would
        // have advanced it.
        for _ in 0..=cached.retries {
            self.next_seed = self.next_seed.wrapping_add(0x9E37).wrapping_mul(3) | 1;
        }
        self.retry_time += cached.retry_time;
        for (name, delta) in &cached.counters {
            self.obs.add(name, *delta);
        }
        // Scores are session state, not evaluation state: re-derive against
        // the *current* worst-runtime baseline. `env.abort_penalties` was
        // already replayed through the deltas, so the silent scorer is the
        // right one here.
        let score = self.score_value(&cached.result);
        self.obs.record("env.score_mins", score);
        // The replayed profile feeds the stats aggregate exactly as the
        // live run would have — a warm session fingerprints identically.
        if !cached.result.aborted {
            self.stats_acc.add(&derive_stats(&cached.profile));
        }
        let obs = Observation {
            config: *config,
            result: cached.result.clone(),
            score_mins: score,
            retries: cached.retries,
        };
        self.history.push(obs.clone());
        (obs, cached.profile.clone())
    }

    /// All evaluations so far, in order.
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Number of stress tests run.
    pub fn evaluations(&self) -> usize {
        self.history.len()
    }

    /// The best (lowest-score) observation so far. NaN scores (which a
    /// degenerate surrogate or corrupted profile can produce) sort last
    /// instead of panicking.
    pub fn best(&self) -> Option<&Observation> {
        self.history
            .iter()
            .min_by(|a, b| a.score_mins.total_cmp(&b.score_mins))
    }

    /// Total simulated wall-clock time spent in stress tests, including
    /// failed attempts and retry backoff — the dominant training overhead
    /// of Figure 16.
    pub fn stress_time(&self) -> Millis {
        self.history
            .iter()
            .map(|o| o.result.runtime)
            .sum::<Millis>()
            + self.retry_time
    }

    /// Simulated time burned on failed attempts and backoff alone.
    pub fn retry_time(&self) -> Millis {
        self.retry_time
    }

    /// Total retries across all evaluations.
    pub fn total_retries(&self) -> u32 {
        self.history.iter().map(|o| o.retries).sum()
    }

    /// Evaluations answered from the shared cache instead of run live.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The running aggregate of clean evaluations' Table-6 statistics —
    /// the compact per-session remainder `relm-memory` fingerprints a
    /// workload from.
    pub fn stats_accumulator(&self) -> &StatsAccumulator {
        &self.stats_acc
    }

    /// Mean Table-6 statistics over the session's clean evaluations, or
    /// `None` while every run aborted (or none ran).
    pub fn mean_stats(&self) -> Option<relm_profile::DerivedStats> {
        self.stats_acc.mean()
    }

    /// Convenience: the per-container heap for `n` containers per node.
    pub fn heap_for(&self, containers_per_node: u32) -> Mem {
        self.engine.cluster().heap_for(containers_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_cluster::ClusterSpec;
    use relm_workloads::{max_resource_allocation, wordcount};

    fn env() -> TuningEnv {
        TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), wordcount(), 11)
    }

    #[test]
    fn evaluate_records_history_and_best() {
        let mut env = env();
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        let o1 = env.evaluate(&cfg);
        let mut thin = cfg;
        thin.containers_per_node = 4;
        thin.heap = env.heap_for(4);
        let o2 = env.evaluate(&thin);
        assert_eq!(env.evaluations(), 2);
        assert!(env.stress_time() > Millis::ZERO);
        let best = env.best().unwrap();
        assert_eq!(best.score_mins, o1.score_mins.min(o2.score_mins));
    }

    #[test]
    fn aborted_runs_are_penalized() {
        let mut env = TuningEnv::new(
            Engine::new(ClusterSpec::cluster_a()),
            relm_workloads::pagerank(),
            3,
        );
        // A config that is safe first, then one that aborts.
        let safe = MemoryConfig {
            containers_per_node: 2,
            heap: ClusterSpec::cluster_a().heap_for(2),
            task_concurrency: 1,
            cache_fraction: 0.2,
            shuffle_fraction: 0.0,
            new_ratio: 3,
            survivor_ratio: 8,
        };
        let safe_obs = env.evaluate(&safe);
        assert!(!safe_obs.result.aborted);
        assert_eq!(safe_obs.score_mins, safe_obs.result.runtime_mins());

        let oomy = MemoryConfig {
            task_concurrency: 8,
            cache_fraction: 0.8,
            ..safe
        };
        let mut saw_abort = false;
        for _ in 0..6 {
            let obs = env.evaluate(&oomy);
            if obs.result.aborted {
                saw_abort = true;
                assert!(
                    obs.score_mins >= obs.result.runtime_mins() * 2.0
                        || obs.score_mins >= 2.0 * safe_obs.score_mins,
                    "aborted run must be penalized"
                );
            }
        }
        assert!(
            saw_abort,
            "expected the hostile config to abort at least once"
        );
    }

    #[test]
    fn abort_penalty_does_not_compound_across_consecutive_aborts() {
        let mut env = TuningEnv::new(
            Engine::new(ClusterSpec::cluster_a()),
            relm_workloads::pagerank(),
            3,
        );
        let hostile = MemoryConfig {
            containers_per_node: 2,
            heap: ClusterSpec::cluster_a().heap_for(2),
            task_concurrency: 8,
            cache_fraction: 0.8,
            shuffle_fraction: 0.0,
            new_ratio: 3,
            survivor_ratio: 8,
        };
        for _ in 0..8 {
            env.evaluate(&hostile);
        }
        // Every penalized score must be exactly 2× the worst runtime seen
        // up to that point; feeding penalized scores back into the
        // baseline would instead double it on every consecutive abort.
        let mut worst = 0.0f64;
        let mut aborts = 0;
        for o in env.history() {
            worst = worst.max(o.result.runtime_mins());
            if o.result.aborted {
                aborts += 1;
                assert_eq!(o.score_mins, ABORT_PENALTY_FACTOR * worst);
            }
        }
        assert!(aborts >= 2, "hostile config should abort repeatedly");
    }

    #[test]
    fn seeds_differ_across_evaluations() {
        let mut env = env();
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        let a = env.evaluate(&cfg);
        let b = env.evaluate(&cfg);
        assert_ne!(a.result.runtime, b.result.runtime);
    }

    fn nan_observation(cfg: MemoryConfig, score: f64) -> Observation {
        Observation {
            config: cfg,
            result: RunResult {
                runtime: Millis::secs(60.0),
                aborted: false,
                abort_cause: None,
                container_failures: 0,
                injected_faults: 0,
                oom_failures: 0,
                rss_kills: 0,
                max_heap_util: 0.5,
                avg_cpu_util: 0.5,
                avg_disk_util: 0.1,
                gc_overhead: 0.05,
                cache_hit_ratio: 1.0,
                spill_fraction: 0.0,
                young_gcs: 10,
                full_gcs: 1,
            },
            score_mins: score,
            retries: 0,
        }
    }

    #[test]
    fn best_survives_nan_scores() {
        // Regression: `best()` used to panic on NaN via
        // `partial_cmp().expect()`. NaN must sort last, not crash the
        // session.
        let mut env = env();
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        let good = env.evaluate(&cfg);
        env.history.push(nan_observation(cfg, f64::NAN));
        let best = env.best().expect("history is non-empty");
        assert_eq!(best.score_mins, good.score_mins);
        assert!(!best.score_mins.is_nan());
    }

    #[test]
    fn transient_aborts_are_retried_within_the_bound() {
        use relm_faults::{FaultConfig, FaultPlan};
        // A kill rate this high fails every wave attempt somewhere, so the
        // engine aborts and the env retries until the bound.
        let mut config = FaultConfig::off();
        config.container_kill_rate = 0.5;
        let engine = Engine::new(ClusterSpec::cluster_a()).with_faults(FaultPlan::new(7, config));
        let mut env = TuningEnv::new(engine, wordcount(), 11);
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        let obs = env.evaluate(&cfg);
        assert!(obs.retries <= env.retry_policy().max_retries);
        if obs.is_censored() {
            assert_eq!(
                obs.result.abort_cause.unwrap().class(),
                AbortClass::Transient
            );
            assert_eq!(
                obs.retries,
                env.retry_policy().max_retries,
                "a censored transient abort means the whole retry budget was spent"
            );
        }
        assert!(env.retry_time() > Millis::ZERO);
        assert!(env.stress_time() > obs.result.runtime);
    }

    #[test]
    fn persistent_aborts_are_never_retried() {
        let mut env = TuningEnv::new(
            Engine::new(ClusterSpec::cluster_a()),
            relm_workloads::pagerank(),
            3,
        );
        let hostile = MemoryConfig {
            containers_per_node: 2,
            heap: ClusterSpec::cluster_a().heap_for(2),
            task_concurrency: 8,
            cache_fraction: 0.8,
            shuffle_fraction: 0.0,
            new_ratio: 3,
            survivor_ratio: 8,
        };
        let mut saw_abort = false;
        for _ in 0..6 {
            let obs = env.evaluate(&hostile);
            assert_eq!(obs.retries, 0, "config's own OOMs must not be retried");
            saw_abort |= obs.result.aborted;
        }
        assert!(saw_abort);
        assert_eq!(env.total_retries(), 0);
        assert_eq!(env.retry_time(), Millis::ZERO);
    }

    #[test]
    fn timeout_censors_and_caps_the_charged_runtime() {
        let budget = Millis::secs(5.0);
        let mut env = env().with_retry_policy(RetryPolicy {
            max_retries: 0,
            backoff: Millis::ZERO,
            backoff_factor: 1.0,
            timeout: Some(budget),
        });
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        let obs = env.evaluate(&cfg);
        assert!(obs.is_censored());
        assert_eq!(obs.result.abort_cause, Some(AbortCause::Timeout));
        assert_eq!(obs.result.runtime, budget);
        assert!(obs.score_mins >= obs.result.runtime_mins());
    }
}
