//! The common tuning-policy interface.

use crate::env::TuningEnv;
use relm_common::{MemoryConfig, Millis, Result};
use serde::{Deserialize, Serialize};

/// The outcome of a tuning session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Name of the policy that produced the recommendation.
    pub policy: String,
    /// The recommended configuration.
    pub config: MemoryConfig,
    /// Number of stress tests the policy ran.
    pub evaluations: usize,
    /// Simulated wall-clock time spent on stress tests.
    pub stress_time: Millis,
}

/// A tuning policy: given a fresh [`TuningEnv`], produce a recommendation.
///
/// `Send` is a supertrait: the serving layer moves tuners (and their
/// sessions) across worker threads, so a policy holding a non-`Send`
/// handle (`Rc`, `RefCell` captured by reference, raw pointers) is
/// rejected at compile time rather than at integration time.
pub trait Tuner: Send {
    /// Policy name as reported in the evaluation tables.
    fn name(&self) -> &'static str;

    /// Runs the policy to completion.
    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation>;
}

/// Helper for policies: package the current environment state into a
/// [`Recommendation`].
pub fn recommendation(policy: &str, env: &TuningEnv, config: MemoryConfig) -> Recommendation {
    Recommendation {
        policy: policy.to_owned(),
        config,
        evaluations: env.evaluations(),
        stress_time: env.stress_time(),
    }
}
