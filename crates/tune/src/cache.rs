//! Content-addressed memoization of stress-test evaluations.
//!
//! A stress test in this substrate is a pure function of its inputs:
//! application spec, cluster, cost model, memory configuration, the
//! environment's seed-chain position, the engine's fault plan, and the
//! retry policy. [`CachedEval`] captures everything an evaluation changes
//! about the world — the settled run result, the collected profile, the
//! retry accounting, and the observability counter deltas the live run
//! emitted — so a cache hit can be *replayed* instead of re-simulated,
//! leaving byte-identical histories and reconciling counters behind.
//!
//! What is deliberately **not** cached: the score. `score_mins` depends on
//! the session's worst-observed-runtime baseline (the ×2 abort penalty of
//! §6.1), which is state of the [`TuningEnv`](crate::TuningEnv), not of
//! the evaluation. Replay re-scores the cached outcome against the current
//! baseline, exactly as a live run would have.

use relm_app::RunResult;
use relm_common::Millis;
use relm_evalcache::EvalCache;
use relm_profile::Profile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The memoized outcome of one evaluation (final attempt + retry loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedEval {
    /// Metrics of the attempt that settled.
    pub result: RunResult,
    /// The profile collected alongside it.
    pub profile: Profile,
    /// Extra attempts the retry policy spent.
    pub retries: u32,
    /// Simulated time burned on failed attempts and backoff.
    pub retry_time: Millis,
    /// Name-sorted counter deltas the live evaluation emitted (aborts,
    /// injected faults, stress time, …), replayed on a hit so warm and
    /// cold runs reconcile to the same telemetry.
    pub counters: Vec<(String, f64)>,
}

/// The concrete cache type the tuning environment shares: one handle per
/// process, cloned into every env/worker/session that opts in.
pub type EvalStore = EvalCache<CachedEval>;

/// Nonzero per-counter deltas between two name-sorted counter snapshots
/// (as returned by [`relm_obs::Obs::counters`]), name-sorted.
pub(crate) fn counter_deltas(
    before: &[(String, f64)],
    after: &[(String, f64)],
) -> Vec<(String, f64)> {
    let before: BTreeMap<&str, f64> = before.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    after
        .iter()
        .filter_map(|(name, value)| {
            let delta = value - before.get(name.as_str()).copied().unwrap_or(0.0);
            (delta != 0.0).then(|| (name.clone(), delta))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_keep_only_changed_counters() {
        let before = vec![("a".to_string(), 1.0), ("b".to_string(), 2.0)];
        let after = vec![
            ("a".to_string(), 1.0),
            ("b".to_string(), 5.0),
            ("c".to_string(), 3.0),
        ];
        assert_eq!(
            counter_deltas(&before, &after),
            vec![("b".to_string(), 3.0), ("c".to_string(), 3.0)]
        );
    }

    #[test]
    fn deltas_are_empty_when_nothing_moved() {
        let snap = vec![("x".to_string(), 4.0)];
        assert!(counter_deltas(&snap, &snap).is_empty());
    }
}
