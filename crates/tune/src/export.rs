//! Rendering a [`MemoryConfig`] as the concrete Spark/YARN/JVM settings a
//! deployment would apply — the last mile of the tuning pipeline.
//!
//! The mapping follows the paper's Table 1: the container split and heap go
//! to YARN/executor sizing, Cache/Shuffle Capacity to Spark's unified memory
//! manager (`spark.memory.fraction` × `spark.memory.storageFraction`), Task
//! Concurrency to `spark.executor.cores`, and `NewRatio`/`SurvivorRatio` to
//! the executor's JVM options.

use crate::env::TuningEnv;
use crate::tuner::Recommendation;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_obs::HistogramSummary;
use serde::{Deserialize, Serialize};

/// One `key = value` property.
pub type Property = (String, String);

/// Renders the configuration as Spark properties plus executor JVM options.
pub fn to_spark_properties(config: &MemoryConfig, cluster: &ClusterSpec) -> Vec<Property> {
    let executors = cluster.total_containers(config.containers_per_node);
    let overhead = cluster.container(config.containers_per_node).phys_cap - config.heap;
    let unified = config.unified_fraction();
    let storage_fraction = if unified > 0.0 {
        config.cache_fraction / unified
    } else {
        0.5
    };

    vec![
        ("spark.executor.instances".into(), executors.to_string()),
        (
            "spark.executor.memory".into(),
            format!("{}m", config.heap.as_mb().round() as u64),
        ),
        (
            "spark.yarn.executor.memoryOverhead".into(),
            format!("{}m", overhead.as_mb().round() as u64),
        ),
        (
            "spark.executor.cores".into(),
            config.task_concurrency.to_string(),
        ),
        ("spark.memory.fraction".into(), format!("{unified:.2}")),
        (
            "spark.memory.storageFraction".into(),
            format!("{storage_fraction:.2}"),
        ),
        (
            "spark.executor.extraJavaOptions".into(),
            format!(
                "-XX:+UseParallelGC -XX:NewRatio={} -XX:SurvivorRatio={}",
                config.new_ratio, config.survivor_ratio
            ),
        ),
    ]
}

/// Renders the properties as a `spark-defaults.conf` fragment.
pub fn to_spark_defaults_conf(config: &MemoryConfig, cluster: &ClusterSpec) -> String {
    to_spark_properties(config, cluster)
        .into_iter()
        .map(|(k, v)| format!("{k} {v}\n"))
        .collect()
}

/// Cost accounting of one tuning session, embedded in every
/// [`SessionExport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Stress tests the session ran.
    pub evaluations: usize,
    /// How many of those aborted (and were penalty-scored).
    pub aborts: usize,
    /// Total simulated stress-test wall-clock, in milliseconds.
    pub stress_time_ms: f64,
    /// Decision-latency histograms (`*.fit_ms`, `*.acq_ms`,
    /// `*.decide_ms`, …) captured from the environment's observability
    /// handle. Empty when observability was disabled.
    pub decision_latency: Vec<HistogramSummary>,
}

impl SessionMetrics {
    /// Gathers the metrics from a finished environment. Evaluations,
    /// aborts, and stress time come from the evaluation history (always
    /// available); decision latencies come from the [`relm_obs::Obs`]
    /// handle when one was attached.
    pub fn from_env(env: &TuningEnv) -> Self {
        let aborts = env.history().iter().filter(|o| o.result.aborted).count();
        let decision_latency = env
            .obs()
            .snapshot()
            .histograms
            .into_iter()
            .filter(|h| {
                !h.name.starts_with("engine.")
                    && !h.name.starts_with("env.")
                    && h.name.ends_with("_ms")
            })
            .collect();
        SessionMetrics {
            evaluations: env.evaluations(),
            aborts,
            stress_time_ms: env.stress_time().as_ms(),
            decision_latency,
        }
    }
}

/// A complete tuning-session export: the recommendation, its rendered
/// Spark properties, and the session's cost metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionExport {
    pub recommendation: Recommendation,
    pub properties: Vec<Property>,
    pub metrics: SessionMetrics,
}

/// Packages a finished session for serialization.
pub fn session_export(env: &TuningEnv, rec: &Recommendation) -> SessionExport {
    SessionExport {
        recommendation: rec.clone(),
        properties: to_spark_properties(&rec.config, env.engine().cluster()),
        metrics: SessionMetrics::from_env(env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Mem;

    fn config() -> MemoryConfig {
        MemoryConfig {
            containers_per_node: 2,
            heap: Mem::mb(2202.0),
            task_concurrency: 3,
            cache_fraction: 0.4,
            shuffle_fraction: 0.1,
            new_ratio: 5,
            survivor_ratio: 8,
        }
    }

    #[test]
    fn renders_table_1_knobs() {
        let props = to_spark_properties(&config(), &ClusterSpec::cluster_a());
        let get = |k: &str| {
            props
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing property {k}"))
        };
        assert_eq!(get("spark.executor.instances"), "16"); // 8 nodes x 2
        assert_eq!(get("spark.executor.memory"), "2202m");
        assert_eq!(get("spark.executor.cores"), "3");
        assert_eq!(get("spark.memory.fraction"), "0.50");
        assert_eq!(get("spark.memory.storageFraction"), "0.80"); // 0.4 of 0.5
        assert!(get("spark.executor.extraJavaOptions").contains("-XX:NewRatio=5"));
        assert!(get("spark.executor.extraJavaOptions").contains("-XX:SurvivorRatio=8"));
    }

    #[test]
    fn overhead_covers_off_heap_headroom() {
        let props = to_spark_properties(&config(), &ClusterSpec::cluster_a());
        let overhead = props
            .iter()
            .find(|(k, _)| k == "spark.yarn.executor.memoryOverhead")
            .map(|(_, v)| v.trim_end_matches('m').parse::<u64>().unwrap())
            .unwrap();
        assert!(overhead >= 384, "YARN minimum overhead");
    }

    #[test]
    fn conf_fragment_is_line_per_property() {
        let conf = to_spark_defaults_conf(&config(), &ClusterSpec::cluster_a());
        assert_eq!(conf.lines().count(), 7);
        assert!(conf.contains("spark.executor.memory 2202m"));
    }

    #[test]
    fn session_export_embeds_metrics_snapshot() {
        use crate::policies::RandomSearch;
        use crate::tuner::Tuner;
        let engine =
            relm_app::Engine::new(ClusterSpec::cluster_a()).with_obs(relm_obs::Obs::enabled());
        let mut env = crate::env::TuningEnv::new(engine, relm_workloads::wordcount(), 9);
        let rec = RandomSearch::new(4, 2).tune(&mut env).unwrap();
        let export = session_export(&env, &rec);
        assert_eq!(export.metrics.evaluations, 4);
        assert_eq!(export.metrics.stress_time_ms, env.stress_time().as_ms());
        assert!(
            export
                .metrics
                .decision_latency
                .iter()
                .any(|h| h.name == "random.decide_ms"),
            "decision latency histograms missing: {:?}",
            export.metrics.decision_latency
        );
        assert!(!export.properties.is_empty());
        let text = serde_json::to_string(&export).unwrap();
        let back: SessionExport = serde_json::from_str(&text).unwrap();
        assert_eq!(export, back);
    }

    #[test]
    fn session_export_works_without_observability() {
        use crate::policies::RandomSearch;
        use crate::tuner::Tuner;
        let engine = relm_app::Engine::new(ClusterSpec::cluster_a());
        let mut env = crate::env::TuningEnv::new(engine, relm_workloads::wordcount(), 9);
        let rec = RandomSearch::new(3, 2).tune(&mut env).unwrap();
        let export = session_export(&env, &rec);
        assert_eq!(export.metrics.evaluations, 3);
        assert!(export.metrics.decision_latency.is_empty());
    }

    #[test]
    fn zero_unified_pool_defaults_storage_fraction() {
        let mut cfg = config();
        cfg.cache_fraction = 0.0;
        cfg.shuffle_fraction = 0.0;
        let props = to_spark_properties(&cfg, &ClusterSpec::cluster_a());
        let sf = props
            .iter()
            .find(|(k, _)| k == "spark.memory.storageFraction")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(sf, "0.50");
    }
}
