//! Rendering a [`MemoryConfig`] as the concrete Spark/YARN/JVM settings a
//! deployment would apply — the last mile of the tuning pipeline.
//!
//! The mapping follows the paper's Table 1: the container split and heap go
//! to YARN/executor sizing, Cache/Shuffle Capacity to Spark's unified memory
//! manager (`spark.memory.fraction` × `spark.memory.storageFraction`), Task
//! Concurrency to `spark.executor.cores`, and `NewRatio`/`SurvivorRatio` to
//! the executor's JVM options.

use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;

/// One `key = value` property.
pub type Property = (String, String);

/// Renders the configuration as Spark properties plus executor JVM options.
pub fn to_spark_properties(config: &MemoryConfig, cluster: &ClusterSpec) -> Vec<Property> {
    let executors = cluster.total_containers(config.containers_per_node);
    let overhead = cluster.container(config.containers_per_node).phys_cap - config.heap;
    let unified = config.unified_fraction();
    let storage_fraction = if unified > 0.0 { config.cache_fraction / unified } else { 0.5 };

    vec![
        ("spark.executor.instances".into(), executors.to_string()),
        (
            "spark.executor.memory".into(),
            format!("{}m", config.heap.as_mb().round() as u64),
        ),
        (
            "spark.yarn.executor.memoryOverhead".into(),
            format!("{}m", overhead.as_mb().round() as u64),
        ),
        ("spark.executor.cores".into(), config.task_concurrency.to_string()),
        ("spark.memory.fraction".into(), format!("{unified:.2}")),
        ("spark.memory.storageFraction".into(), format!("{storage_fraction:.2}")),
        (
            "spark.executor.extraJavaOptions".into(),
            format!(
                "-XX:+UseParallelGC -XX:NewRatio={} -XX:SurvivorRatio={}",
                config.new_ratio, config.survivor_ratio
            ),
        ),
    ]
}

/// Renders the properties as a `spark-defaults.conf` fragment.
pub fn to_spark_defaults_conf(config: &MemoryConfig, cluster: &ClusterSpec) -> String {
    to_spark_properties(config, cluster)
        .into_iter()
        .map(|(k, v)| format!("{k} {v}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Mem;

    fn config() -> MemoryConfig {
        MemoryConfig {
            containers_per_node: 2,
            heap: Mem::mb(2202.0),
            task_concurrency: 3,
            cache_fraction: 0.4,
            shuffle_fraction: 0.1,
            new_ratio: 5,
            survivor_ratio: 8,
        }
    }

    #[test]
    fn renders_table_1_knobs() {
        let props = to_spark_properties(&config(), &ClusterSpec::cluster_a());
        let get = |k: &str| {
            props
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing property {k}"))
        };
        assert_eq!(get("spark.executor.instances"), "16"); // 8 nodes x 2
        assert_eq!(get("spark.executor.memory"), "2202m");
        assert_eq!(get("spark.executor.cores"), "3");
        assert_eq!(get("spark.memory.fraction"), "0.50");
        assert_eq!(get("spark.memory.storageFraction"), "0.80"); // 0.4 of 0.5
        assert!(get("spark.executor.extraJavaOptions").contains("-XX:NewRatio=5"));
        assert!(get("spark.executor.extraJavaOptions").contains("-XX:SurvivorRatio=8"));
    }

    #[test]
    fn overhead_covers_off_heap_headroom() {
        let props = to_spark_properties(&config(), &ClusterSpec::cluster_a());
        let overhead = props
            .iter()
            .find(|(k, _)| k == "spark.yarn.executor.memoryOverhead")
            .map(|(_, v)| v.trim_end_matches('m').parse::<u64>().unwrap())
            .unwrap();
        assert!(overhead >= 384, "YARN minimum overhead");
    }

    #[test]
    fn conf_fragment_is_line_per_property() {
        let conf = to_spark_defaults_conf(&config(), &ClusterSpec::cluster_a());
        assert_eq!(conf.lines().count(), 7);
        assert!(conf.contains("spark.executor.memory 2202m"));
    }

    #[test]
    fn zero_unified_pool_defaults_storage_fraction() {
        let mut cfg = config();
        cfg.cache_fraction = 0.0;
        cfg.shuffle_fraction = 0.0;
        let props = to_spark_properties(&cfg, &ClusterSpec::cluster_a());
        let sf = props
            .iter()
            .find(|(k, _)| k == "spark.memory.storageFraction")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(sf, "0.50");
    }
}
