//! Rendering a [`MemoryConfig`] as the concrete Spark/YARN/JVM settings a
//! deployment would apply — the last mile of the tuning pipeline.
//!
//! The mapping follows the paper's Table 1: the container split and heap go
//! to YARN/executor sizing, Cache/Shuffle Capacity to Spark's unified memory
//! manager (`spark.memory.fraction` × `spark.memory.storageFraction`), Task
//! Concurrency to `spark.executor.cores`, and `NewRatio`/`SurvivorRatio` to
//! the executor's JVM options.

use crate::env::{Observation, TuningEnv};
use crate::tuner::Recommendation;
use relm_app::{AppSpec, Engine};
use relm_cluster::ClusterSpec;
use relm_common::{MemoryConfig, Millis};
use relm_faults::AbortCause;
use relm_obs::HistogramSummary;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One `key = value` property.
pub type Property = (String, String);

/// Renders the configuration as Spark properties plus executor JVM options.
pub fn to_spark_properties(config: &MemoryConfig, cluster: &ClusterSpec) -> Vec<Property> {
    let executors = cluster.total_containers(config.containers_per_node);
    let overhead = cluster.container(config.containers_per_node).phys_cap - config.heap;
    let unified = config.unified_fraction();
    let storage_fraction = if unified > 0.0 {
        config.cache_fraction / unified
    } else {
        0.5
    };

    vec![
        ("spark.executor.instances".into(), executors.to_string()),
        (
            "spark.executor.memory".into(),
            format!("{}m", config.heap.as_mb().round() as u64),
        ),
        (
            "spark.yarn.executor.memoryOverhead".into(),
            format!("{}m", overhead.as_mb().round() as u64),
        ),
        (
            "spark.executor.cores".into(),
            config.task_concurrency.to_string(),
        ),
        ("spark.memory.fraction".into(), format!("{unified:.2}")),
        (
            "spark.memory.storageFraction".into(),
            format!("{storage_fraction:.2}"),
        ),
        (
            "spark.executor.extraJavaOptions".into(),
            format!(
                "-XX:+UseParallelGC -XX:NewRatio={} -XX:SurvivorRatio={}",
                config.new_ratio, config.survivor_ratio
            ),
        ),
    ]
}

/// Renders the properties as a `spark-defaults.conf` fragment.
pub fn to_spark_defaults_conf(config: &MemoryConfig, cluster: &ClusterSpec) -> String {
    to_spark_properties(config, cluster)
        .into_iter()
        .map(|(k, v)| format!("{k} {v}\n"))
        .collect()
}

/// Cost accounting of one tuning session, embedded in every
/// [`SessionExport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Stress tests the session ran.
    pub evaluations: usize,
    /// How many of those settled aborted (censored, penalty-scored).
    pub aborts: usize,
    /// Per-cause breakdown of the censored observations, `(cause label,
    /// count)`; causes that never fired are omitted. Sums to `aborts`.
    pub abort_causes: Vec<(String, u32)>,
    /// Retries the environment's policy spent across all evaluations.
    pub retries: u32,
    /// Simulated time burned on failed attempts and retry backoff, in
    /// milliseconds (included in `stress_time_ms`).
    pub retry_time_ms: f64,
    /// Total simulated stress-test wall-clock, in milliseconds.
    pub stress_time_ms: f64,
    /// Decision-latency histograms (`*.fit_ms`, `*.acq_ms`,
    /// `*.decide_ms`, …) captured from the environment's observability
    /// handle. Empty when observability was disabled.
    pub decision_latency: Vec<HistogramSummary>,
}

impl SessionMetrics {
    /// Gathers the metrics from a finished environment. Evaluations,
    /// aborts, and stress time come from the evaluation history (always
    /// available); decision latencies come from the [`relm_obs::Obs`]
    /// handle when one was attached.
    pub fn from_env(env: &TuningEnv) -> Self {
        let aborts = env.history().iter().filter(|o| o.result.aborted).count();
        let abort_causes: Vec<(String, u32)> = AbortCause::ALL
            .iter()
            .filter_map(|cause| {
                let n = env
                    .history()
                    .iter()
                    .filter(|o| o.result.aborted && o.result.abort_cause == Some(*cause))
                    .count() as u32;
                (n > 0).then(|| (cause.as_str().to_string(), n))
            })
            .collect();
        let decision_latency = env
            .obs()
            .snapshot()
            .histograms
            .into_iter()
            .filter(|h| {
                !h.name.starts_with("engine.")
                    && !h.name.starts_with("env.")
                    && h.name.ends_with("_ms")
            })
            .collect();
        SessionMetrics {
            evaluations: env.evaluations(),
            aborts,
            abort_causes,
            retries: env.total_retries(),
            retry_time_ms: env.retry_time().as_ms(),
            stress_time_ms: env.stress_time().as_ms(),
            decision_latency,
        }
    }
}

/// A complete tuning-session export: the recommendation, its rendered
/// Spark properties, and the session's cost metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionExport {
    pub recommendation: Recommendation,
    pub properties: Vec<Property>,
    pub metrics: SessionMetrics,
}

/// Packages a finished session for serialization.
pub fn session_export(env: &TuningEnv, rec: &Recommendation) -> SessionExport {
    SessionExport {
        recommendation: rec.clone(),
        properties: to_spark_properties(&rec.config, env.engine().cluster()),
        metrics: SessionMetrics::from_env(env),
    }
}

/// Crash-safe snapshot of a tuning session in progress.
///
/// A session that dies mid-way (node reboot, operator Ctrl-C, the tuning
/// driver itself being preempted) should not forfeit the stress tests it
/// already paid for. The checkpoint captures everything the environment
/// needs to continue *exactly* where it stopped: the application spec, the
/// evaluation history, the seed chain position, and the abort-penalty
/// baseline. Because the engine's fault injection is site-addressed (not
/// stateful), a resumed session replays into the same injected faults the
/// uninterrupted one would have seen — resumed and uninterrupted histories
/// are byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The application under tuning.
    pub app: AppSpec,
    /// The seed the next evaluation will run under.
    pub next_seed: u64,
    /// The abort-penalty baseline (worst observed runtime, minutes).
    pub worst_mins: f64,
    /// Time burned on failed attempts and backoff so far, milliseconds.
    pub retry_time_ms: f64,
    /// Every observation recorded so far, in order.
    pub history: Vec<Observation>,
}

/// The checkpoint format version written by this build.
pub const CHECKPOINT_VERSION: u32 = 1;

impl SessionCheckpoint {
    /// Captures the resumable state of a session in progress.
    pub fn capture(env: &TuningEnv) -> Self {
        SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            app: env.app().clone(),
            next_seed: env.next_seed(),
            worst_mins: env.worst_mins(),
            retry_time_ms: env.retry_time().as_ms(),
            history: env.history().to_vec(),
        }
    }

    /// Rebuilds a live environment on `engine` that continues where the
    /// captured session stopped. The engine should carry the same cluster,
    /// cost model, and fault plan as the original; the retry policy is
    /// reset to the default and can be overridden afterwards.
    pub fn resume(self, engine: Engine) -> TuningEnv {
        TuningEnv::restore(
            engine,
            self.app,
            self.next_seed,
            self.worst_mins,
            Millis::ms(self.retry_time_ms),
            self.history,
        )
    }

    /// Atomically writes the checkpoint to `path`: the JSON goes to a
    /// sibling temporary file first and is renamed into place, so a crash
    /// mid-write leaves either the previous checkpoint or none — never a
    /// torn file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_tagged(path, "ckpt")
    }

    /// [`SessionCheckpoint::save`] with a caller-supplied tag woven into
    /// the temporary file's name.
    ///
    /// Writers sharing a results directory — or even the *same* target
    /// path — must not share a temporary file, or one writer's rename can
    /// promote another writer's half-written JSON. The temporary name
    /// therefore embeds the sanitized tag (e.g. a session id), the process
    /// id, and a process-wide sequence number, making it unique across
    /// concurrent writers in and across processes.
    pub fn save_tagged(&self, path: &Path, tag: &str) -> io::Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tag: String = tag
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".{}.{}.{}.tmp",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, json)?;
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        renamed
    }

    /// Loads a checkpoint written by [`SessionCheckpoint::save`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let ckpt: SessionCheckpoint = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint version {} not supported (expected {})",
                    ckpt.version, CHECKPOINT_VERSION
                ),
            ));
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Mem;

    fn config() -> MemoryConfig {
        MemoryConfig {
            containers_per_node: 2,
            heap: Mem::mb(2202.0),
            task_concurrency: 3,
            cache_fraction: 0.4,
            shuffle_fraction: 0.1,
            new_ratio: 5,
            survivor_ratio: 8,
        }
    }

    #[test]
    fn renders_table_1_knobs() {
        let props = to_spark_properties(&config(), &ClusterSpec::cluster_a());
        let get = |k: &str| {
            props
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing property {k}"))
        };
        assert_eq!(get("spark.executor.instances"), "16"); // 8 nodes x 2
        assert_eq!(get("spark.executor.memory"), "2202m");
        assert_eq!(get("spark.executor.cores"), "3");
        assert_eq!(get("spark.memory.fraction"), "0.50");
        assert_eq!(get("spark.memory.storageFraction"), "0.80"); // 0.4 of 0.5
        assert!(get("spark.executor.extraJavaOptions").contains("-XX:NewRatio=5"));
        assert!(get("spark.executor.extraJavaOptions").contains("-XX:SurvivorRatio=8"));
    }

    #[test]
    fn overhead_covers_off_heap_headroom() {
        let props = to_spark_properties(&config(), &ClusterSpec::cluster_a());
        let overhead = props
            .iter()
            .find(|(k, _)| k == "spark.yarn.executor.memoryOverhead")
            .map(|(_, v)| v.trim_end_matches('m').parse::<u64>().unwrap())
            .unwrap();
        assert!(overhead >= 384, "YARN minimum overhead");
    }

    #[test]
    fn conf_fragment_is_line_per_property() {
        let conf = to_spark_defaults_conf(&config(), &ClusterSpec::cluster_a());
        assert_eq!(conf.lines().count(), 7);
        assert!(conf.contains("spark.executor.memory 2202m"));
    }

    #[test]
    fn session_export_embeds_metrics_snapshot() {
        use crate::policies::RandomSearch;
        use crate::tuner::Tuner;
        let engine =
            relm_app::Engine::new(ClusterSpec::cluster_a()).with_obs(relm_obs::Obs::enabled());
        let mut env = crate::env::TuningEnv::new(engine, relm_workloads::wordcount(), 9);
        let rec = RandomSearch::new(4, 2).tune(&mut env).unwrap();
        let export = session_export(&env, &rec);
        assert_eq!(export.metrics.evaluations, 4);
        assert_eq!(export.metrics.stress_time_ms, env.stress_time().as_ms());
        assert!(
            export
                .metrics
                .decision_latency
                .iter()
                .any(|h| h.name == "random.decide_ms"),
            "decision latency histograms missing: {:?}",
            export.metrics.decision_latency
        );
        assert!(!export.properties.is_empty());
        let text = serde_json::to_string(&export).unwrap();
        let back: SessionExport = serde_json::from_str(&text).unwrap();
        assert_eq!(export, back);
    }

    #[test]
    fn session_export_works_without_observability() {
        use crate::policies::RandomSearch;
        use crate::tuner::Tuner;
        let engine = relm_app::Engine::new(ClusterSpec::cluster_a());
        let mut env = crate::env::TuningEnv::new(engine, relm_workloads::wordcount(), 9);
        let rec = RandomSearch::new(3, 2).tune(&mut env).unwrap();
        let export = session_export(&env, &rec);
        assert_eq!(export.metrics.evaluations, 3);
        assert!(export.metrics.decision_latency.is_empty());
    }

    #[test]
    fn checkpoint_resume_replays_identically() {
        use crate::env::TuningEnv;
        use relm_faults::{FaultConfig, FaultPlan};
        use relm_workloads::{max_resource_allocation, wordcount};

        let make_engine = || {
            relm_app::Engine::new(ClusterSpec::cluster_a())
                .with_faults(FaultPlan::new(3, FaultConfig::uniform(0.10)))
        };
        let base = max_resource_allocation(&ClusterSpec::cluster_a(), &wordcount());
        let configs: Vec<MemoryConfig> = (1..=6)
            .map(|p| MemoryConfig {
                task_concurrency: p,
                ..base
            })
            .collect();

        // The uninterrupted session.
        let mut full = TuningEnv::new(make_engine(), wordcount(), 42);
        for c in &configs {
            full.evaluate(c);
        }

        // The same session, killed after 3 evaluations and resumed from a
        // checkpoint on a fresh engine.
        let mut half = TuningEnv::new(make_engine(), wordcount(), 42);
        for c in &configs[..3] {
            half.evaluate(c);
        }
        let ckpt = SessionCheckpoint::capture(&half);
        let mut resumed = ckpt.resume(make_engine());
        for c in &configs[3..] {
            resumed.evaluate(c);
        }

        // Byte-identical histories — including any injected faults,
        // retries, and censored scores.
        let a = serde_json::to_string(&full.history().to_vec()).unwrap();
        let b = serde_json::to_string(&resumed.history().to_vec()).unwrap();
        assert_eq!(a, b);
        assert_eq!(full.stress_time(), resumed.stress_time());
    }

    #[test]
    fn checkpoint_save_load_round_trips_atomically() {
        use crate::env::TuningEnv;
        use relm_workloads::{max_resource_allocation, wordcount};

        let mut env = TuningEnv::new(
            relm_app::Engine::new(ClusterSpec::cluster_a()),
            wordcount(),
            7,
        );
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        env.evaluate(&cfg);
        let ckpt = SessionCheckpoint::capture(&env);

        let path = std::env::temp_dir().join(format!("relm_ckpt_test_{}.json", std::process::id()));
        ckpt.save(&path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::PathBuf::from(tmp).exists(),
            "temporary file must be renamed away"
        );
        let back = SessionCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_saves_to_one_path_never_tear() {
        use crate::env::TuningEnv;
        use relm_workloads::{max_resource_allocation, wordcount};
        use std::sync::Arc;

        // Two sessions sharing one results path (the historical collision:
        // both used `<path>.tmp`). Hammer saves from both threads; every
        // load in between — and the final one — must parse as a complete
        // checkpoint, never a torn or mixed file.
        let make = |seed: u64, evals: usize| {
            let mut env = TuningEnv::new(
                relm_app::Engine::new(ClusterSpec::cluster_a()),
                wordcount(),
                seed,
            );
            let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
            for _ in 0..evals {
                env.evaluate(&cfg);
            }
            SessionCheckpoint::capture(&env)
        };
        let a = Arc::new(make(1, 1));
        let b = Arc::new(make(2, 3));
        let path = Arc::new(
            std::env::temp_dir().join(format!("relm_ckpt_race_{}.json", std::process::id())),
        );
        let _ = std::fs::remove_file(path.as_path());

        let threads: Vec<_> = [(a.clone(), "s-0001"), (b.clone(), "s-0002")]
            .into_iter()
            .map(|(ckpt, tag)| {
                let path = Arc::clone(&path);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        ckpt.save_tagged(&path, tag).unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            if path.exists() {
                let loaded = SessionCheckpoint::load(&path).expect("never torn");
                assert!(loaded == *a || loaded == *b, "mixed checkpoint contents");
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        let final_ckpt = SessionCheckpoint::load(&path).unwrap();
        assert!(final_ckpt == *a || final_ckpt == *b);
        // No temporary files left behind.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with(&stem) && n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leaked tmp files: {leftovers:?}");
        std::fs::remove_file(path.as_path()).ok();
    }

    #[test]
    fn checkpoint_rejects_unknown_versions() {
        use crate::env::TuningEnv;
        use relm_workloads::wordcount;
        let env = TuningEnv::new(
            relm_app::Engine::new(ClusterSpec::cluster_a()),
            wordcount(),
            7,
        );
        let mut ckpt = SessionCheckpoint::capture(&env);
        ckpt.version = 999;
        let path =
            std::env::temp_dir().join(format!("relm_ckpt_ver_test_{}.json", std::process::id()));
        ckpt.save(&path).unwrap();
        assert!(SessionCheckpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_unified_pool_defaults_storage_fraction() {
        let mut cfg = config();
        cfg.cache_fraction = 0.0;
        cfg.shuffle_fraction = 0.0;
        let props = to_spark_properties(&cfg, &ClusterSpec::cluster_a());
        let sf = props
            .iter()
            .find(|(k, _)| k == "spark.memory.storageFraction")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(sf, "0.50");
    }
}
