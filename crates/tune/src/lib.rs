//! # relm-tune
//!
//! The tuning framework shared by every policy in the paper's evaluation:
//!
//! * [`ConfigSpace`] — the 4-dimensional tuned space of §6.1 (containers per
//!   node, task concurrency, dominant-pool capacity, `NewRatio`), with a
//!   continuous `[0, 1]⁴` encoding for the black-box tuners and the 192-point
//!   grid of the Exhaustive Search baseline.
//! * [`TuningEnv`] — wraps the engine, application, and space; runs stress
//!   tests, applies the failure-penalized objective (aborted runs score 2×
//!   the worst observed runtime), and records history/overheads.
//! * [`Tuner`] — the common interface; this crate ships the
//!   [`DefaultPolicy`] (`MaxResourceAllocation`), [`ExhaustiveSearch`], and
//!   [`RandomSearch`] baselines. RelM, BO/GBO, and DDPG live in their own
//!   crates.

pub mod cache;
pub mod env;
pub mod export;
pub mod policies;
pub mod rrs;
pub mod space;
pub mod tuner;

pub use cache::{CachedEval, EvalStore};
pub use env::{Observation, RetryPolicy, TuningEnv, ABORT_PENALTY_FACTOR};
pub use export::{
    session_export, to_spark_defaults_conf, to_spark_properties, SessionCheckpoint, SessionExport,
    SessionMetrics, CHECKPOINT_VERSION,
};
pub use policies::{DefaultPolicy, ExhaustiveSearch, RandomSearch};
pub use relm_evalcache::EvalKey;
pub use rrs::RecursiveRandomSearch;
pub use space::{ConfigSpace, DominantPool};
pub use tuner::{recommendation, Recommendation, Tuner};
