//! Recursive Random Search (Ye & Kalyanaraman, SIGMETRICS 2003) — the
//! search strategy Elastisizer uses, cited by §5 as the typical
//! random-sampling + local-search black-box alternative: sample the space
//! uniformly, then recursively re-sample shrinking boxes around the
//! incumbent, restarting when a box collapses.

use crate::env::TuningEnv;
use crate::tuner::{recommendation, Recommendation, Tuner};
use relm_common::{Result, Rng};

/// Recursive Random Search over the 4-dimensional unit hypercube.
#[derive(Debug)]
pub struct RecursiveRandomSearch {
    budget: usize,
    samples_per_round: usize,
    shrink: f64,
    min_width: f64,
    rng: Rng,
}

impl RecursiveRandomSearch {
    /// Creates an RRS policy with a total stress-test budget.
    pub fn new(budget: usize, seed: u64) -> Self {
        RecursiveRandomSearch {
            budget,
            samples_per_round: 4,
            shrink: 0.55,
            min_width: 0.08,
            rng: Rng::new(seed ^ 0x510E_527F),
        }
    }
}

impl Tuner for RecursiveRandomSearch {
    fn name(&self) -> &'static str {
        "RRS"
    }

    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation> {
        let telemetry = env.obs().clone();
        let _session = telemetry.span("tuner.tune").with("policy", self.name());
        let dims = 4;
        let mut remaining = self.budget;
        let mut center = vec![0.5; dims];
        let mut width = 1.0f64;
        let mut best_score = f64::INFINITY;
        let mut best_x = center.clone();

        while remaining > 0 {
            let mut round_best: Option<(f64, Vec<f64>)> = None;
            for _ in 0..self.samples_per_round.min(remaining) {
                let t0 = std::time::Instant::now();
                let (x, config) = {
                    let _decide = telemetry.span("rrs.decide").with("width", width);
                    let x: Vec<f64> = (0..dims)
                        .map(|d| {
                            let lo = (center[d] - width / 2.0).max(0.0);
                            let hi = (center[d] + width / 2.0).min(1.0);
                            self.rng.uniform_in(lo, hi)
                        })
                        .collect();
                    let config = env.space().decode(&x);
                    (x, config)
                };
                telemetry.record("rrs.decide_ms", t0.elapsed().as_secs_f64() * 1e3);
                let obs = env.evaluate(&config);
                remaining -= 1;
                if round_best.as_ref().is_none_or(|(s, _)| obs.score_mins < *s) {
                    round_best = Some((obs.score_mins, x));
                }
                if remaining == 0 {
                    break;
                }
            }
            let Some((score, x)) = round_best else { break };
            if score < best_score {
                // Promising region: recurse into a shrunken box around it.
                best_score = score;
                best_x = x.clone();
                center = x;
                width *= self.shrink;
            } else {
                // No improvement: shrink anyway; restart when exhausted.
                width *= self.shrink;
            }
            if width < self.min_width {
                center = best_x.clone();
                width = 0.5; // restart around the incumbent with a wide box
            }
        }

        let best = env
            .best()
            .ok_or_else(|| relm_common::Error::Tuning("zero budget".into()))?
            .config;
        Ok(recommendation(self.name(), env, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_app::Engine;
    use relm_cluster::ClusterSpec;
    use relm_workloads::wordcount;

    #[test]
    fn rrs_respects_budget_and_recurses() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let mut env = TuningEnv::new(engine, wordcount(), 3);
        let rec = RecursiveRandomSearch::new(12, 3).tune(&mut env).unwrap();
        assert_eq!(rec.evaluations, 12);
        assert_eq!(rec.policy, "RRS");
        // The recommendation is the best observation.
        let best = env.best().unwrap();
        assert_eq!(rec.config, best.config);
    }

    #[test]
    fn rrs_is_reproducible() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let run = |seed| {
            let mut env = TuningEnv::new(engine.clone(), wordcount(), seed);
            RecursiveRandomSearch::new(8, seed)
                .tune(&mut env)
                .unwrap()
                .config
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn rrs_improves_over_first_sample_on_average() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let mut improved = 0;
        for seed in 0..4u64 {
            let mut env = TuningEnv::new(engine.clone(), wordcount(), seed);
            RecursiveRandomSearch::new(10, seed).tune(&mut env).unwrap();
            let first = env.history().first().unwrap().score_mins;
            let best = env.best().unwrap().score_mins;
            if best < first {
                improved += 1;
            }
        }
        assert!(
            improved >= 3,
            "RRS should usually improve on its first draw"
        );
    }
}
