//! Property tests: censored (aborted) observations and session metrics
//! must survive the JSONL pivot byte-for-byte — the sweep binaries, the
//! crash-safe checkpoint, and the replay smoke test all depend on it.

use proptest::prelude::*;
use relm_app::{Engine, RunResult};
use relm_cluster::ClusterSpec;
use relm_common::{Mem, MemoryConfig, Millis};
use relm_faults::{AbortCause, FaultConfig, FaultPlan};
use relm_tune::{Observation, RandomSearch, SessionMetrics, Tuner, TuningEnv};
use relm_workloads::wordcount;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn censored_observations_round_trip_through_jsonl(
        cause_idx in 0usize..AbortCause::ALL.len(),
        retries in 0u32..=4,
        runtime_ms in 1e3..1e7f64,
        score in 0.1..500.0f64,
        n in 1u32..=4,
        p in 1u32..=8,
        nr in 1u32..=9,
        cap in 0.05..0.8f64,
        injected in 0u32..6,
        batch in 1usize..=5,
    ) {
        let cause = AbortCause::ALL[cause_idx];
        // A batch of observations: index 0 is the censored one under test,
        // the rest are clean runs riding along in the same JSONL stream.
        let observations: Vec<Observation> = (0..batch)
            .map(|i| {
                let aborted = i == 0;
                let config = MemoryConfig {
                    containers_per_node: n,
                    heap: Mem::mb(17_616.0 / n as f64),
                    task_concurrency: p,
                    cache_fraction: 0.1,
                    shuffle_fraction: cap,
                    new_ratio: nr,
                    survivor_ratio: 8,
                };
                assert!(config.check().is_ok(), "generated config invalid: {config}");
                let result = RunResult {
                    runtime: Millis::ms(runtime_ms * (i as f64 + 1.0)),
                    aborted,
                    abort_cause: aborted.then_some(cause),
                    container_failures: injected,
                    injected_faults: injected,
                    oom_failures: 0,
                    rss_kills: 0,
                    max_heap_util: 0.9,
                    avg_cpu_util: 0.55,
                    avg_disk_util: 0.2,
                    gc_overhead: 0.08,
                    cache_hit_ratio: 0.0,
                    spill_fraction: 0.3,
                    young_gcs: 40 + i as u64,
                    full_gcs: 2,
                };
                Observation {
                    config,
                    result,
                    score_mins: score * (i as f64 + 1.0),
                    retries: if aborted { retries } else { 0 },
                }
            })
            .collect();
        prop_assert!(observations[0].is_censored());

        let jsonl: String = observations
            .iter()
            .map(|o| serde_json::to_string(o).expect("observation serializes") + "\n")
            .collect();
        let back: Vec<Observation> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).expect("observation parses"))
            .collect();

        prop_assert_eq!(&back, &observations);
        prop_assert_eq!(back[0].result.abort_cause, Some(cause));
        prop_assert_eq!(back[0].retries, observations[0].retries);
        prop_assert!(back[0].is_censored());
        prop_assert!(back[1..].iter().all(|o| !o.is_censored()));
        // A second pivot is byte-identical — the replay smoke test's
        // `diff` depends on serialization being deterministic.
        let again: String = back
            .iter()
            .map(|o| serde_json::to_string(o).unwrap() + "\n")
            .collect();
        prop_assert_eq!(again, jsonl);
    }

    #[test]
    fn session_metrics_round_trip_with_abort_causes(
        plan_seed in 0u64..1_000,
        env_seed in 0u64..1_000,
        evals in 3usize..=6,
    ) {
        // A real faulty session, aggressive enough to censor observations.
        let engine = Engine::new(ClusterSpec::cluster_a())
            .with_faults(FaultPlan::new(plan_seed, FaultConfig::uniform(0.30)));
        let mut env = TuningEnv::new(engine, wordcount(), env_seed);
        let mut tuner = RandomSearch::new(evals, env_seed);
        tuner.tune(&mut env).expect("random search succeeds");

        let metrics = SessionMetrics::from_env(&env);
        let text = serde_json::to_string(&metrics).expect("metrics serialize");
        let back: SessionMetrics = serde_json::from_str(&text).expect("metrics parse");
        prop_assert_eq!(&back, &metrics);

        // The per-cause breakdown must reconcile with the abort total, and
        // every label must be a known cause.
        let cause_sum: u32 = back.abort_causes.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(cause_sum as usize, back.aborts);
        for (label, count) in &back.abort_causes {
            prop_assert!(*count > 0, "zero-count causes must be omitted");
            prop_assert!(
                AbortCause::ALL.iter().any(|c| c.as_str() == label),
                "unknown abort cause label: {label}"
            );
        }
        prop_assert_eq!(back.evaluations, evals);
    }
}
