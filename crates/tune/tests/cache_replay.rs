//! Integration proof of the evaluation cache's core contract: a cached
//! replay is indistinguishable from a live evaluation — bitwise-identical
//! serialized `Observation`s, identical session state (seed chain, stress
//! and retry time, penalty baseline), and reconciling observability
//! counters — even under fault injection and retries.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_faults::{FaultConfig, FaultPlan};
use relm_obs::Obs;
use relm_tune::{EvalStore, TuningEnv};
use relm_workloads::{max_resource_allocation, wordcount};

/// A faulty session: a 10% uniform plan reliably injects faults and
/// triggers retries over this many evaluations.
const EVALS: usize = 12;

fn engine(obs: Obs) -> Engine {
    Engine::new(ClusterSpec::cluster_a())
        .with_obs(obs)
        .with_faults(FaultPlan::new(7, FaultConfig::uniform(0.10)))
}

fn configs(env: &TuningEnv) -> Vec<MemoryConfig> {
    let base = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
    (0..EVALS)
        .map(|i| {
            let n = 2 + (i % 4) as u32;
            MemoryConfig {
                containers_per_node: n,
                heap: ClusterSpec::cluster_a().heap_for(n),
                task_concurrency: 1 + (i % 3) as u32,
                ..base
            }
        })
        .collect()
}

/// Runs one full session; returns (history JSON lines, counters, env).
fn run_session(cache: Option<EvalStore>) -> (Vec<String>, Vec<(String, f64)>, TuningEnv) {
    let obs = Obs::enabled();
    let mut env = TuningEnv::new(engine(obs.clone()), wordcount(), 42);
    if let Some(cache) = cache {
        env = env.with_cache(cache);
    }
    for config in configs(&env) {
        env.evaluate(&config);
    }
    let history: Vec<String> = env
        .history()
        .iter()
        .map(|o| serde_json::to_string(o).expect("observation serializes"))
        .collect();
    (history, obs.counters(), env)
}

#[test]
fn cached_replay_is_bitwise_identical_to_live_evaluation() {
    let (live_history, live_counters, live_env) = run_session(None);
    assert!(
        live_counters
            .iter()
            .any(|(n, v)| n == "faults.injected" && *v > 0.0),
        "the fixture must actually inject faults"
    );

    // Cold pass through a shared cache: every evaluation is a miss that
    // runs live, so nothing may differ from the uncached session.
    let cache: EvalStore = EvalStore::new();
    let (cold_history, cold_counters, cold_env) = run_session(Some(cache.clone()));
    assert_eq!(
        cold_history, live_history,
        "cold cached run must match live"
    );
    assert_eq!(cold_counters, live_counters);
    let stats = cache.stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.inserts as usize, EVALS);

    // Warm pass: every evaluation replays. History must be *bitwise*
    // identical, counters must reconcile, and session state must land in
    // the same place.
    let (warm_history, warm_counters, warm_env) = run_session(Some(cache.clone()));
    assert_eq!(
        warm_history, live_history,
        "replay must be bitwise-identical"
    );
    assert_eq!(
        warm_counters, live_counters,
        "replayed counters must reconcile"
    );
    assert_eq!(cache.stats().hits as usize, EVALS);
    assert_eq!(
        cache.stats().inserts as usize,
        EVALS,
        "no re-inserts on hits"
    );
    assert_eq!(warm_env.next_seed(), live_env.next_seed());
    assert_eq!(warm_env.worst_mins(), live_env.worst_mins());
    assert_eq!(warm_env.stress_time(), live_env.stress_time());
    assert_eq!(warm_env.retry_time(), live_env.retry_time());
    assert_eq!(warm_env.total_retries(), live_env.total_retries());
    drop(cold_env);
}

#[test]
fn replay_survives_the_persistent_store() {
    let cache: EvalStore = EvalStore::new();
    let (live_history, live_counters, _) = run_session(Some(cache.clone()));

    let path = std::env::temp_dir().join(format!(
        "relm-tune-cache-replay-{}.jsonl",
        std::process::id()
    ));
    relm_evalcache::store::save(&cache, &path).expect("save");
    let restored: EvalStore = EvalStore::new();
    let loaded = relm_evalcache::store::load(&restored, &path).expect("load");
    assert_eq!(loaded, EVALS);

    // A fresh process (fresh cache handle, fresh obs) replaying from disk
    // must reproduce the original session exactly.
    let (warm_history, warm_counters, _) = run_session(Some(restored.clone()));
    assert_eq!(warm_history, live_history);
    assert_eq!(warm_counters, live_counters);
    assert_eq!(restored.stats().hits as usize, EVALS);
    std::fs::remove_file(&path).ok();
}

#[test]
fn different_fault_plans_do_not_share_entries() {
    let cache: EvalStore = EvalStore::new();
    let obs = Obs::enabled();
    let mut env_a = TuningEnv::new(engine(obs.clone()), wordcount(), 42).with_cache(cache.clone());
    let config = configs(&env_a)[0];
    env_a.evaluate(&config);

    // Same everything except the fault-plan seed: must miss, not hit.
    let other_engine = Engine::new(ClusterSpec::cluster_a())
        .with_obs(Obs::enabled())
        .with_faults(FaultPlan::new(8, FaultConfig::uniform(0.10)));
    let mut env_b = TuningEnv::new(other_engine, wordcount(), 42).with_cache(cache.clone());
    env_b.evaluate(&config);
    assert_eq!(
        cache.stats().hits,
        0,
        "distinct fault plans must not collide"
    );
    assert_eq!(cache.stats().inserts, 2);
}
