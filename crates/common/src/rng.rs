//! Deterministic random-number generation.
//!
//! The evaluation in the paper repeats every stochastic experiment 5–10 times.
//! To make those repetitions exactly reproducible across platforms this crate
//! ships a small SplitMix64 generator instead of relying on `rand`'s
//! unspecified seeding behaviour. `rand` is still used in higher layers where
//! distribution quality matters more than bit-for-bit stability.

/// A SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, has a 64-bit state, and is trivially
/// `fork`-able into independent streams, which the simulator uses to give
/// every container its own deterministic stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent stream for a sub-component (e.g. container `i`
    /// of run `r`). Streams with different `stream` values are decorrelated.
    pub fn fork(&self, stream: u64) -> Rng {
        let mut mixed = self.state ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        mixed = mixed.wrapping_mul(0x9FB2_1C65_1E98_DF25);
        Rng::new(mixed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // Use the high 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Rejection-free Lemire-style reduction is overkill here; modulo bias
        // for n << 2^64 is negligible for simulation purposes.
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A multiplicative log-normal-ish noise factor centred at 1.0 with the
    /// given relative spread, clamped away from zero. Used to model run-to-run
    /// variability of task durations.
    pub fn noise_factor(&mut self, relative_std: f64) -> f64 {
        (1.0 + relative_std * self.normal()).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let root = Rng::new(7);
        let mut s1 = root.fork(0);
        let mut s2 = root.fork(1);
        let overlaps = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(overlaps, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut rng = Rng::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn noise_factor_positive() {
        let mut rng = Rng::new(23);
        for _ in 0..1_000 {
            assert!(rng.noise_factor(0.5) > 0.0);
        }
    }
}
