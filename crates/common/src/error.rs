//! Error types shared by the workspace.

use std::fmt;

/// Errors produced by the simulator and tuners.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration failed validation (e.g. zero containers, pool
    /// fractions exceeding the heap).
    InvalidConfig(String),
    /// An application profile is unusable for the requested analysis
    /// (e.g. no full-GC events when estimating Task Unmanaged memory).
    InvalidProfile(String),
    /// A numerical routine failed (e.g. Cholesky on a non-PD matrix).
    Numerical(String),
    /// A tuner could not produce a recommendation.
    Tuning(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::InvalidProfile(m) => write!(f, "invalid profile: {m}"),
            Error::Numerical(m) => write!(f, "numerical error: {m}"),
            Error::Tuning(m) => write!(f, "tuning error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidConfig("heap must be positive".into());
        assert!(e.to_string().contains("heap must be positive"));
        let e = Error::Numerical("not positive definite".into());
        assert!(e.to_string().contains("numerical"));
    }
}
