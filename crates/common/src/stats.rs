//! Descriptive statistics used across the profiler, the tuners, and the
//! evaluation harness: percentiles (Table 6 uses 90th-percentile statistics),
//! Pearson correlation (§6.5), Spearman rank correlation (Figure 24), and the
//! coefficient of determination R² (Figure 25).

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0.0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean (used for the error bars in Figure 23).
pub fn std_error(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Percentile via linear interpolation between order statistics
/// (the "exclusive" convention is unnecessary at our sample sizes).
/// `q` is in `[0, 100]`. Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Pearson correlation coefficient. Returns 0.0 when either input is
/// constant or the slices are shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Ranks of the values (average rank for ties), 1-based.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Coefficient of determination R² of predictions against observations.
/// Can be negative when predictions are worse than the mean baseline.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        predicted.len(),
        "r_squared: length mismatch"
    );
    if observed.is_empty() {
        return 0.0;
    }
    let m = mean(observed);
    let ss_tot: f64 = observed.iter().map(|y| (y - m).powi(2)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(y, f)| (y - f).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            return 1.0;
        }
        return f64::NEG_INFINITY;
    }
    1.0 - ss_res / ss_tot
}

/// Five-number summary used for the box-whisker plots (Figures 18 and 19).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    pub min: f64,
    pub q25: f64,
    pub median: f64,
    pub q75: f64,
    pub max: f64,
}

/// Computes the five-number summary. Returns all-zero for an empty slice.
pub fn five_number(xs: &[f64]) -> FiveNumber {
    FiveNumber {
        min: percentile(xs, 0.0),
        q25: percentile(xs, 25.0),
        median: percentile(xs, 50.0),
        q75: percentile(xs, 75.0),
        max: percentile(xs, 100.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(percentile(&[], 90.0), 0.0);
        assert_eq!(std_error(&[]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert!((percentile(&xs, 90.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 90.0), 42.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_fit() {
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&ys, &ys), 1.0);
    }

    #[test]
    fn r_squared_mean_baseline_is_zero() {
        let ys = [1.0, 2.0, 3.0];
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&ys, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn five_number_summary() {
        let s = five_number(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
    }
}
