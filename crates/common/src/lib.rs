//! # relm-common
//!
//! Shared vocabulary for the RelM reproduction: memory/time units, a
//! deterministic random-number generator, descriptive statistics helpers, and
//! the canonical [`MemoryConfig`] describing the memory-management knobs the
//! paper tunes (Table 1 of the paper).
//!
//! Everything in this crate is dependency-light and platform-deterministic so
//! that simulation results are exactly reproducible from a seed.

pub mod config;
pub mod error;
pub mod hash;
pub mod mem;
pub mod rng;
pub mod stats;
pub mod time;

pub use config::{ConfigError, MemoryConfig, MAX_CONTAINERS_PER_NODE, MAX_NEW_RATIO};
pub use error::{Error, Result};
pub use mem::Mem;
pub use rng::Rng;
pub use time::Millis;
