//! The canonical memory-management configuration (Table 1 of the paper).
//!
//! A [`MemoryConfig`] fixes every knob the paper tunes:
//! containers per node (resource-manager level), heap size and task
//! concurrency (container level), cache/shuffle capacities (application
//! level), and `NewRatio`/`SurvivorRatio` (JVM level).

use crate::Mem;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Largest supported container count per node. YARN on the paper's
/// 8-core/30 GB nodes never carves more than 4 homogeneous containers
/// out of a worker, and every enumeration in the workspace
/// (`ClusterSpec::container_options`, the §6.1 grid) stops there.
pub const MAX_CONTAINERS_PER_NODE: u32 = 4;

/// Largest supported `NewRatio`. The tuned space of §6.1 spans 1–9; the
/// Old generation already holds 90% of the heap at 9, so larger values
/// add nothing but overflow risk in the generation arithmetic.
pub const MAX_NEW_RATIO: u32 = 9;

/// A typed violation of a [`MemoryConfig`] invariant.
///
/// Each variant names the knob at fault and carries the offending value,
/// so callers (config-space samplers, checkpoint loaders, CLI parsers)
/// can react per knob instead of string-matching an error message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `containers_per_node` outside `1..=MAX_CONTAINERS_PER_NODE`.
    ContainersPerNodeOutOfRange(u32),
    /// `task_concurrency` of zero: no execution slots at all.
    ZeroTaskConcurrency,
    /// Non-positive heap.
    ZeroHeap,
    /// A pool fraction outside `[0, 1]`; carries the knob name and value.
    FractionOutOfRange(&'static str, f64),
    /// `cache_fraction + shuffle_fraction` exceeds the whole heap.
    UnifiedPoolOverflow(f64),
    /// `new_ratio` outside `1..=MAX_NEW_RATIO`.
    NewRatioOutOfRange(u32),
    /// `survivor_ratio` of zero: Eden would swallow the Young generation.
    ZeroSurvivorRatio,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ContainersPerNodeOutOfRange(n) => write!(
                f,
                "containers_per_node must be in 1..={MAX_CONTAINERS_PER_NODE}, got {n}"
            ),
            ConfigError::ZeroTaskConcurrency => write!(f, "task_concurrency must be >= 1"),
            ConfigError::ZeroHeap => write!(f, "heap must be positive"),
            ConfigError::FractionOutOfRange(knob, v) => {
                write!(f, "{knob} must be in [0, 1], got {v}")
            }
            ConfigError::UnifiedPoolOverflow(v) => write!(
                f,
                "cache_fraction + shuffle_fraction must not exceed 1, got {v}"
            ),
            ConfigError::NewRatioOutOfRange(nr) => {
                write!(f, "new_ratio must be in 1..={MAX_NEW_RATIO}, got {nr}")
            }
            ConfigError::ZeroSurvivorRatio => write!(f, "survivor_ratio must be >= 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for crate::Error {
    fn from(e: ConfigError) -> Self {
        crate::Error::InvalidConfig(e.to_string())
    }
}

/// A complete assignment of the memory-management knobs of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of homogeneous containers carved out of each worker node.
    pub containers_per_node: u32,
    /// JVM heap size of each container.
    pub heap: Mem,
    /// Number of tasks running concurrently inside one container
    /// (the number of execution *slots*).
    pub task_concurrency: u32,
    /// Cache Storage capacity as a fraction of heap
    /// (`spark.memory.fraction`'s storage share).
    pub cache_fraction: f64,
    /// Task Shuffle capacity as a fraction of heap
    /// (`spark.memory.fraction`'s execution share).
    pub shuffle_fraction: f64,
    /// Ratio of the Old generation capacity to the Young generation capacity.
    pub new_ratio: u32,
    /// Ratio of the Eden capacity to one Survivor space's capacity.
    pub survivor_ratio: u32,
}

impl MemoryConfig {
    /// The fraction of heap handed to the unified memory pool
    /// (cache + shuffle), mirroring Spark's unified memory manager.
    pub fn unified_fraction(&self) -> f64 {
        self.cache_fraction + self.shuffle_fraction
    }

    /// Cache Storage pool capacity in absolute terms.
    pub fn cache_capacity(&self) -> Mem {
        self.heap * self.cache_fraction
    }

    /// Task Shuffle pool capacity in absolute terms.
    pub fn shuffle_capacity(&self) -> Mem {
        self.heap * self.shuffle_fraction
    }

    /// Old generation capacity implied by `NewRatio`:
    /// `old = heap * NR / (NR + 1)`.
    pub fn old_capacity(&self) -> Mem {
        self.heap * (self.new_ratio as f64 / (self.new_ratio as f64 + 1.0))
    }

    /// Young generation capacity implied by `NewRatio`.
    pub fn young_capacity(&self) -> Mem {
        self.heap * (1.0 / (self.new_ratio as f64 + 1.0))
    }

    /// Eden capacity implied by `NewRatio` and `SurvivorRatio`:
    /// `eden = young * (SR - 2) / SR` — wait, Eden plus two survivor spaces
    /// make up Young, with `eden / survivor = SR`, so
    /// `eden = young * SR / (SR + 2)`.
    ///
    /// The paper's Equation 3 instead uses the widely quoted HotSpot
    /// approximation `eden = young * (SR - 2) / SR`; the *analytical models*
    /// in `relm-core` follow the paper's formula verbatim, while the JVM
    /// simulator uses the exact layout. The two agree within a few percent
    /// for the default `SR = 8`.
    pub fn eden_capacity(&self) -> Mem {
        let sr = self.survivor_ratio as f64;
        self.young_capacity() * (sr / (sr + 2.0))
    }

    /// One survivor space's capacity.
    pub fn survivor_capacity(&self) -> Mem {
        let sr = self.survivor_ratio as f64;
        self.young_capacity() * (1.0 / (sr + 2.0))
    }

    /// Checks every invariant and reports the first violation as a typed
    /// [`ConfigError`]: containers and `NewRatio` within their supported
    /// ranges, positive pools, fractions in `[0, 1]`, and the unified pool
    /// not exceeding the heap.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(1..=MAX_CONTAINERS_PER_NODE).contains(&self.containers_per_node) {
            return Err(ConfigError::ContainersPerNodeOutOfRange(
                self.containers_per_node,
            ));
        }
        if self.task_concurrency == 0 {
            return Err(ConfigError::ZeroTaskConcurrency);
        }
        if self.heap.is_zero() {
            return Err(ConfigError::ZeroHeap);
        }
        if !(0.0..=1.0).contains(&self.cache_fraction) {
            return Err(ConfigError::FractionOutOfRange(
                "cache_fraction",
                self.cache_fraction,
            ));
        }
        if !(0.0..=1.0).contains(&self.shuffle_fraction) {
            return Err(ConfigError::FractionOutOfRange(
                "shuffle_fraction",
                self.shuffle_fraction,
            ));
        }
        if self.unified_fraction() > 1.0 {
            return Err(ConfigError::UnifiedPoolOverflow(self.unified_fraction()));
        }
        if !(1..=MAX_NEW_RATIO).contains(&self.new_ratio) {
            return Err(ConfigError::NewRatioOutOfRange(self.new_ratio));
        }
        if self.survivor_ratio < 1 {
            return Err(ConfigError::ZeroSurvivorRatio);
        }
        Ok(())
    }

    /// Validates internal consistency like [`MemoryConfig::check`], erasing
    /// the violation into the workspace-wide [`crate::Error`].
    pub fn validate(&self) -> crate::Result<()> {
        self.check().map_err(Into::into)
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} heap={} p={} cache={:.2} shuffle={:.2} NR={} SR={}",
            self.containers_per_node,
            self.heap,
            self.task_concurrency,
            self.cache_fraction,
            self.shuffle_fraction,
            self.new_ratio,
            self.survivor_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemoryConfig {
        MemoryConfig {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            task_concurrency: 2,
            cache_fraction: 0.3,
            shuffle_fraction: 0.3,
            new_ratio: 2,
            survivor_ratio: 8,
        }
    }

    #[test]
    fn pool_arithmetic() {
        let c = cfg();
        assert!((c.old_capacity().as_mb() - 2936.0).abs() < 1.0);
        assert!((c.young_capacity().as_mb() - 1468.0).abs() < 1.0);
        // eden + 2 survivors = young
        let young = c.eden_capacity() + c.survivor_capacity() * 2.0;
        assert!((young.as_mb() - c.young_capacity().as_mb()).abs() < 1e-9);
        // eden / survivor = SR
        assert!((c.eden_capacity() / c.survivor_capacity() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn unified_pool() {
        let c = cfg();
        assert!((c.unified_fraction() - 0.6).abs() < 1e-12);
        assert!((c.cache_capacity().as_mb() - 4404.0 * 0.3).abs() < 1e-9);
        assert!((c.shuffle_capacity().as_mb() - 4404.0 * 0.3).abs() < 1e-9);
    }

    #[test]
    fn validation_accepts_good_config() {
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = cfg();
        c.containers_per_node = 0;
        assert_eq!(c.check(), Err(ConfigError::ContainersPerNodeOutOfRange(0)));

        let mut c = cfg();
        c.containers_per_node = 5;
        assert_eq!(c.check(), Err(ConfigError::ContainersPerNodeOutOfRange(5)));

        let mut c = cfg();
        c.task_concurrency = 0;
        assert_eq!(c.check(), Err(ConfigError::ZeroTaskConcurrency));

        let mut c = cfg();
        c.cache_fraction = 0.7;
        c.shuffle_fraction = 0.7;
        assert!(matches!(
            c.check(),
            Err(ConfigError::UnifiedPoolOverflow(_))
        ));

        let mut c = cfg();
        c.cache_fraction = -0.1;
        assert!(matches!(
            c.check(),
            Err(ConfigError::FractionOutOfRange("cache_fraction", _))
        ));

        let mut c = cfg();
        c.new_ratio = 0;
        assert_eq!(c.check(), Err(ConfigError::NewRatioOutOfRange(0)));

        let mut c = cfg();
        c.new_ratio = 10;
        assert_eq!(c.check(), Err(ConfigError::NewRatioOutOfRange(10)));

        let mut c = cfg();
        c.heap = Mem::ZERO;
        assert_eq!(c.check(), Err(ConfigError::ZeroHeap));

        let mut c = cfg();
        c.survivor_ratio = 0;
        assert_eq!(c.check(), Err(ConfigError::ZeroSurvivorRatio));
    }

    #[test]
    fn config_error_erases_into_workspace_error() {
        let mut c = cfg();
        c.new_ratio = 12;
        let err = c.validate().unwrap_err();
        match err {
            crate::Error::InvalidConfig(msg) => {
                assert!(msg.contains("new_ratio"), "unexpected message: {msg}");
                assert!(msg.contains("12"), "unexpected message: {msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn boundary_values_are_accepted() {
        let mut c = cfg();
        c.containers_per_node = MAX_CONTAINERS_PER_NODE;
        c.new_ratio = MAX_NEW_RATIO;
        assert!(c.check().is_ok());
    }
}
