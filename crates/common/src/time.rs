//! Simulated time.
//!
//! The discrete-event simulator advances a wall clock measured in
//! milliseconds. [`Millis`] is used both for instants and durations; the
//! distinction is not worth two types at this scale since the simulation
//! always starts at `t = 0`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulated time value (instant or duration) in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Millis(f64);

impl Millis {
    /// Zero time.
    pub const ZERO: Millis = Millis(0.0);

    /// Creates a value from milliseconds.
    #[inline]
    pub fn ms(ms: f64) -> Self {
        Millis(ms)
    }

    /// Creates a value from seconds.
    #[inline]
    pub fn secs(s: f64) -> Self {
        Millis(s * 1_000.0)
    }

    /// Creates a value from minutes.
    #[inline]
    pub fn mins(m: f64) -> Self {
        Millis(m * 60_000.0)
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000.0
    }

    /// The value in minutes.
    #[inline]
    pub fn as_mins(self) -> f64 {
        self.0 / 60_000.0
    }

    /// Returns the larger of two values.
    #[inline]
    pub fn max(self, other: Millis) -> Millis {
        Millis(self.0.max(other.0))
    }

    /// Returns the smaller of two values.
    #[inline]
    pub fn min(self, other: Millis) -> Millis {
        Millis(self.0.min(other.0))
    }

    /// Clamps negative durations to zero.
    #[inline]
    pub fn clamp_non_negative(self) -> Millis {
        Millis(self.0.max(0.0))
    }
}

impl Add for Millis {
    type Output = Millis;
    #[inline]
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0 + rhs.0)
    }
}

impl AddAssign for Millis {
    #[inline]
    fn add_assign(&mut self, rhs: Millis) {
        self.0 += rhs.0;
    }
}

impl Sub for Millis {
    type Output = Millis;
    #[inline]
    fn sub(self, rhs: Millis) -> Millis {
        Millis(self.0 - rhs.0)
    }
}

impl SubAssign for Millis {
    #[inline]
    fn sub_assign(&mut self, rhs: Millis) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Millis {
    type Output = Millis;
    #[inline]
    fn mul(self, rhs: f64) -> Millis {
        Millis(self.0 * rhs)
    }
}

impl Div<f64> for Millis {
    type Output = Millis;
    #[inline]
    fn div(self, rhs: f64) -> Millis {
        Millis(self.0 / rhs)
    }
}

impl Div<Millis> for Millis {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Millis) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Millis {
    fn sum<I: Iterator<Item = Millis>>(iter: I) -> Millis {
        iter.fold(Millis::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000.0 {
            write!(f, "{:.1}min", self.as_mins())
        } else if self.0 >= 1_000.0 {
            write!(f, "{:.1}s", self.as_secs())
        } else {
            write!(f, "{:.1}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Millis::secs(2.0).as_ms(), 2_000.0);
        assert_eq!(Millis::mins(1.5).as_secs(), 90.0);
        assert_eq!(Millis::ms(30_000.0).as_mins(), 0.5);
    }

    #[test]
    fn arithmetic() {
        let a = Millis::secs(10.0);
        let b = Millis::secs(4.0);
        assert_eq!((a + b).as_secs(), 14.0);
        assert_eq!((a - b).as_secs(), 6.0);
        assert_eq!((a * 0.5).as_secs(), 5.0);
        assert_eq!(a / b, 2.5);
    }

    #[test]
    fn display() {
        assert_eq!(Millis::ms(12.0).to_string(), "12.0ms");
        assert_eq!(Millis::secs(3.0).to_string(), "3.0s");
        assert_eq!(Millis::mins(2.0).to_string(), "2.0min");
    }

    #[test]
    fn clamp() {
        assert_eq!(
            (Millis::secs(1.0) - Millis::secs(5.0)).clamp_non_negative(),
            Millis::ZERO
        );
    }
}
