//! Memory quantities.
//!
//! The paper works almost exclusively in megabytes (e.g. Table 4 lists a heap
//! of 4404 MB), so [`Mem`] stores megabytes as an `f64`. The newtype prevents
//! accidentally mixing memory quantities with unit-less scalars while staying
//! cheap to copy.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A quantity of memory, stored internally in megabytes.
///
/// `Mem` supports the arithmetic needed by the analytical models in the paper
/// (addition/subtraction of pools, scaling by fractions, and ratios between
/// pools which yield plain `f64`s).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Mem(f64);

impl Mem {
    /// Zero bytes.
    pub const ZERO: Mem = Mem(0.0);

    /// Creates a quantity from megabytes.
    #[inline]
    pub fn mb(mb: f64) -> Self {
        Mem(mb)
    }

    /// Creates a quantity from gigabytes.
    #[inline]
    pub fn gb(gb: f64) -> Self {
        Mem(gb * 1024.0)
    }

    /// Creates a quantity from kilobytes.
    #[inline]
    pub fn kb(kb: f64) -> Self {
        Mem(kb / 1024.0)
    }

    /// The quantity in megabytes.
    #[inline]
    pub fn as_mb(self) -> f64 {
        self.0
    }

    /// The quantity in gigabytes.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 / 1024.0
    }

    /// Clamps negative quantities to zero. Analytical models subtract pools
    /// from one another; a deficit is reported as zero remaining memory.
    #[inline]
    pub fn clamp_non_negative(self) -> Self {
        Mem(self.0.max(0.0))
    }

    /// Returns the smaller of two quantities.
    #[inline]
    pub fn min(self, other: Mem) -> Mem {
        Mem(self.0.min(other.0))
    }

    /// Returns the larger of two quantities.
    #[inline]
    pub fn max(self, other: Mem) -> Mem {
        Mem(self.0.max(other.0))
    }

    /// True if the quantity is exactly zero (or negative, which models treat
    /// as "no memory").
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// The ratio of `self` to `other` (unit-less). Returns `f64::INFINITY`
    /// when `other` is zero and `self` positive; `0.0` when both are zero.
    #[inline]
    pub fn ratio(self, other: Mem) -> f64 {
        if other.0 == 0.0 {
            if self.0 == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 / other.0
        }
    }
}

impl Add for Mem {
    type Output = Mem;
    #[inline]
    fn add(self, rhs: Mem) -> Mem {
        Mem(self.0 + rhs.0)
    }
}

impl AddAssign for Mem {
    #[inline]
    fn add_assign(&mut self, rhs: Mem) {
        self.0 += rhs.0;
    }
}

impl Sub for Mem {
    type Output = Mem;
    #[inline]
    fn sub(self, rhs: Mem) -> Mem {
        Mem(self.0 - rhs.0)
    }
}

impl SubAssign for Mem {
    #[inline]
    fn sub_assign(&mut self, rhs: Mem) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Mem {
    type Output = Mem;
    #[inline]
    fn mul(self, rhs: f64) -> Mem {
        Mem(self.0 * rhs)
    }
}

impl Mul<Mem> for f64 {
    type Output = Mem;
    #[inline]
    fn mul(self, rhs: Mem) -> Mem {
        Mem(self * rhs.0)
    }
}

impl Div<f64> for Mem {
    type Output = Mem;
    #[inline]
    fn div(self, rhs: f64) -> Mem {
        Mem(self.0 / rhs)
    }
}

impl Div<Mem> for Mem {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Mem) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Mem {
    type Output = Mem;
    #[inline]
    fn neg(self) -> Mem {
        Mem(-self.0)
    }
}

impl Sum for Mem {
    fn sum<I: Iterator<Item = Mem>>(iter: I) -> Mem {
        iter.fold(Mem::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1024.0 {
            write!(f, "{:.2}GB", self.0 / 1024.0)
        } else {
            write!(f, "{:.0}MB", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Mem::gb(2.0).as_mb(), 2048.0);
        assert_eq!(Mem::mb(512.0).as_gb(), 0.5);
        assert_eq!(Mem::kb(2048.0).as_mb(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let a = Mem::mb(100.0);
        let b = Mem::mb(40.0);
        assert_eq!((a + b).as_mb(), 140.0);
        assert_eq!((a - b).as_mb(), 60.0);
        assert_eq!((a * 0.5).as_mb(), 50.0);
        assert_eq!((a / 4.0).as_mb(), 25.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((2.0 * b).as_mb(), 80.0);
    }

    #[test]
    fn clamp_and_ratio() {
        assert_eq!(
            (Mem::mb(10.0) - Mem::mb(20.0)).clamp_non_negative(),
            Mem::ZERO
        );
        assert_eq!(Mem::mb(30.0).ratio(Mem::mb(10.0)), 3.0);
        assert!(Mem::mb(1.0).ratio(Mem::ZERO).is_infinite());
        assert_eq!(Mem::ZERO.ratio(Mem::ZERO), 0.0);
    }

    #[test]
    fn min_max_and_predicates() {
        assert_eq!(Mem::mb(3.0).min(Mem::mb(5.0)), Mem::mb(3.0));
        assert_eq!(Mem::mb(3.0).max(Mem::mb(5.0)), Mem::mb(5.0));
        assert!(Mem::ZERO.is_zero());
        assert!(!Mem::mb(1.0).is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Mem::mb(512.0).to_string(), "512MB");
        assert_eq!(Mem::gb(2.0).to_string(), "2.00GB");
    }

    #[test]
    fn sums() {
        let total: Mem = [Mem::mb(1.0), Mem::mb(2.0), Mem::mb(3.0)].into_iter().sum();
        assert_eq!(total, Mem::mb(6.0));
    }
}
