//! Deterministic FNV-1a hashing — the one hash construction the whole
//! workspace shares.
//!
//! Everything that must replay byte-identically across platforms, threads,
//! and process restarts (fault-injection sites, sampler seeds, evaluation
//! cache keys) hashes through these functions rather than
//! `std::hash::Hasher`, whose output is deliberately unstable across Rust
//! releases. FNV-1a is tiny, has no lookup tables, and its output is fixed
//! by the specification — exactly what a reproducibility-first codebase
//! wants.

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 128-bit offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }

    /// Feeds one `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Feeds a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// FNV-1a over raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// FNV-1a over a string's UTF-8 bytes.
pub fn fnv1a64_str(s: &str) -> u64 {
    fnv1a64(s.as_bytes())
}

/// FNV-1a over a sequence of `u64` parts (each fed as little-endian
/// bytes) — the site-addressing construction the fault injector and the
/// engine's sticky data skew use.
pub fn fnv1a64_parts(parts: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    for &part in parts {
        h.write_u64(part);
    }
    h.finish()
}

/// Streaming FNV-1a 128-bit hasher, for content-addressed keys where the
/// 64-bit birthday bound is uncomfortably close to real workload sizes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv128(u128);

impl Fnv128 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv64_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64_str("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parts_match_byte_feed() {
        let mut h = Fnv64::new();
        h.write_bytes(&7u64.to_le_bytes());
        h.write_bytes(&11u64.to_le_bytes());
        assert_eq!(fnv1a64_parts(&[7, 11]), h.finish());
    }

    #[test]
    fn fnv128_distinguishes_order() {
        let mut a = Fnv128::new();
        a.write_str("ab");
        let mut b = Fnv128::new();
        b.write_str("ba");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn streaming_is_concatenation() {
        let mut h = Fnv128::new();
        h.write_str("foo");
        h.write_str("bar");
        let mut w = Fnv128::new();
        w.write_str("foobar");
        assert_eq!(h.finish(), w.finish());
    }
}
