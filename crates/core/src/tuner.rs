//! The RelM tuner: Enumerator + Selector (Figure 12) wired into the common
//! [`Tuner`] interface.

use crate::arbitrator::{Arbitrator, ArbitratorOutcome};
use crate::initializer::Initializer;
use crate::DEFAULT_SAFETY;
use relm_common::{MemoryConfig, Result};
use relm_profile::{derive_stats, DerivedStats, Profile};
use relm_tune::{recommendation, Recommendation, Tuner, TuningEnv};
use relm_workloads::max_resource_allocation;
use serde::{Deserialize, Serialize};

/// Utility ordering key: NaN (possible when the model runs on a corrupted
/// profile) ranks below every real utility instead of panicking.
fn utility_key(u: f64) -> f64 {
    if u.is_nan() {
        f64::NEG_INFINITY
    } else {
        u
    }
}

/// One enumerated candidate: the best arbitrated configuration for a
/// container size, with its utility score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelmCandidate {
    /// Containers per node of the candidate.
    pub containers_per_node: u32,
    /// The arbitrated configuration.
    pub config: MemoryConfig,
    /// Utility score `U`.
    pub utility: f64,
}

/// The RelM tuner.
#[derive(Debug, Clone)]
pub struct RelmTuner {
    delta: f64,
    /// The last statistics used (exposed for analysis binaries).
    last_stats: Option<DerivedStats>,
    /// Arbitration traces per candidate (Figure 13).
    last_outcomes: Vec<(u32, ArbitratorOutcome)>,
}

impl Default for RelmTuner {
    fn default() -> Self {
        RelmTuner::new(DEFAULT_SAFETY)
    }
}

impl RelmTuner {
    /// Creates a tuner with safety fraction δ.
    pub fn new(delta: f64) -> Self {
        RelmTuner {
            delta,
            last_stats: None,
            last_outcomes: Vec::new(),
        }
    }

    /// The statistics derived during the last [`Tuner::tune`] call.
    pub fn last_stats(&self) -> Option<&DerivedStats> {
        self.last_stats.as_ref()
    }

    /// The per-container-size arbitration outcomes of the last run.
    pub fn last_outcomes(&self) -> &[(u32, ArbitratorOutcome)] {
        &self.last_outcomes
    }

    /// Pure model evaluation: enumerate container sizes, run
    /// Initializer + Arbitrator on each, and rank by utility. This is the
    /// whole analytical pipeline given already-derived statistics — no
    /// stress tests involved.
    pub fn candidates_from_stats(
        &self,
        cluster: &relm_cluster::ClusterSpec,
        stats: DerivedStats,
    ) -> Vec<RelmCandidate> {
        let init = Initializer::new(stats, self.delta);
        let arb = Arbitrator::new(self.delta);
        let mut out = Vec::new();
        for (n, heap) in cluster.container_options() {
            let max_p = cluster.max_task_concurrency(n);
            let initial = init.initialize(n, heap, max_p);
            if let Ok(outcome) = arb.arbitrate(&init, &initial) {
                out.push(RelmCandidate {
                    containers_per_node: n,
                    config: outcome.config,
                    utility: outcome.utility,
                });
            }
        }
        // Selector: rank by utility, best first. A corrupted profile can
        // drive the model to a NaN utility; those candidates sort last
        // instead of panicking the session.
        out.sort_by(|a, b| utility_key(b.utility).total_cmp(&utility_key(a.utility)));
        out
    }

    /// Recommends a configuration from an existing profile, without running
    /// any new stress test (the analytical core of RelM).
    pub fn recommend_from_profile(
        &mut self,
        cluster: &relm_cluster::ClusterSpec,
        profile: &Profile,
    ) -> Result<MemoryConfig> {
        let stats = derive_stats(profile);
        self.last_stats = Some(stats);
        self.recommend_from_stats(cluster, stats)
    }

    /// Recommends a configuration from derived statistics.
    pub fn recommend_from_stats(
        &mut self,
        cluster: &relm_cluster::ClusterSpec,
        stats: DerivedStats,
    ) -> Result<MemoryConfig> {
        self.last_stats = Some(stats);
        let init = Initializer::new(stats, self.delta);
        let arb = Arbitrator::new(self.delta);
        self.last_outcomes.clear();
        for (n, heap) in cluster.container_options() {
            let max_p = cluster.max_task_concurrency(n);
            let initial = init.initialize(n, heap, max_p);
            if let Ok(outcome) = arb.arbitrate(&init, &initial) {
                self.last_outcomes.push((n, outcome));
            }
        }
        self.last_outcomes
            .iter()
            .max_by(|a, b| utility_key(a.1.utility).total_cmp(&utility_key(b.1.utility)))
            .map(|(_, o)| o.config)
            .ok_or_else(|| {
                relm_common::Error::Tuning(
                    "no container size can safely run the application".into(),
                )
            })
    }

    /// The §4.1 re-profiling heuristic for profiles without full-GC events:
    /// decrease heap (more containers), increase task concurrency, and
    /// increase `NewRatio` — all raising GC pressure.
    pub fn reprofile_config(env: &TuningEnv, base: &MemoryConfig) -> MemoryConfig {
        let cluster = env.engine().cluster();
        let n = (base.containers_per_node * 2).min(4);
        let max_p = cluster.max_task_concurrency(n);
        MemoryConfig {
            containers_per_node: n,
            heap: cluster.heap_for(n),
            task_concurrency: (base.task_concurrency + 1).min(max_p),
            new_ratio: 8,
            ..*base
        }
    }
}

impl Tuner for RelmTuner {
    fn name(&self) -> &'static str {
        "RelM"
    }

    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation> {
        let telemetry = env.obs().clone();
        let _session = telemetry.span("tuner.tune").with("policy", self.name());
        // Profile once under the vendor defaults (Thoth collects the profile
        // with minimal overhead, §6.1).
        let default = max_resource_allocation(env.engine().cluster(), env.app());
        let (obs0, profile) = env.evaluate_profiled(&default);
        let censored0 = obs0.result.aborted;
        let stats_started = std::time::Instant::now();
        let mut stats = {
            let _stats_span = telemetry.span("relm.derive_stats");
            derive_stats(&profile)
        };
        telemetry.record("relm.stats_ms", stats_started.elapsed().as_secs_f64() * 1e3);

        // §4.1: a profile without full-GC events cannot yield an accurate
        // M_u; make one additional profiling run with GC pressure raised.
        // A censored first run (aborted or timed out on a faulty substrate)
        // also warrants re-profiling: its truncated profile may mislead the
        // model.
        if !stats.m_u_from_full_gc || censored0 {
            let pressure_cfg = Self::reprofile_config(env, &default);
            let (obs2, profile2) = env.evaluate_profiled(&pressure_cfg);
            let stats2 = derive_stats(&profile2);
            if stats2.m_u_from_full_gc || (censored0 && !obs2.result.aborted) {
                stats = stats2;
            }
        }

        let cluster = env.engine().cluster().clone();
        let decide_started = std::time::Instant::now();
        let config = {
            let _decide = telemetry.span("relm.decide").with("delta", self.delta);
            self.recommend_from_stats(&cluster, stats)?
        };
        telemetry.record(
            "relm.decide_ms",
            decide_started.elapsed().as_secs_f64() * 1e3,
        );
        Ok(recommendation(self.name(), env, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_app::Engine;
    use relm_cluster::ClusterSpec;
    use relm_tune::TuningEnv;
    use relm_workloads::{kmeans, pagerank, sortbykey, wordcount};

    fn tune_app(app: relm_app::AppSpec, seed: u64) -> (Recommendation, RelmTuner, TuningEnv) {
        let mut env = TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), app, seed);
        let mut tuner = RelmTuner::default();
        let rec = tuner
            .tune(&mut env)
            .expect("RelM should find a configuration");
        (rec, tuner, env)
    }

    #[test]
    fn relm_needs_at_most_two_profiling_runs() {
        for app in [wordcount(), sortbykey(), kmeans(), pagerank()] {
            let name = app.name.clone();
            let (rec, _, _) = tune_app(app, 17);
            assert!(
                rec.evaluations <= 2,
                "{name}: RelM used {} profiled runs",
                rec.evaluations
            );
            assert!(rec.config.validate().is_ok());
        }
    }

    #[test]
    fn relm_recommendation_is_safe_to_run() {
        for app in [wordcount(), sortbykey(), kmeans(), pagerank()] {
            let name = app.name.clone();
            let (rec, _, env) = tune_app(app.clone(), 23);
            // Execute the recommendation 3 times; no aborts allowed.
            let engine = env.engine().clone();
            for seed in 100..103 {
                let (result, _) = engine.run(&app, &rec.config, seed);
                assert!(
                    !result.aborted,
                    "{name}: RelM config aborted under seed {seed}: {}",
                    rec.config
                );
            }
        }
    }

    #[test]
    fn relm_beats_the_default_on_pagerank() {
        let app = pagerank();
        let (rec, _, env) = tune_app(app.clone(), 31);
        let engine = env.engine().clone();
        let default = max_resource_allocation(engine.cluster(), &app);
        let (def_run, _) = engine.run(&app, &default, 500);
        let (relm_run, _) = engine.run(&app, &rec.config, 500);
        let def_score = if def_run.aborted {
            f64::INFINITY
        } else {
            def_run.runtime_mins()
        };
        assert!(
            relm_run.runtime_mins() < def_score,
            "RelM ({}) should beat default ({:?})",
            relm_run.runtime_mins(),
            def_run
        );
        assert!(!relm_run.aborted);
    }

    #[test]
    fn selector_ranks_by_utility() {
        let (_, tuner, _) = tune_app(kmeans(), 41);
        let stats = *tuner.last_stats().unwrap();
        let candidates = tuner.candidates_from_stats(&ClusterSpec::cluster_a(), stats);
        assert!(!candidates.is_empty());
        for pair in candidates.windows(2) {
            assert!(pair[0].utility >= pair[1].utility);
        }
    }
}
