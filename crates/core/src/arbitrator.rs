//! The Arbitrator (§4.3, Algorithm 1): resolves contention between the
//! pools the Initializer sized independently, producing a *safe* and
//! resource-efficient configuration plus its utility score.

use crate::initializer::{InitialConfig, Initializer};
use relm_common::{Mem, MemoryConfig};
use serde::{Deserialize, Serialize};

/// One of the three round-robin arbitration actions (Algorithm 1, lines
/// 6–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbitratorAction {
    /// Action I: decrease Task Concurrency by 1.
    DecreaseConcurrency,
    /// Action II: reduce Cache Storage by `M_u` and re-derive the GC pools.
    ShrinkCache,
    /// Action III: grow the Old generation by `M_u` (trading GC overhead
    /// for safety, Observation 6).
    GrowOld,
}

/// A recorded arbitration step (the Figure-13 walkthrough).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArbitratorStep {
    /// Which action was applied (None when the action's guard failed and it
    /// was skipped).
    pub action: ArbitratorAction,
    /// Whether the action could be applied.
    pub applied: bool,
    /// Task Concurrency after the step.
    pub p: u32,
    /// Cache Storage after the step.
    pub cache: Mem,
    /// Old size after the step.
    pub old: Mem,
}

/// The Arbitrator's result for one candidate container size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArbitratorOutcome {
    /// The arbitrated configuration.
    pub config: MemoryConfig,
    /// Utility score `U = (M_i + m_c + p(M_u + m_s)) / m_h` (line 13).
    pub utility: f64,
    /// The step-by-step trace (Figure 13).
    pub trace: Vec<ArbitratorStep>,
    /// Final per-task shuffle assignment.
    pub shuffle_per_task: Mem,
}

/// Errors the Arbitrator can report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbitratorError {
    /// Line 1: even a single task cannot run in this container
    /// (`M_i + M_u > (1−δ) m_h`).
    InsufficientMemory,
    /// No action's guard could make progress (degenerate statistics).
    Stuck,
}

/// The Arbitrator.
#[derive(Debug, Clone, Copy)]
pub struct Arbitrator {
    delta: f64,
}

impl Arbitrator {
    /// Creates an arbitrator with safety fraction δ.
    pub fn new(delta: f64) -> Self {
        Arbitrator { delta }
    }

    /// Runs Algorithm 1 on an initialized configuration.
    pub fn arbitrate(
        &self,
        init: &Initializer,
        cfg: &InitialConfig,
    ) -> Result<ArbitratorOutcome, ArbitratorError> {
        let stats = *init.stats();
        let m_h = cfg.heap;
        let m_i = stats.m_i;
        let m_u = stats.m_u;
        let budget = m_h * (1.0 - self.delta);

        // Line 1: bare minimum — one task must fit.
        if m_i + m_u > budget {
            return Err(ArbitratorError::InsufficientMemory);
        }

        let mut p = cfg.task_concurrency.max(1);
        let mut cache = cfg.cache;
        let mut old = cfg.old;
        let mut eden = cfg.eden;
        let mut trace = Vec::new();
        let mut next_action = 0usize;

        // When M_u is zero the loop body cannot make progress by shrinking
        // in M_u-sized chunks; use a small quantum instead.
        let quantum = if m_u.is_zero() { m_h * 0.05 } else { m_u };

        // Main loop (lines 4–10).
        let mut stalled_rounds = 0u32;
        while m_i + p as f64 * m_u + cache > old {
            let action = match next_action % 3 {
                0 => ArbitratorAction::DecreaseConcurrency,
                1 => ArbitratorAction::ShrinkCache,
                _ => ArbitratorAction::GrowOld,
            };
            next_action += 1;

            let applied = match action {
                ArbitratorAction::DecreaseConcurrency => {
                    if p > 1 {
                        p -= 1;
                        true
                    } else {
                        false
                    }
                }
                ArbitratorAction::ShrinkCache => {
                    // Reduce by M_u "ensuring that m_c > 0" (Algorithm 1,
                    // line 7). For a caching application this guard is what
                    // rules out container sizes too small to cache anything:
                    // when no action can make progress the candidate is
                    // reported infeasible. Applications that cache nothing
                    // start at m_c = 0 and never take this action.
                    let applicable = if cfg.cache.is_zero() {
                        false
                    } else {
                        cache - quantum > Mem::ZERO
                    };
                    if applicable {
                        let new_cache = cache - quantum;
                        cache = new_cache;
                        // Re-derive the GC pools (line 8 / Equation 3) so
                        // Old covers the long-term demand — which per §4.3
                        // includes the task memory tenured at full-GC
                        // events (`p·M_u`) — with the safety fraction δ on
                        // top. The margin is what pushes `NewRatio` above
                        // the bare minimum, increasing collection frequency
                        // and arresting physical-memory growth
                        // (Observation 6 / Table 5's NR=5 row).
                        let demand = m_i + cache + m_u * p as f64;
                        let (new_old, new_eden) = fit_old(m_h, demand, self.delta);
                        old = new_old;
                        eden = new_eden;
                        true
                    } else {
                        false
                    }
                }
                ArbitratorAction::GrowOld => {
                    // Grow by M_u, clamping just below the safety budget.
                    let new_old = (old + quantum).min(budget * 0.999);
                    if new_old > old {
                        old = new_old;
                        // Eden shrinks as Old grows; recompute from the
                        // implied NewRatio.
                        let young = m_h - old;
                        let sr = 8.0;
                        eden = young * ((sr - 2.0) / sr);
                        true
                    } else {
                        false
                    }
                }
            };

            trace.push(ArbitratorStep {
                action,
                applied,
                p,
                cache,
                old,
            });

            if applied {
                stalled_rounds = 0;
            } else {
                stalled_rounds += 1;
                if stalled_rounds >= 3 {
                    return Err(ArbitratorError::Stuck);
                }
            }
        }

        // Line 11: shuffle memory bounded by half of Eden per task.
        let shuffle_per_task = cfg.shuffle_per_task.min(eden * 0.5 / p as f64);

        // Line 13: utility score.
        let utility = (m_i + cache + (m_u + shuffle_per_task) * p as f64) / m_h;

        // Translate to the canonical configuration. The realized Old must
        // cover the final demand with the δ margin (rounding NewRatio *up*
        // so it is never smaller than the arbitrated Old — rounding down
        // would silently break the safety invariant).
        let final_demand = m_i + cache + m_u * p as f64;
        let (fitted_old, _) = fit_old(m_h, final_demand, self.delta);
        let old = old.max(fitted_old).min(budget);
        let new_ratio = (old / (m_h - old).max(Mem::mb(1.0))).ceil().clamp(1.0, 9.0) as u32;
        let config = MemoryConfig {
            containers_per_node: cfg.containers_per_node,
            heap: m_h,
            task_concurrency: p,
            cache_fraction: (cache / m_h).clamp(0.0, 1.0 - self.delta),
            shuffle_fraction: (shuffle_per_task * p as f64 / m_h).clamp(0.0, 1.0 - self.delta),
            new_ratio,
            survivor_ratio: 8,
        };

        Ok(ArbitratorOutcome {
            config,
            utility,
            trace,
            shuffle_per_task,
        })
    }
}

/// Sizes the Old generation to hold `demand` plus the safety fraction δ,
/// clamped to `NewRatio ∈ [1, 9]`. Returns `(old, eden)` using the paper's
/// Equation-3 pool formulas.
fn fit_old(m_h: Mem, demand: Mem, delta: f64) -> (Mem, Mem) {
    let target = (demand / (1.0 - delta)).min(m_h * 0.9);
    let rest = (m_h - target).clamp_non_negative().max(Mem::mb(1.0));
    let nr = (target / rest).ceil().clamp(1.0, 9.0);
    let old = m_h * (nr / (nr + 1.0));
    let eden = m_h * (1.0 / (nr + 1.0)) * (6.0 / 8.0);
    (old, eden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_profile::DerivedStats;

    fn pagerank_stats() -> DerivedStats {
        DerivedStats {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            cpu_avg: 35.0,
            disk_avg: 2.0,
            m_i: Mem::mb(115.0),
            m_c: Mem::mb(2300.0),
            m_s: Mem::ZERO,
            m_u: Mem::mb(770.0),
            p: 2,
            h: 0.3,
            s: 0.0,
            m_u_from_full_gc: true,
        }
    }

    fn arbitrated(heap_mb: f64, n: u32, max_p: u32) -> ArbitratorOutcome {
        let init = Initializer::new(pagerank_stats(), 0.1);
        let cfg = init.initialize(n, Mem::mb(heap_mb), max_p);
        Arbitrator::new(0.1)
            .arbitrate(&init, &cfg)
            .expect("feasible")
    }

    #[test]
    fn pagerank_walkthrough_terminates_safely() {
        // Figure 13: starting from (p=5, m_c≈3.9GB, NR=9) the arbitrator
        // lowers concurrency and cache until the Old generation covers the
        // long-lived plus task memory.
        let out = arbitrated(4404.0, 1, 8);
        let stats = pagerank_stats();
        let old = out.config.old_capacity();
        let demand = stats.m_i
            + out.config.task_concurrency as f64 * stats.m_u
            + out.config.heap * out.config.cache_fraction;
        assert!(
            demand <= old * 1.001,
            "safety invariant violated: {demand} > {old}"
        );
        assert!(!out.trace.is_empty(), "expected arbitration steps");
        // The paper's walkthrough ends at p = 2; ours must at least reduce
        // the initializer's p = 5.
        assert!(out.config.task_concurrency < 5);
        assert!(out.config.task_concurrency >= 1);
    }

    #[test]
    fn utility_is_a_heap_fraction() {
        let out = arbitrated(4404.0, 1, 8);
        assert!(
            out.utility > 0.0 && out.utility <= 1.0,
            "U = {}",
            out.utility
        );
    }

    #[test]
    fn insufficient_memory_is_flagged() {
        let mut stats = pagerank_stats();
        stats.m_u = Mem::mb(1200.0);
        let init = Initializer::new(stats, 0.1);
        let cfg = init.initialize(4, Mem::mb(1101.0), 2);
        let err = Arbitrator::new(0.1).arbitrate(&init, &cfg).unwrap_err();
        assert_eq!(err, ArbitratorError::InsufficientMemory);
    }

    #[test]
    fn no_cache_apps_need_no_cache_shrinks() {
        let mut stats = pagerank_stats();
        stats.m_c = Mem::ZERO;
        stats.m_s = Mem::mb(400.0);
        stats.s = 0.6;
        stats.m_u = Mem::mb(150.0);
        let init = Initializer::new(stats, 0.1);
        let cfg = init.initialize(1, Mem::mb(4404.0), 8);
        let out = Arbitrator::new(0.1)
            .arbitrate(&init, &cfg)
            .expect("feasible");
        assert_eq!(out.config.cache_fraction, 0.0);
        assert!(out.config.shuffle_fraction > 0.0);
    }

    #[test]
    fn shuffle_capped_at_half_eden_per_task() {
        let mut stats = pagerank_stats();
        stats.m_c = Mem::ZERO;
        stats.m_s = Mem::mb(3000.0);
        stats.m_u = Mem::mb(150.0);
        let init = Initializer::new(stats, 0.1);
        let cfg = init.initialize(1, Mem::mb(4404.0), 8);
        let out = Arbitrator::new(0.1)
            .arbitrate(&init, &cfg)
            .expect("feasible");
        let eden = out.config.heap * (1.0 / (out.config.new_ratio as f64 + 1.0)) * (6.0 / 8.0);
        assert!(
            out.shuffle_per_task <= eden * 0.5 / out.config.task_concurrency as f64 * 1.001,
            "Observation 7 bound violated"
        );
    }

    #[test]
    fn trace_reports_round_robin_order() {
        let out = arbitrated(4404.0, 1, 8);
        let actions: Vec<ArbitratorAction> = out.trace.iter().map(|s| s.action).collect();
        for (i, a) in actions.iter().enumerate() {
            let expected = match i % 3 {
                0 => ArbitratorAction::DecreaseConcurrency,
                1 => ArbitratorAction::ShrinkCache,
                _ => ArbitratorAction::GrowOld,
            };
            assert_eq!(*a, expected);
        }
    }

    #[test]
    fn smaller_containers_get_lower_concurrency_or_cache() {
        let big = arbitrated(4404.0, 1, 8);
        let small = arbitrated(2202.0, 2, 4);
        assert!(small.config.task_concurrency <= big.config.task_concurrency);
        assert!(
            small.config.cache_capacity() < big.config.cache_capacity(),
            "absolute cache must shrink with the container"
        );
    }

    #[test]
    fn containers_too_small_to_cache_are_infeasible() {
        // PageRank's 770 MB per-task memory leaves a 1101 MB container no
        // room to cache even one M_u-sized chunk: the m_c > 0 guard of
        // action II (Algorithm 1, line 7) makes the candidate infeasible,
        // which is how the Enumerator rules out 4-containers-per-node.
        let init = Initializer::new(pagerank_stats(), 0.1);
        let cfg = init.initialize(4, Mem::mb(1101.0), 2);
        assert!(Arbitrator::new(0.1).arbitrate(&init, &cfg).is_err());
    }
}
