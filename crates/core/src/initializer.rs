//! The Initializer (§4.2): per-pool initial settings from the profiled
//! statistics, Equations 1–4 of the paper.

use relm_common::Mem;
use relm_profile::DerivedStats;
use serde::{Deserialize, Serialize};

/// The pool assignment the Initializer produces for one candidate container
/// size, before arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InitialConfig {
    /// Containers per node of the candidate.
    pub containers_per_node: u32,
    /// Heap size of the candidate (`m_h`).
    pub heap: Mem,
    /// Cache Storage assignment (`m_c`, Equation 1).
    pub cache: Mem,
    /// Per-task Task Shuffle assignment (`m_s`, Equation 2).
    pub shuffle_per_task: Mem,
    /// `NewRatio` (Equation 3).
    pub new_ratio: u32,
    /// Old generation size implied by `NewRatio` (`m_o`).
    pub old: Mem,
    /// Eden size (Equation 3, using the paper's `(SR−2)/SR` approximation).
    pub eden: Mem,
    /// Task Concurrency (`p`, Equation 4).
    pub task_concurrency: u32,
}

/// The Initializer: holds the profiled statistics and the safety fraction δ.
#[derive(Debug, Clone, Copy)]
pub struct Initializer {
    stats: DerivedStats,
    delta: f64,
    survivor_ratio: u32,
    /// Upper bound on `NewRatio` (§6.1 caps it at 9 so at least 10% of heap
    /// stays in the young generation).
    max_new_ratio: u32,
}

impl Initializer {
    /// Creates an initializer with safety fraction `delta`.
    pub fn new(stats: DerivedStats, delta: f64) -> Self {
        Initializer {
            stats,
            delta,
            survivor_ratio: 8,
            max_new_ratio: 9,
        }
    }

    /// The statistics in use.
    pub fn stats(&self) -> &DerivedStats {
        &self.stats
    }

    /// The safety fraction δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Equation 1: Cache Storage requirement, scaling the observed maximum
    /// cache usage by the hit ratio.
    pub fn cache(&self, m_h: Mem) -> Mem {
        let s = &self.stats;
        if s.m_c.is_zero() {
            return Mem::ZERO;
        }
        let h = s.h.max(1e-6);
        let needed_fraction = s.m_c.as_mb() / (h * s.heap.as_mb());
        m_h * needed_fraction.min(1.0 - self.delta)
    }

    /// Equation 2: per-task Task Shuffle requirement, scaling the observed
    /// shuffle usage by the spillage fraction.
    pub fn shuffle_per_task(&self, m_h: Mem) -> Mem {
        let s = &self.stats;
        if s.m_s.is_zero() && s.s == 0.0 {
            return Mem::ZERO;
        }
        let denom = (1.0 - s.s / s.p.max(1) as f64).max(0.05);
        (s.m_s / denom).min(m_h * (1.0 - self.delta))
    }

    /// Equation 3: `NewRatio` sized so Old just fits the long-lived pools,
    /// clamped to `[1, max_new_ratio]`; returns `(NR, m_o, m_e)`.
    pub fn gc_settings(&self, m_h: Mem, m_c: Mem) -> (u32, Mem, Mem) {
        let long_lived = self.stats.m_i + m_c;
        let rest = (m_h - long_lived).clamp_non_negative();
        let nr = if rest.is_zero() {
            self.max_new_ratio
        } else {
            (long_lived / rest).ceil().max(1.0) as u32
        }
        .clamp(1, self.max_new_ratio);
        let (m_o, m_e) = self.pools_for(m_h, nr);
        (nr, m_o, m_e)
    }

    /// Old and Eden sizes for a given `NewRatio` (Equation 3's formulas).
    pub fn pools_for(&self, m_h: Mem, nr: u32) -> (Mem, Mem) {
        let nr_f = nr as f64;
        let sr = self.survivor_ratio as f64;
        let m_o = m_h * (nr_f / (nr_f + 1.0));
        let m_e = m_h * (1.0 / (nr_f + 1.0)) * ((sr - 2.0) / sr);
        (m_o, m_e)
    }

    /// Equation 4: Task Concurrency bounded by the CPU, disk, and memory
    /// headroom, assuming linear scaling in each resource.
    pub fn task_concurrency(&self, n: u32, m_h: Mem, max_p: u32) -> u32 {
        let s = &self.stats;
        let budget = (1.0 - self.delta) * 100.0;
        let p_prof = s.p.max(1) as f64;
        let per_task_cpu = (s.cpu_avg / p_prof).max(1e-6);
        let per_task_disk = (s.disk_avg / p_prof).max(1e-6);
        let p_cpu = budget / per_task_cpu / n as f64;
        let p_disk = budget / per_task_disk / n as f64;
        let p_mem = if s.m_u.is_zero() {
            f64::INFINITY
        } else {
            ((1.0 - self.delta) * m_h.as_mb()) / s.m_u.as_mb()
        };
        let p = p_cpu.min(p_disk).min(p_mem).floor();
        (p.max(1.0) as u32).min(max_p.max(1))
    }

    /// Runs all four equations for one candidate container size.
    pub fn initialize(&self, n: u32, m_h: Mem, max_p: u32) -> InitialConfig {
        let cache = self.cache(m_h);
        let shuffle_per_task = self.shuffle_per_task(m_h);
        let (new_ratio, old, eden) = self.gc_settings(m_h, cache);
        let task_concurrency = self.task_concurrency(n, m_h, max_p);
        InitialConfig {
            containers_per_node: n,
            heap: m_h,
            cache,
            shuffle_per_task,
            new_ratio,
            old,
            eden,
            task_concurrency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PageRank example column of Table 6.
    fn pagerank_stats() -> DerivedStats {
        DerivedStats {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            cpu_avg: 35.0,
            disk_avg: 2.0,
            m_i: Mem::mb(115.0),
            m_c: Mem::mb(2300.0),
            m_s: Mem::ZERO,
            m_u: Mem::mb(770.0),
            p: 2,
            h: 0.3,
            s: 0.0,
            m_u_from_full_gc: true,
        }
    }

    #[test]
    fn pagerank_example_matches_equation_5() {
        // §4.2's example: n = 1, m_h = 4404 MB, δ = 0.1 gives
        // m_s = 0, p = 5, NR = 9 (m_c ≈ 3.8–4.0 GB).
        let init = Initializer::new(pagerank_stats(), 0.1);
        let cfg = init.initialize(1, Mem::mb(4404.0), 8);
        assert_eq!(cfg.task_concurrency, 5, "Equation 4 should give p = 5");
        assert_eq!(cfg.new_ratio, 9, "Equation 3 should cap NR at 9");
        assert_eq!(cfg.shuffle_per_task, Mem::ZERO);
        assert!(
            cfg.cache.as_mb() > 3700.0 && cfg.cache.as_mb() < 4000.0,
            "Equation 1 should give ~3.8 GB, got {}",
            cfg.cache
        );
    }

    #[test]
    fn cache_scales_with_hit_ratio() {
        let mut stats = pagerank_stats();
        let init = Initializer::new(stats, 0.1);
        let tight = init.cache(Mem::mb(4404.0));
        stats.h = 1.0; // everything already fits: requirement is just M_c
        let relaxed = Initializer::new(stats, 0.1).cache(Mem::mb(4404.0));
        assert!(relaxed < tight);
        assert!((relaxed.as_mb() - 2300.0).abs() < 1.0);
    }

    #[test]
    fn shuffle_scales_with_spillage() {
        let mut stats = pagerank_stats();
        stats.m_s = Mem::mb(200.0);
        stats.s = 0.5;
        stats.p = 2;
        let init = Initializer::new(stats, 0.1);
        // m_s / (1 - S/P) = 200 / (1 - 0.25) = 266.7
        let m_s = init.shuffle_per_task(Mem::mb(4404.0));
        assert!((m_s.as_mb() - 266.67).abs() < 0.1);
    }

    #[test]
    fn new_ratio_grows_with_long_lived_demand() {
        let init = Initializer::new(pagerank_stats(), 0.1);
        let (nr_small, _, _) = init.gc_settings(Mem::mb(4404.0), Mem::mb(1000.0));
        let (nr_big, _, _) = init.gc_settings(Mem::mb(4404.0), Mem::mb(3000.0));
        assert!(nr_big > nr_small);
        // Old must cover the long-lived set when NR is not clamped.
        let (_, m_o, _) = init.gc_settings(Mem::mb(4404.0), Mem::mb(1000.0));
        assert!(m_o >= Mem::mb(1115.0));
    }

    #[test]
    fn eden_uses_paper_formula() {
        let init = Initializer::new(pagerank_stats(), 0.1);
        let (m_o, m_e) = init.pools_for(Mem::mb(4404.0), 2);
        assert!((m_o.as_mb() - 2936.0).abs() < 0.1);
        // m_e = 4404 * (1/3) * (6/8) = 1101.
        assert!((m_e.as_mb() - 1101.0).abs() < 0.1);
    }

    #[test]
    fn concurrency_clamps_to_cores() {
        let mut stats = pagerank_stats();
        stats.cpu_avg = 1.0;
        stats.disk_avg = 0.1;
        stats.m_u = Mem::mb(10.0);
        let init = Initializer::new(stats, 0.1);
        assert_eq!(init.task_concurrency(1, Mem::mb(4404.0), 8), 8);
        assert_eq!(init.task_concurrency(4, Mem::mb(1101.0), 2), 2);
    }

    #[test]
    fn concurrency_limited_by_memory() {
        let mut stats = pagerank_stats();
        stats.m_u = Mem::mb(2000.0);
        let init = Initializer::new(stats, 0.1);
        // 0.9 * 4404 / 2000 = 1.98 → p = 1.
        assert_eq!(init.task_concurrency(1, Mem::mb(4404.0), 8), 1);
    }

    #[test]
    fn zero_stats_are_safe() {
        let mut stats = pagerank_stats();
        stats.m_c = Mem::ZERO;
        stats.m_s = Mem::ZERO;
        stats.m_u = Mem::ZERO;
        let init = Initializer::new(stats, 0.1);
        let cfg = init.initialize(1, Mem::mb(4404.0), 8);
        assert_eq!(cfg.cache, Mem::ZERO);
        assert_eq!(cfg.shuffle_per_task, Mem::ZERO);
        assert!(cfg.task_concurrency >= 1);
    }
}
