//! # relm-core
//!
//! RelM — the paper's white-box memory tuner (§4). RelM recommends a setup
//! of all memory pools from a *single* profiled application run:
//!
//! 1. The **Statistics Generator** (in `relm-profile`) turns the profile
//!    into the Table-6 statistics.
//! 2. The **Initializer** (§4.2) sets initial pool sizes for each candidate
//!    container size, optimizing each pool independently (Equations 1–4).
//! 3. The **Arbitrator** (§4.3, Algorithm 1) resolves contention between
//!    pools with a round-robin of three actions (drop concurrency, shrink
//!    cache, grow Old) until the long-lived and task memory fit within Old,
//!    then sizes the shuffle pool against Eden and scores the configuration
//!    with a utility `U` (the fraction of heap productively allocated).
//! 4. The **Selector** ranks the per-container-size candidates by `U`.
//!
//! The crate also hosts **model Q** (Equation 8) — the three white-box
//! metrics (expected heap occupancy, long-term memory efficiency, shuffle
//! memory efficiency) that Guided Bayesian Optimization and the DDPG state
//! vector plug in.

pub mod arbitrator;
pub mod initializer;
pub mod qmodel;
pub mod tuner;

pub use arbitrator::{Arbitrator, ArbitratorAction, ArbitratorOutcome, ArbitratorStep};
pub use initializer::{InitialConfig, Initializer};
pub use qmodel::QModel;
pub use tuner::{RelmCandidate, RelmTuner};

/// The default safety fraction δ (§6.1: "set to 0.1 throughout").
pub const DEFAULT_SAFETY: f64 = 0.1;
