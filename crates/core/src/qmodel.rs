//! Model Q (Equation 8): three white-box metrics derived from a candidate
//! configuration and the profiled statistics. Guided Bayesian Optimization
//! feeds them to its surrogate as extra features; the DDPG agent includes
//! them in its state vector.

use crate::initializer::Initializer;
use relm_common::{Mem, MemoryConfig};
use relm_profile::DerivedStats;

/// Model Q.
#[derive(Debug, Clone, Copy)]
pub struct QModel {
    init: Initializer,
}

impl QModel {
    /// Builds the model from profiled statistics (δ only affects the
    /// requirement models of Equations 1–2).
    pub fn new(stats: DerivedStats, delta: f64) -> Self {
        QModel {
            init: Initializer::new(stats, delta),
        }
    }

    /// The underlying statistics.
    pub fn stats(&self) -> &DerivedStats {
        self.init.stats()
    }

    /// Evaluates `q = (q1, q2, q3)` for a candidate configuration.
    ///
    /// * `q1` — expected heap occupancy: sums the expected usage of every
    ///   application-level pool against the candidate heap. Low values flag
    ///   under-utilization; values over 1 flag unsafe configurations.
    /// * `q2` — long-term memory efficiency: the long-lived requirement over
    ///   the available long-lived storage (the smaller of Old and the cache
    ///   pool). High values mean disk overheads (data does not fit in
    ///   memory) or GC overheads (data does not fit in Old — Observation 5).
    /// * `q3` — shuffle memory efficiency: live shuffle memory against half
    ///   of Eden (Observation 7). High values mean large-spill GC overheads.
    pub fn q(&self, config: &MemoryConfig) -> [f64; 3] {
        let mut out = [0.0; 3];
        self.q_into(config, &mut out);
        out
    }

    /// Evaluates `q` into a caller-owned buffer — the form the surrogate
    /// feature-assembly hot path uses (one `q` evaluation per acquisition
    /// candidate), keeping the inner loop free of intermediate copies.
    pub fn q_into(&self, config: &MemoryConfig, out: &mut [f64; 3]) {
        let s = *self.init.stats();
        let m_h = config.heap;
        let p = config.task_concurrency.max(1) as f64;

        // Modeled requirements at this heap size (Equations 1–2).
        let req_cache = self.init.cache(m_h);
        let req_shuffle = self.init.shuffle_per_task(m_h);

        // Configured pools.
        let cfg_cache = config.cache_capacity();
        let cfg_shuffle_per_task = config.shuffle_capacity() / p;
        let m_o = config.old_capacity();
        // Paper Equation 3 approximation for Eden.
        let sr = config.survivor_ratio.max(3) as f64;
        let m_e = m_h * (1.0 / (config.new_ratio as f64 + 1.0)) * ((sr - 2.0) / sr);

        let q1 = (s.m_i
            + cfg_cache.min(req_cache)
            + (s.m_u + cfg_shuffle_per_task.min(req_shuffle)) * p)
            / m_h;

        let long_term_store = m_o.min(cfg_cache + s.m_i);
        let q2 = if req_cache.is_zero() {
            // No cache requirement: long-term efficiency reduces to code
            // overhead against Old, which is always comfortable.
            (s.m_i / m_o).min(1.0)
        } else {
            (s.m_i + req_cache) / long_term_store.max(Mem::mb(1.0))
        };

        let q3 = if req_shuffle.is_zero() {
            0.0
        } else {
            (cfg_shuffle_per_task.min(req_shuffle) * p) / (m_e * 0.5).max(Mem::mb(1.0))
        };

        *out = [q1, q2, q3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> DerivedStats {
        DerivedStats {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            cpu_avg: 35.0,
            disk_avg: 2.0,
            m_i: Mem::mb(115.0),
            m_c: Mem::mb(2300.0),
            m_s: Mem::mb(200.0),
            m_u: Mem::mb(400.0),
            p: 2,
            h: 0.5,
            s: 0.2,
            m_u_from_full_gc: true,
        }
    }

    fn config(cache: f64, shuffle: f64, p: u32, nr: u32) -> MemoryConfig {
        MemoryConfig {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            task_concurrency: p,
            cache_fraction: cache,
            shuffle_fraction: shuffle,
            new_ratio: nr,
            survivor_ratio: 8,
        }
    }

    #[test]
    fn q1_flags_unsafe_and_underutilized() {
        let q = QModel::new(stats(), 0.1);
        let packed = q.q(&config(0.8, 0.1, 8, 2));
        let sparse = q.q(&config(0.1, 0.05, 1, 2));
        assert!(
            packed[0] > 1.0,
            "q1 of an over-packed config must exceed 1, got {}",
            packed[0]
        );
        assert!(
            sparse[0] < 0.5,
            "q1 of an under-utilizing config must be small"
        );
    }

    #[test]
    fn q2_detects_old_too_small() {
        let q = QModel::new(stats(), 0.1);
        // Large cache with NR = 1: Old (2202) smaller than the cache pool.
        let bad = q.q(&config(0.7, 0.0, 2, 1));
        let good = q.q(&config(0.7, 0.0, 2, 7));
        assert!(
            bad[1] > good[1],
            "q2 must penalize Old < cache: {} vs {}",
            bad[1],
            good[1]
        );
    }

    #[test]
    fn q3_detects_shuffle_outgrowing_eden() {
        let q = QModel::new(stats(), 0.1);
        // High NewRatio shrinks Eden; a large shuffle pool then exceeds
        // half-Eden.
        let bad = q.q(&config(0.1, 0.5, 4, 9));
        let good = q.q(&config(0.1, 0.1, 2, 1));
        assert!(
            bad[2] > 1.0,
            "q3 must exceed 1 when shuffle outgrows Eden/2, got {}",
            bad[2]
        );
        assert!(good[2] < bad[2]);
    }

    #[test]
    fn q_into_matches_q_bitwise() {
        let q = QModel::new(stats(), 0.1);
        for (cache, shuffle, p, nr) in [(0.2, 0.1, 2, 2), (0.7, 0.0, 8, 1), (0.0, 0.6, 4, 9)] {
            let c = config(cache, shuffle, p, nr);
            let arr = q.q(&c);
            let mut buf = [f64::NAN; 3];
            q.q_into(&c, &mut buf);
            for (a, b) in arr.iter().zip(&buf) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn q_is_finite_everywhere() {
        let q = QModel::new(stats(), 0.1);
        for cache in [0.0, 0.2, 0.8] {
            for shuffle in [0.0, 0.1, 0.6] {
                if cache + shuffle > 1.0 {
                    continue;
                }
                for p in [1, 4, 8] {
                    for nr in [1, 5, 9] {
                        let v = q.q(&config(cache, shuffle, p, nr));
                        assert!(
                            v.iter().all(|x| x.is_finite()),
                            "non-finite q at {cache},{shuffle},{p},{nr}"
                        );
                    }
                }
            }
        }
    }
}
