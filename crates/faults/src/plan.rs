//! The seeded fault plan: rates plus a deterministic site-addressed
//! injector.

use relm_common::Rng;
use serde::{Deserialize, Serialize};

/// A fault the plan injects into one wave attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedFault {
    /// Kill one container (a transient infrastructure hiccup: preemption,
    /// an operator restart, a kernel OOM-killer race).
    ContainerKill,
    /// Lose a whole node: every container on it dies at once.
    NodeLoss,
}

/// Injection rates. All probabilities are per decision site; a rate of 0
/// disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a container is killed during one wave attempt.
    pub container_kill_rate: f64,
    /// Probability that a node is lost during one wave attempt.
    pub node_loss_rate: f64,
    /// Probability that a container straggles during one wave attempt.
    pub straggler_rate: f64,
    /// Wall-time multiplier applied to a straggling container's wave
    /// (≥ 1.0).
    pub straggler_slowdown: f64,
    /// Probability that a run's collected profile comes back degraded
    /// (monitoring gaps, clock skew, lost samples).
    pub profile_corruption_rate: f64,
    /// Relative noise applied to a corrupted profile's summary statistics.
    pub profile_noise: f64,
}

impl FaultConfig {
    /// No faults at all.
    pub fn off() -> Self {
        FaultConfig {
            container_kill_rate: 0.0,
            node_loss_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
            profile_corruption_rate: 0.0,
            profile_noise: 0.0,
        }
    }

    /// A balanced mix scaled by one headline `rate` — the knob the
    /// fault-rate sweep turns. Container kills fire at the full rate,
    /// node loss at a quarter of it (nodes fail less often than
    /// containers), stragglers at half, and profile corruption at half.
    pub fn uniform(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultConfig {
            container_kill_rate: rate,
            node_loss_rate: rate * 0.25,
            straggler_rate: rate * 0.5,
            straggler_slowdown: 2.5,
            profile_corruption_rate: rate * 0.5,
            profile_noise: 0.25,
        }
    }

    /// True when every rate is zero — the plan will never inject.
    pub fn is_off(&self) -> bool {
        self.container_kill_rate == 0.0
            && self.node_loss_rate == 0.0
            && self.straggler_rate == 0.0
            && self.profile_corruption_rate == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

/// Site tags keep the per-site random streams decorrelated: two different
/// fault classes drawing at the same `(run, stage, wave, container,
/// attempt)` coordinates see independent uniforms.
#[derive(Clone, Copy)]
enum Site {
    ContainerKill = 1,
    NodeLoss = 2,
    Straggler = 3,
    Profile = 4,
}

/// A fully deterministic fault plan. Every decision is a pure function of
/// `(plan seed, site)`, so two engines holding equal plans inject exactly
/// the same faults regardless of evaluation order, thread, or platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
}

// Site addressing uses FNV-1a from `relm_common::hash` — the same
// construction the engine uses for sticky data skew and the evaluation
// cache uses for content addressing, chosen for cross-platform stability.
use relm_common::hash::{fnv1a64_parts as site_hash, fnv1a64_str as str_hash};

impl FaultPlan {
    /// Creates a plan from a seed and rates.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultPlan { seed, config }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when this plan never injects anything.
    pub fn is_off(&self) -> bool {
        self.config.is_off()
    }

    fn site_rng(&self, site: Site, run_seed: u64, stage: &str, coords: &[u64]) -> Rng {
        let mut parts = vec![self.seed, site as u64, run_seed, str_hash(stage)];
        parts.extend_from_slice(coords);
        Rng::new(site_hash(&parts))
    }

    /// Does this wave attempt kill `container`? Transient: a retry of the
    /// same wave draws a new attempt coordinate and usually survives.
    pub fn container_kill(
        &self,
        run_seed: u64,
        stage: &str,
        wave: u32,
        container: usize,
        attempt: u32,
    ) -> Option<InjectedFault> {
        if self.config.container_kill_rate <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng(
            Site::ContainerKill,
            run_seed,
            stage,
            &[wave as u64, container as u64, attempt as u64],
        );
        rng.chance(self.config.container_kill_rate)
            .then_some(InjectedFault::ContainerKill)
    }

    /// Does this wave attempt lose a node? Returns the victim node index
    /// in `[0, nodes)`.
    pub fn node_loss(
        &self,
        run_seed: u64,
        stage: &str,
        wave: u32,
        attempt: u32,
        nodes: u32,
    ) -> Option<u32> {
        if self.config.node_loss_rate <= 0.0 || nodes == 0 {
            return None;
        }
        let mut rng = self.site_rng(
            Site::NodeLoss,
            run_seed,
            stage,
            &[wave as u64, attempt as u64],
        );
        rng.chance(self.config.node_loss_rate)
            .then(|| rng.below(nodes as usize) as u32)
    }

    /// Does `container` straggle during this wave attempt? Returns the
    /// slowdown multiplier (≥ 1.0).
    pub fn straggler(
        &self,
        run_seed: u64,
        stage: &str,
        wave: u32,
        container: usize,
        attempt: u32,
    ) -> Option<f64> {
        if self.config.straggler_rate <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng(
            Site::Straggler,
            run_seed,
            stage,
            &[wave as u64, container as u64, attempt as u64],
        );
        if !rng.chance(self.config.straggler_rate) {
            return None;
        }
        // Spread the slowdown in [1 + (s-1)/2, 1 + 3(s-1)/2]: some
        // stragglers limp, some crawl.
        let base = self.config.straggler_slowdown.max(1.0) - 1.0;
        Some(1.0 + base * rng.uniform_in(0.5, 1.5))
    }

    /// Is this run's profile corrupted? Returns a noise generator for the
    /// corruption, seeded per run.
    pub fn profile_corruption(&self, run_seed: u64) -> Option<ProfileNoise> {
        if self.config.profile_corruption_rate <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng(Site::Profile, run_seed, "", &[]);
        rng.chance(self.config.profile_corruption_rate)
            .then_some(ProfileNoise {
                rng,
                relative: self.config.profile_noise,
            })
    }
}

/// Deterministic noise source for one corrupted profile.
#[derive(Debug)]
pub struct ProfileNoise {
    rng: Rng,
    relative: f64,
}

impl ProfileNoise {
    /// The next multiplicative noise factor, centred at 1.0 and clamped
    /// away from zero.
    pub fn factor(&mut self) -> f64 {
        self.rng.noise_factor(self.relative)
    }

    /// A deterministic biased coin, for dropping individual samples
    /// (monitoring gaps lose events, not just precision).
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(42, FaultConfig::uniform(rate))
    }

    #[test]
    fn off_plan_never_injects() {
        let p = FaultPlan::new(1, FaultConfig::off());
        assert!(p.is_off());
        for wave in 0..50 {
            assert!(p.container_kill(9, "map", wave, 3, 0).is_none());
            assert!(p.node_loss(9, "map", wave, 0, 8).is_none());
            assert!(p.straggler(9, "map", wave, 3, 0).is_none());
        }
        assert!(p.profile_corruption(9).is_none());
    }

    #[test]
    fn decisions_are_deterministic_per_site() {
        let a = plan(0.3);
        let b = plan(0.3);
        for wave in 0..100 {
            for container in 0..4 {
                assert_eq!(
                    a.container_kill(7, "shuffle", wave, container, 1),
                    b.container_kill(7, "shuffle", wave, container, 1)
                );
                assert_eq!(
                    a.straggler(7, "shuffle", wave, container, 1),
                    b.straggler(7, "shuffle", wave, container, 1)
                );
            }
            assert_eq!(
                a.node_loss(7, "shuffle", wave, 2, 8),
                b.node_loss(7, "shuffle", wave, 2, 8)
            );
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::new(1, FaultConfig::uniform(0.3));
        let b = FaultPlan::new(2, FaultConfig::uniform(0.3));
        let hits = |p: &FaultPlan| -> usize {
            (0..200)
                .filter(|&w| p.container_kill(5, "map", w, 0, 0).is_some())
                .count()
        };
        // Same expected rate, different draw sites.
        let ha = hits(&a);
        let hb = hits(&b);
        assert!(ha > 0 && hb > 0);
        let same: usize = (0..200)
            .filter(|&w| {
                a.container_kill(5, "map", w, 0, 0).is_some()
                    == b.container_kill(5, "map", w, 0, 0).is_some()
            })
            .count();
        assert!(same < 200, "plans with different seeds must disagree");
    }

    #[test]
    fn retry_attempts_draw_independently() {
        // A kill on attempt 0 must not imply a kill on attempt 1 — that is
        // what makes injected kills *transient*.
        let p = plan(0.3);
        let differs = (0..200).any(|w| {
            p.container_kill(3, "map", w, 0, 0).is_some()
                != p.container_kill(3, "map", w, 0, 1).is_some()
        });
        assert!(differs);
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let p = FaultPlan::new(11, FaultConfig::uniform(0.2));
        let n = 5_000;
        let kills = (0..n)
            .filter(|&w| p.container_kill(1, "map", w, 0, 0).is_some())
            .count();
        let frac = kills as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.03, "kill rate {frac} far from 0.2");
    }

    #[test]
    fn straggler_slowdown_is_above_one() {
        let p = plan(0.9);
        let mut seen = 0;
        for w in 0..100 {
            if let Some(s) = p.straggler(2, "map", w, 1, 0) {
                assert!(s > 1.0, "slowdown {s} must exceed 1.0");
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn node_loss_victim_is_in_range() {
        let p = FaultPlan::new(3, FaultConfig::uniform(1.0));
        for w in 0..50 {
            if let Some(node) = p.node_loss(4, "map", w, 0, 8) {
                assert!(node < 8);
            }
        }
    }

    #[test]
    fn profile_noise_is_deterministic() {
        let mut config = FaultConfig::off();
        config.profile_corruption_rate = 1.0;
        config.profile_noise = 0.25;
        let p = FaultPlan::new(42, config);
        let mut a = p.profile_corruption(17).unwrap();
        let mut b = p.profile_corruption(17).unwrap();
        for _ in 0..16 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let p = plan(0.15);
        let text = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(p, back);
    }
}
