//! Worker-level fault sites for the distributed serving fleet.
//!
//! The fleet's failure matrix is three faults above the evaluation layer:
//! a worker process dying mid-evaluation, a worker's heartbeat getting
//! lost on the wire, and the result-delivery link dropping after the
//! evaluation finished. Like [`crate::FaultPlan`], every decision is a
//! pure function of `(plan seed, site)`, so a fleet run under a given
//! plan injects exactly the same worker failures regardless of thread
//! interleaving — which is what lets the kill tests diff histories
//! byte-for-byte against a no-fault local run.

use relm_common::Rng;
use serde::{Deserialize, Serialize};

/// Injection rates for worker-level faults. All probabilities are per
/// decision site; a rate of 0 disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerFaultConfig {
    /// Probability that the worker dies after acking an assignment but
    /// before delivering the result (process kill mid-evaluation).
    pub kill_rate: f64,
    /// Probability that one heartbeat is lost on the wire (the worker
    /// stays alive; the center just never sees that beat).
    pub heartbeat_loss_rate: f64,
    /// Probability that a finished evaluation's result is dropped on the
    /// delivery link (the worker computed it, the center never hears).
    pub link_drop_rate: f64,
}

impl WorkerFaultConfig {
    /// No worker faults at all.
    pub fn off() -> Self {
        WorkerFaultConfig {
            kill_rate: 0.0,
            heartbeat_loss_rate: 0.0,
            link_drop_rate: 0.0,
        }
    }

    /// True when every rate is zero — the plan will never inject.
    pub fn is_off(&self) -> bool {
        self.kill_rate == 0.0 && self.heartbeat_loss_rate == 0.0 && self.link_drop_rate == 0.0
    }
}

impl Default for WorkerFaultConfig {
    fn default() -> Self {
        WorkerFaultConfig::off()
    }
}

/// Site tags keep the per-site random streams decorrelated, mirroring
/// the engine-level `FaultPlan`'s construction. Tags start at 16 so the
/// two plans never collide even if they share a seed.
#[derive(Clone, Copy)]
enum Site {
    Kill = 16,
    HeartbeatLoss = 17,
    LinkDrop = 18,
}

/// A fully deterministic worker-fault plan. Decisions are addressed by
/// `(worker id, task id, attempt)` for kills and link drops, and by
/// `(worker id, heartbeat seq)` for heartbeat loss, so two fleet runs
/// holding equal plans fail at exactly the same points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerFaultPlan {
    seed: u64,
    config: WorkerFaultConfig,
}

use relm_common::hash::{fnv1a64_parts as site_hash, fnv1a64_str as str_hash};

impl WorkerFaultPlan {
    /// Creates a plan from a seed and rates.
    pub fn new(seed: u64, config: WorkerFaultConfig) -> Self {
        WorkerFaultPlan { seed, config }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rates.
    pub fn config(&self) -> &WorkerFaultConfig {
        &self.config
    }

    /// True when this plan never injects anything.
    pub fn is_off(&self) -> bool {
        self.config.is_off()
    }

    fn site_rng(&self, site: Site, worker: &str, coords: &[u64]) -> Rng {
        let mut parts = vec![self.seed, site as u64, str_hash(worker)];
        parts.extend_from_slice(coords);
        Rng::new(site_hash(&parts))
    }

    /// Does `worker` die while executing `(task, attempt)`? A killed
    /// worker stops heartbeating and never delivers the result; the
    /// monitor later declares it dead and the task is reassigned.
    pub fn worker_kill(&self, worker: &str, task: u64, attempt: u32) -> bool {
        if self.config.kill_rate <= 0.0 {
            return false;
        }
        let mut rng = self.site_rng(Site::Kill, worker, &[task, attempt as u64]);
        rng.chance(self.config.kill_rate)
    }

    /// Is `worker`'s heartbeat number `seq` lost on the wire? The worker
    /// keeps running; the center sees a gap in the sequence.
    pub fn heartbeat_loss(&self, worker: &str, seq: u64) -> bool {
        if self.config.heartbeat_loss_rate <= 0.0 {
            return false;
        }
        let mut rng = self.site_rng(Site::HeartbeatLoss, worker, &[seq]);
        rng.chance(self.config.heartbeat_loss_rate)
    }

    /// Is the result of `(task, attempt)` dropped on the delivery link?
    /// The worker paid for the evaluation but the center never hears;
    /// the retry delivers from the worker's local copy or the task is
    /// reassigned and replays from the shared cache.
    pub fn link_drop(&self, worker: &str, task: u64, attempt: u32) -> bool {
        if self.config.link_drop_rate <= 0.0 {
            return false;
        }
        let mut rng = self.site_rng(Site::LinkDrop, worker, &[task, attempt as u64]);
        rng.chance(self.config.link_drop_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(kill: f64, hb: f64, link: f64) -> WorkerFaultPlan {
        WorkerFaultPlan::new(
            77,
            WorkerFaultConfig {
                kill_rate: kill,
                heartbeat_loss_rate: hb,
                link_drop_rate: link,
            },
        )
    }

    #[test]
    fn off_plan_never_injects() {
        let p = WorkerFaultPlan::new(1, WorkerFaultConfig::off());
        assert!(p.is_off());
        for t in 0..100 {
            assert!(!p.worker_kill("w-0", t, 0));
            assert!(!p.heartbeat_loss("w-0", t));
            assert!(!p.link_drop("w-0", t, 0));
        }
    }

    #[test]
    fn decisions_are_deterministic_per_site() {
        let a = plan(0.3, 0.3, 0.3);
        let b = plan(0.3, 0.3, 0.3);
        for t in 0..200 {
            assert_eq!(a.worker_kill("w-1", t, 2), b.worker_kill("w-1", t, 2));
            assert_eq!(a.heartbeat_loss("w-1", t), b.heartbeat_loss("w-1", t));
            assert_eq!(a.link_drop("w-1", t, 2), b.link_drop("w-1", t, 2));
        }
    }

    #[test]
    fn sites_are_decorrelated_across_workers_and_attempts() {
        let p = plan(0.4, 0.0, 0.0);
        let differs_by_worker =
            (0..200).any(|t| p.worker_kill("w-0", t, 0) != p.worker_kill("w-1", t, 0));
        let differs_by_attempt =
            (0..200).any(|t| p.worker_kill("w-0", t, 0) != p.worker_kill("w-0", t, 1));
        assert!(differs_by_worker, "worker id must address the site");
        assert!(differs_by_attempt, "attempt must address the site");
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let p = plan(0.2, 0.0, 0.0);
        let n = 5_000;
        let kills = (0..n).filter(|&t| p.worker_kill("w-0", t, 0)).count();
        let frac = kills as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.03, "kill rate {frac} far from 0.2");
    }

    #[test]
    fn certain_kill_fires_everywhere() {
        let p = plan(1.0, 0.0, 0.0);
        for t in 0..50 {
            assert!(p.worker_kill("w-0", t, 0));
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let p = plan(0.1, 0.05, 0.02);
        let text = serde_json::to_string(&p).unwrap();
        let back: WorkerFaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(p, back);
    }
}
