//! # relm-faults
//!
//! Deterministic fault injection for the evaluation substrate.
//!
//! Online tuning is expensive precisely because the substrate it measures
//! on is hostile (§6.1, Figure 5): containers are OOM-killed after Spark's
//! `spark.task.maxFailures`, nodes disappear, stragglers stretch wave
//! times, and monitoring stacks hand back degraded profiles. This crate
//! models that hostility as a *seeded plan*: every injection decision is a
//! pure function of the plan seed and the injection site, so the same seed
//! and plan produce byte-identical histories — replayable, diffable, and
//! safe to use in regression tests.
//!
//! The two halves:
//!
//! * [`FaultPlan`] — the injector. The engine asks it at each decision
//!   site (container wave attempts, whole waves for node loss, the profile
//!   assembly step) whether a fault fires. Sites are addressed by
//!   `(run seed, stage, wave, container, attempt)`, so injections are
//!   independent of evaluation order and survive checkpoint/resume.
//! * [`AbortCause`] / [`AbortClass`] — the classification the retry layer
//!   uses: injected kills are *transient* (retry helps), node loss is
//!   *infrastructure* (retry on fresh containers helps), organic memory
//!   failures are *persistent* (the configuration is at fault; retrying
//!   burns stress time for nothing).
//!
//! ```
//! use relm_faults::{FaultConfig, FaultPlan};
//!
//! // A 20% uniform plan: every fault class fires at rate 0.2.
//! let plan = FaultPlan::new(7, FaultConfig::uniform(0.2));
//! assert!(!plan.is_off());
//!
//! // Decisions are pure functions of (plan seed, site): asking twice
//! // gives the same answer, and a sweep over many sites fires at
//! // roughly the configured rate.
//! let first = plan.container_kill(42, "map", 0, 3, 0);
//! assert_eq!(first, plan.container_kill(42, "map", 0, 3, 0));
//! let fired = (0..1000)
//!     .filter(|&c| plan.container_kill(42, "map", 0, c, 0).is_some())
//!     .count();
//! assert!((100..350).contains(&fired), "~20% of 1000 sites, got {fired}");
//! ```

mod cause;
mod plan;
mod worker;

pub use cause::{AbortCause, AbortClass};
pub use plan::{FaultConfig, FaultPlan, InjectedFault, ProfileNoise};
pub use worker::{WorkerFaultConfig, WorkerFaultPlan};
