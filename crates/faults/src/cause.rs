//! Abort-cause taxonomy shared by the engine, the resource manager, and
//! the tuning environment's retry layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an application run (or one evaluation attempt) aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortCause {
    /// A container JVM threw `OutOfMemoryError` and the wave exhausted its
    /// task retries.
    Oom,
    /// The resource manager killed containers over the physical-memory cap
    /// until the wave exhausted its task retries.
    RssKill,
    /// An injected transient container kill exhausted the task retries.
    InjectedKill,
    /// An injected node loss took out every container on a node.
    NodeLoss,
    /// The evaluation exceeded the environment's per-evaluation timeout
    /// (stragglers, runaway recovery loops).
    Timeout,
}

/// The retry layer's view of an abort: does retrying the evaluation have a
/// chance of succeeding?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortClass {
    /// Bad luck, not a bad configuration: a retry draws fresh noise and
    /// usually passes (injected kills, timeouts).
    Transient,
    /// The configuration itself cannot run the application (organic OOM or
    /// RSS kills); retrying burns stress time for nothing.
    Persistent,
    /// The platform failed underneath the application (node loss); a retry
    /// lands on replacement hardware.
    Infra,
}

impl AbortCause {
    /// Classifies the cause for the retry policy.
    pub fn class(self) -> AbortClass {
        match self {
            AbortCause::Oom | AbortCause::RssKill => AbortClass::Persistent,
            AbortCause::InjectedKill | AbortCause::Timeout => AbortClass::Transient,
            AbortCause::NodeLoss => AbortClass::Infra,
        }
    }

    /// Stable lower-case label used in telemetry fields and counters.
    pub fn as_str(self) -> &'static str {
        match self {
            AbortCause::Oom => "oom",
            AbortCause::RssKill => "rss_kill",
            AbortCause::InjectedKill => "injected_kill",
            AbortCause::NodeLoss => "node_loss",
            AbortCause::Timeout => "timeout",
        }
    }

    /// Every cause, in a stable order (for histograms and reports).
    pub const ALL: [AbortCause; 5] = [
        AbortCause::Oom,
        AbortCause::RssKill,
        AbortCause::InjectedKill,
        AbortCause::NodeLoss,
        AbortCause::Timeout,
    ];
}

impl AbortClass {
    /// Stable lower-case label used in telemetry counters.
    pub fn as_str(self) -> &'static str {
        match self {
            AbortClass::Transient => "transient",
            AbortClass::Persistent => "persistent",
            AbortClass::Infra => "infra",
        }
    }

    /// Every class, in a stable order.
    pub const ALL: [AbortClass; 3] = [
        AbortClass::Transient,
        AbortClass::Persistent,
        AbortClass::Infra,
    ];
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for AbortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_retry_semantics() {
        assert_eq!(AbortCause::Oom.class(), AbortClass::Persistent);
        assert_eq!(AbortCause::RssKill.class(), AbortClass::Persistent);
        assert_eq!(AbortCause::InjectedKill.class(), AbortClass::Transient);
        assert_eq!(AbortCause::Timeout.class(), AbortClass::Transient);
        assert_eq!(AbortCause::NodeLoss.class(), AbortClass::Infra);
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let labels: Vec<&str> = AbortCause::ALL.iter().map(|c| c.as_str()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(AbortCause::NodeLoss.to_string(), "node_loss");
        assert_eq!(AbortClass::Infra.to_string(), "infra");
    }

    #[test]
    fn causes_round_trip_through_json() {
        for cause in AbortCause::ALL {
            let text = serde_json::to_string(&cause).unwrap();
            let back: AbortCause = serde_json::from_str(&text).unwrap();
            assert_eq!(cause, back);
        }
        for class in AbortClass::ALL {
            let text = serde_json::to_string(&class).unwrap();
            let back: AbortClass = serde_json::from_str(&text).unwrap();
            assert_eq!(class, back);
        }
    }
}
