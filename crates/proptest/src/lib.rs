//! An offline subset of `proptest`: the `proptest!` macro, range strategies,
//! and `prop_assert*` assertions.
//!
//! Differences from upstream (acceptable for this workspace's tests):
//! sampling is plain uniform draws from a deterministic per-test RNG (the
//! seed is derived from the test's module path and name, so failures
//! reproduce exactly), and failing cases are reported but not *shrunk*.

pub mod array;

/// Items `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::array;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRunner,
    };
}

/// Runner configuration. Only `cases` is interpreted; the `..Default`
/// update syntax used by callers works because the struct is exhaustive.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility with the real crate; this stand-in
    /// does not shrink, so the value is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

/// A deterministic splitmix64 RNG — small, fast, and good enough for test
/// case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives one property: holds the RNG and the case budget.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with a seed derived from `name` (FNV-1a), so each
    /// test gets a distinct but reproducible stream.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            rng: TestRng::new(h),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for drawing case inputs.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy built from a closure (used by [`array::uniform4`] and
/// available to tests).
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_assert!` — in this subset, assertion failures panic immediately
/// (no shrinking), which is exactly what `assert!` does.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The `proptest!` block: expands each contained property into a plain
/// `#[test]` that loops over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __runner = $crate::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__runner.cases() {
                $(let $arg = $crate::Strategy::sample(&($strategy), __runner.rng());)*
                let __inputs = format!(
                    concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)*),
                    __case $(, $arg)*
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body
                ));
                if let Err(__panic) = __result {
                    eprintln!("proptest failure in {}: {}", stringify!($name), __inputs);
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..1.0, n in 3usize..12, s in 0u64..1_000) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..12).contains(&n));
            prop_assert!(s < 1_000);
        }

        #[test]
        fn uniform4_yields_arrays(a in crate::array::uniform4(0.0f64..1.0)) {
            prop_assert_eq!(a.len(), 4);
            prop_assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::new(ProptestConfig::default(), "x::y");
        let mut b = TestRunner::new(ProptestConfig::default(), "x::y");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        let mut c = TestRunner::new(ProptestConfig::default(), "x::z");
        assert_ne!(a.rng().next_u64(), c.rng().next_u64());
    }
}
