//! Array strategies mirroring `proptest::array`.

use crate::{Strategy, TestRng};

/// A strategy producing fixed-size arrays by sampling one element strategy
/// `N` times.
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.0.sample(rng))
    }
}

/// Four independent draws from `strategy`, as a `[T; 4]`.
pub fn uniform4<S: Strategy>(strategy: S) -> UniformArray<S, 4> {
    UniformArray(strategy)
}

/// Generic fixed-size variant, for completeness.
pub fn uniform<S: Strategy, const N: usize>(strategy: S) -> UniformArray<S, N> {
    UniformArray(strategy)
}
