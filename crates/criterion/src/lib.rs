//! An offline subset of `criterion`: the macro/entry-point surface the
//! workspace's benches compile against, backed by a simple wall-clock
//! harness (warmup, then a fixed measurement window; reports mean
//! iteration time). No plotting, statistics, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, created by [`criterion_main!`].
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warmup, self.measure);
        f(&mut b);
        b.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark labelled `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.warmup, self.criterion.measure);
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs a parameterised benchmark; the closure receives the input by
    /// reference, as in upstream criterion.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.warmup, self.criterion.measure);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (upstream flushes reports here; ours are streamed).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Bencher {
            warmup,
            measure,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine`, first warming up, then looping for the
    /// measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<40} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!(
            "{id:<40} {:>12} {:>10} iters",
            format_time(per_iter),
            self.iters
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export so user code written for upstream criterion's `black_box`
/// keeps working.
pub use std::hint::black_box;

/// Declares a benchmark group function, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(5));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iters > 0);
        assert!(b.elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("fit", "gp").id, "fit/gp");
    }
}
