//! # relm-jvm
//!
//! A generational-heap simulator modelling OpenJDK's ParallelGC policy at the
//! granularity the RelM paper's observations live at: pool sizing
//! (`NewRatio`, `SurvivorRatio`), young/full collections with stop-the-world
//! pauses, survivor aging and promotion, promotion failure when the tenured
//! working set exceeds the Old generation (Observation 5), full-GC storms when
//! shuffle buffers outgrow Eden (Observation 7), and reclamation of off-heap
//! native buffers that only happens when a GC runs (Observation 6 /
//! Figure 11's resident-set-size growth).
//!
//! The simulator is driven in *waves*: the dataflow engine (`relm-app`)
//! describes the allocation pressure a wave of concurrent tasks puts on one
//! container's JVM, and the simulator returns the number of collections, the
//! total stop-the-world pause, the heap/RSS peaks, and whether the heap was
//! exhausted.

pub mod layout;
pub mod sim;

pub use layout::{GcSettings, HeapLayout};
pub use sim::{GcCostModel, GcEvent, GcKind, JvmSim, WaveOutcome, WavePressure};
