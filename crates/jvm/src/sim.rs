//! The wave-level ParallelGC simulator.
//!
//! One [`JvmSim`] models the heap of a single container. The dataflow engine
//! drives it with one [`WavePressure`] per wave of concurrently running tasks
//! and reads back a [`WaveOutcome`]. The model tracks:
//!
//! * **Eden churn** — short-lived allocations trigger a young collection each
//!   time Eden fills.
//! * **Survivor aging and promotion** — a wave's live working set survives
//!   young collections (copy cost), overflows the survivor space when larger
//!   than it, and tenures to Old after `tenuring_threshold` collections.
//! * **Old-generation pressure** — tenured cache blocks plus promoted
//!   transients fill Old; a full collection runs whenever Old's capacity is
//!   exceeded. When the *stable* tenured set (code overhead + cache) alone
//!   exceeds Old, the JVM enters the *promotion failure* regime of
//!   Observation 5: every young collection degenerates into a full one.
//! * **Shuffle-buffer promotion** — when the live shuffle buffers exceed half
//!   of Eden, every spill's buffer survives a young collection mid-fill and is
//!   promoted, so each spill drags a share of full-GC work behind it
//!   (Observation 7).
//! * **Off-heap reclamation** — native byte buffers are only freed when a
//!   collection runs their cleaners, so infrequent GC lets the resident set
//!   size grow beyond the heap (Observation 6, Figure 11).

use crate::layout::{GcSettings, HeapLayout};
use relm_common::{Mem, Millis};
use serde::{Deserialize, Serialize};

/// Which collector ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcKind {
    /// Scavenge of the young generation only.
    Young,
    /// Collection and compaction of the entire heap.
    Full,
}

/// One garbage-collection event, as a JMX GC profiler would log it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcEvent {
    /// Simulated time at which the collection finished.
    pub time: Millis,
    /// Collector kind.
    pub kind: GcKind,
    /// Stop-the-world pause.
    pub pause: Millis,
    /// Heap occupancy immediately after the collection.
    pub heap_used_after: Mem,
    /// Old-generation occupancy immediately after the collection.
    pub old_used_after: Mem,
    /// Resident set size of the process at this instant.
    pub rss: Mem,
}

/// Cost constants of the pause/promotion model. The defaults are calibrated
/// to commodity hardware (copying throughput of a few GB/s, full collections
/// of multi-GB heaps taking on the order of a second).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcCostModel {
    /// Fixed cost of a young collection.
    pub young_base: Millis,
    /// Copy cost per MB of live young-generation data.
    pub young_ms_per_mb: f64,
    /// Fixed cost of a full collection.
    pub full_base: Millis,
    /// Scan/compact cost per MB of old-generation occupancy.
    pub full_ms_per_mb: f64,
    /// Extra multiplier applied to full collections triggered by promotion
    /// failure (a failed scavenge precedes the full collection).
    pub promotion_failure_penalty: f64,
    /// Fraction of outstanding off-heap buffers reclaimed by a young GC.
    pub young_offheap_reclaim: f64,
    /// Fraction of outstanding off-heap buffers reclaimed by a full GC.
    pub full_offheap_reclaim: f64,
    /// Constant native overhead of the JVM process (metaspace, code cache,
    /// thread stacks) contributing to RSS beyond the heap.
    pub native_overhead: Mem,
    /// Steady-state fraction of a wave's working set that remains live in the
    /// young generation after the working set has tenured.
    pub steady_young_live_frac: f64,
}

impl Default for GcCostModel {
    fn default() -> Self {
        GcCostModel {
            young_base: Millis::ms(6.0),
            young_ms_per_mb: 0.5,
            full_base: Millis::ms(60.0),
            full_ms_per_mb: 0.45,
            promotion_failure_penalty: 3.0,
            young_offheap_reclaim: 0.65,
            full_offheap_reclaim: 0.9,
            native_overhead: Mem::mb(220.0),
            steady_young_live_frac: 0.25,
        }
    }
}

/// Allocation pressure one wave of concurrent tasks puts on the container.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WavePressure {
    /// GC-free duration of the wave (task compute + I/O time).
    pub compute_time: Millis,
    /// Short-lived allocation volume (deserialization buffers, record
    /// objects, closures) pushed through Eden during the wave.
    pub churn: Mem,
    /// Live task working memory held for the duration of the wave
    /// (task concurrency × per-task unmanaged memory).
    pub working_set: Mem,
    /// New long-lived bytes (cached partitions) allocated during the wave.
    pub tenured_delta: Mem,
    /// Total live shuffle-buffer bytes held by the wave's tasks.
    pub shuffle_live: Mem,
    /// Size of one shuffle buffer fill/drain cycle.
    pub spill_batch: Mem,
    /// Number of shuffle buffer fill/drain cycles during the wave.
    pub spill_events: u32,
    /// Off-heap (native byte buffer) bytes allocated *and discarded* during
    /// the wave; they stay resident until a collection runs their cleaners.
    pub off_heap_alloc: Mem,
    /// Off-heap bytes held live by the wave's running tasks (active fetch
    /// buffers). Contributes to RSS for the duration of the wave.
    pub off_heap_live: Mem,
    /// Long-lived in-memory sort/aggregation buffers held for the whole
    /// task duration. Unlike `shuffle_live` spill batches, these tenure to
    /// the Old generation and create Observation-5-style pressure when they
    /// (together with code overhead and cache) exceed Old's capacity.
    pub sort_live: Mem,
}

impl WavePressure {
    /// A pressure description with no allocation activity.
    pub fn idle(compute_time: Millis) -> Self {
        WavePressure {
            compute_time,
            churn: Mem::ZERO,
            working_set: Mem::ZERO,
            tenured_delta: Mem::ZERO,
            shuffle_live: Mem::ZERO,
            spill_batch: Mem::ZERO,
            spill_events: 0,
            off_heap_alloc: Mem::ZERO,
            off_heap_live: Mem::ZERO,
            sort_live: Mem::ZERO,
        }
    }
}

/// What the JVM did during one wave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveOutcome {
    /// Young collections during the wave.
    pub young_gcs: u32,
    /// Full collections during the wave.
    pub full_gcs: u32,
    /// Total stop-the-world pause added to the wave.
    pub gc_pause: Millis,
    /// The live set could not fit in the heap even after collection:
    /// an `OutOfMemoryError` was thrown.
    pub oom: bool,
    /// The stable tenured set exceeds Old capacity (Observation 5 regime).
    pub promotion_failure: bool,
    /// Peak heap occupancy observed during the wave.
    pub peak_heap_used: Mem,
    /// Peak resident set size observed during the wave.
    pub peak_rss: Mem,
}

/// A simulated container JVM.
#[derive(Debug, Clone)]
pub struct JvmSim {
    layout: HeapLayout,
    settings: GcSettings,
    cost: GcCostModel,
    /// Long-lived bytes that survive every collection: code overhead + cache.
    code_overhead: Mem,
    cache_used: Mem,
    /// Promoted transient bytes that are still referenced by running tasks.
    live_transient: Mem,
    /// Promoted transient bytes whose tasks have finished; collected by the
    /// next full GC.
    dead_transient: Mem,
    /// Outstanding off-heap buffer bytes awaiting a GC to run their cleaners.
    off_heap_outstanding: Mem,
    /// Off-heap bytes held live by the currently running tasks (pooled fetch
    /// buffers re-used across waves).
    off_heap_live: Mem,
    /// Eden occupancy carried over between waves: allocation pressure
    /// accumulates across waves, so a collection eventually triggers even
    /// when no single wave fills Eden by itself.
    eden_used: Mem,
    /// Timestamp of the most recent GC event, used to keep the event log
    /// monotone when interleaved collection causes overlap.
    last_event_time: Millis,
    young_gcs: u64,
    full_gcs: u64,
    total_pause: Millis,
    events: Vec<GcEvent>,
    rss_samples: Vec<(Millis, Mem)>,
    peak_rss: Mem,
    peak_heap_used: Mem,
    peak_old_used: Mem,
    /// Slowdown requested for the *next* wave (fault injection: a
    /// straggling container's collector threads crawl along with its
    /// mutators). Consumed by `simulate_wave`, then reset to 1.
    wave_slowdown: f64,
    /// Slowdown in effect for the wave currently being simulated.
    active_slowdown: f64,
}

impl JvmSim {
    /// Creates a fresh JVM for a container with the given heap.
    pub fn new(heap: Mem, settings: GcSettings, cost: GcCostModel) -> Self {
        let layout = HeapLayout::new(heap, &settings);
        JvmSim {
            layout,
            settings,
            cost,
            code_overhead: Mem::ZERO,
            cache_used: Mem::ZERO,
            live_transient: Mem::ZERO,
            dead_transient: Mem::ZERO,
            off_heap_outstanding: Mem::ZERO,
            off_heap_live: Mem::ZERO,
            eden_used: Mem::ZERO,
            last_event_time: Millis::ZERO,
            young_gcs: 0,
            full_gcs: 0,
            total_pause: Millis::ZERO,
            events: Vec::new(),
            rss_samples: Vec::new(),
            peak_rss: Mem::ZERO,
            peak_heap_used: Mem::ZERO,
            peak_old_used: Mem::ZERO,
            wave_slowdown: 1.0,
            active_slowdown: 1.0,
        }
    }

    /// Applies a straggler slowdown to the next simulated wave: every GC
    /// pause of that wave is stretched by `factor` (clamped to ≥ 1). The
    /// fault injector uses this to model a container whose node is
    /// overloaded — compute and collection both crawl.
    pub fn set_wave_slowdown(&mut self, factor: f64) {
        self.wave_slowdown = factor.max(1.0);
    }

    /// The heap layout in effect.
    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    /// Sets the constant application code overhead (`M_i`), resident in Old.
    pub fn set_code_overhead(&mut self, m_i: Mem) {
        self.code_overhead = m_i;
    }

    /// Updates the cached bytes resident in Old (the application's Cache
    /// Storage pool usage).
    pub fn set_cache_used(&mut self, cache: Mem) {
        self.cache_used = cache;
    }

    /// The stable tenured set: code overhead plus cache.
    pub fn tenured_stable(&self) -> Mem {
        self.code_overhead + self.cache_used
    }

    fn old_used(&self) -> Mem {
        self.tenured_stable() + self.live_transient + self.dead_transient
    }

    /// Current resident set size: committed heap, constant native overhead,
    /// live (pooled) buffers, and collected-but-unreclaimed buffer garbage.
    pub fn rss(&self) -> Mem {
        self.layout.heap
            + self.cost.native_overhead
            + self.off_heap_live
            + self.off_heap_outstanding
    }

    /// Total young collections so far.
    pub fn young_gc_count(&self) -> u64 {
        self.young_gcs
    }

    /// Total full collections so far.
    pub fn full_gc_count(&self) -> u64 {
        self.full_gcs
    }

    /// Cumulative stop-the-world pause.
    pub fn total_pause(&self) -> Millis {
        self.total_pause
    }

    /// All GC events logged so far (the JMX timeline of the profiler).
    pub fn events(&self) -> &[GcEvent] {
        &self.events
    }

    /// RSS samples logged at GC events and wave boundaries.
    pub fn rss_samples(&self) -> &[(Millis, Mem)] {
        &self.rss_samples
    }

    /// Highest RSS observed.
    pub fn peak_rss(&self) -> Mem {
        self.peak_rss
    }

    /// Highest heap occupancy observed.
    pub fn peak_heap_used(&self) -> Mem {
        self.peak_heap_used
    }

    /// Highest old-generation occupancy observed.
    pub fn peak_old_used(&self) -> Mem {
        self.peak_old_used
    }

    fn note_rss(&mut self, time: Millis) {
        let rss = self.rss();
        self.peak_rss = self.peak_rss.max(rss);
        self.rss_samples.push((time, rss));
    }

    fn note_heap(&mut self, young_live: Mem) {
        let used = self.old_used() + young_live;
        self.peak_heap_used = self.peak_heap_used.max(used.min(self.layout.heap));
        self.peak_old_used = self.peak_old_used.max(self.old_used().min(self.layout.old));
    }

    fn reclaim_off_heap(&mut self, kind: GcKind) {
        let frac = match kind {
            GcKind::Young => self.cost.young_offheap_reclaim,
            GcKind::Full => self.cost.full_offheap_reclaim,
        };
        self.off_heap_outstanding = self.off_heap_outstanding * (1.0 - frac);
    }

    fn record_event(&mut self, time: Millis, kind: GcKind, pause: Millis, young_live: Mem) {
        let time = time.max(self.last_event_time);
        self.last_event_time = time;
        self.total_pause += pause;
        self.reclaim_off_heap(kind);
        let event = GcEvent {
            time,
            kind,
            pause,
            heap_used_after: (self.old_used() + young_live).min(self.layout.heap),
            old_used_after: self.old_used().min(self.layout.old),
            rss: self.rss(),
        };
        self.events.push(event);
        self.note_rss(time);
        self.note_heap(young_live);
    }

    /// Runs a full collection: collects dead transients, compacts Old.
    fn full_gc(&mut self, time: Millis, promotion_failure: bool) -> Millis {
        self.full_gcs += 1;
        let scanned = self.old_used().min(self.layout.heap);
        let mut pause =
            self.cost.full_base + Millis::ms(self.cost.full_ms_per_mb * scanned.as_mb());
        if promotion_failure {
            pause = pause * self.cost.promotion_failure_penalty;
        }
        pause = pause * self.active_slowdown;
        self.dead_transient = Mem::ZERO;
        self.record_event(time, GcKind::Full, pause, Mem::ZERO);
        pause
    }

    /// Simulates the allocation pressure of one wave.
    ///
    /// Returns the GC activity; the caller adds `gc_pause` to the wave's wall
    /// time and reacts to `oom`.
    pub fn simulate_wave(&mut self, now: Millis, w: &WavePressure) -> WaveOutcome {
        self.active_slowdown = self.wave_slowdown.max(1.0);
        self.wave_slowdown = 1.0;
        let eden = self.layout.eden;
        let survivor = self.layout.survivor;
        let old_cap = self.layout.old;

        // Live (pooled) fetch buffers of the wave's tasks.
        self.off_heap_live = w.off_heap_live;

        // Hard out-of-memory: the live set cannot fit even after perfect
        // collection of all garbage.
        let live_demand = self.tenured_stable()
            + w.tenured_delta
            + w.working_set
            + w.shuffle_live.max(w.sort_live);
        if live_demand > self.layout.usable() {
            self.note_heap(w.working_set + w.shuffle_live);
            return WaveOutcome {
                young_gcs: 0,
                full_gcs: 0,
                gc_pause: Millis::ZERO,
                oom: true,
                promotion_failure: false,
                peak_heap_used: self.peak_heap_used,
                peak_rss: self.peak_rss,
            };
        }

        // New cache blocks tenure immediately (they are long-lived by
        // definition); they also pass through Eden, which is accounted for in
        // the churn traffic below.
        self.cache_used += w.tenured_delta;

        // Observation 5 regime: the long-lived set (code overhead + cache +
        // in-memory sort buffers) does not fit in Old.
        let promotion_failure = self.tenured_stable() + w.sort_live > old_cap;

        // Long-lived sort buffers tenure and occupy Old for the wave's
        // duration, so Old overflows (and full collections trigger) sooner.
        self.live_transient += w.sort_live;

        // Observation 7 regime: live shuffle buffers exceed half of Eden, so
        // buffers survive collections mid-fill and are promoted.
        let shuffle_promotes = w.shuffle_live > eden * 0.5 && w.spill_events > 0;

        let spill_traffic = w.spill_batch * w.spill_events as f64;
        let traffic = w.churn + w.tenured_delta + spill_traffic;
        let n_young = ((self.eden_used + traffic) / eden).floor() as u32;
        self.eden_used = Mem::mb((self.eden_used + traffic).as_mb() % eden.as_mb().max(1.0));

        let young_start = self.young_gcs;
        let full_start = self.full_gcs;
        let pause_start = self.total_pause;

        // Live young data: the working set before it tenures, a steady
        // residue after, plus live shuffle buffers that have not tenured.
        let mut working_in_young = w.working_set;
        let mut age = 0u32;
        let mut spills_done = 0u32;
        let n_events = n_young.max(if shuffle_promotes { 1 } else { 0 });

        for i in 0..n_young {
            let t = now + w.compute_time * ((i + 1) as f64 / (n_events + 1) as f64);

            // Promote the shuffle buffers of the spill events that happened
            // since the previous collection. A buffer that outgrew half of
            // Eden survives the scavenge mid-fill and necessitates a full
            // collection (Observation 7: "a full GC every time a task
            // spills").
            if shuffle_promotes && w.spill_events > 0 {
                let due = (w.spill_events as u64 * (i as u64 + 1) / n_young.max(1) as u64) as u32;
                let newly = due.saturating_sub(spills_done);
                spills_done = due;
                if newly > 0 {
                    self.dead_transient += w.spill_batch * newly as f64;
                    self.full_gc(t, false);
                }
            }

            let shuffle_in_young = if shuffle_promotes {
                Mem::ZERO
            } else {
                w.shuffle_live
            };
            let live_young = working_in_young + shuffle_in_young;
            self.note_heap(live_young + eden);

            // Copy survivors; overflow beyond the survivor space promotes.
            let copied = live_young.min(survivor);
            let overflow = (live_young - survivor).clamp_non_negative();
            if !overflow.is_zero() {
                // Overflow of the working set moves it to Old permanently.
                let from_working = overflow.min(working_in_young);
                working_in_young -= from_working;
                self.live_transient += from_working;
                // Shuffle overflow is transient garbage once drained.
                self.dead_transient += overflow - from_working;
            }

            age += 1;
            if age >= self.settings.tenuring_threshold && !working_in_young.is_zero() {
                self.live_transient += working_in_young;
                working_in_young = Mem::ZERO;
            }

            let pause = (self.cost.young_base
                + Millis::ms(self.cost.young_ms_per_mb * (copied + overflow).as_mb()))
                * self.active_slowdown;
            self.young_gcs += 1;
            self.record_event(t, GcKind::Young, pause, working_in_young + shuffle_in_young);

            // Old overflow (or the promotion-failure regime) forces a full
            // collection.
            if self.old_used() > old_cap || promotion_failure {
                self.full_gc(t, promotion_failure);
            }
        }

        // In the promotion-failure regime the JVM runs back-to-back full
        // collections on every allocation quantum, not just at Eden fills:
        // the young loop above accounts one full GC per young GC, but when
        // Old is overfull even small allocations force collections.
        if promotion_failure {
            let free = (self.layout.heap - self.tenured_stable() - w.working_set - w.sort_live)
                .max(self.layout.heap * 0.03);
            let needed = (traffic / free).ceil() as u32;
            let done = (self.full_gcs - full_start) as u32;
            for i in done..needed.min(done + 64) {
                let t = now + w.compute_time * ((i + 1) as f64 / (needed + 1) as f64);
                self.full_gc(t, true);
            }
        }

        // Spill promotions not yet attributed to a collection (e.g. spills
        // with very little churn).
        if shuffle_promotes && spills_done < w.spill_events {
            let remaining = w.spill_events - spills_done;
            // Group the leftover spills into at most a handful of
            // collections so light waves stay cheap.
            let groups = remaining.min(4);
            for g in 0..groups {
                let t = now + w.compute_time * (0.6 + 0.4 * (g + 1) as f64 / (groups + 1) as f64);
                self.dead_transient += w.spill_batch * (remaining as f64 / groups as f64);
                self.full_gc(t, promotion_failure);
            }
        }

        // Off-heap buffers allocated during the wave: model the outstanding
        // amount as growing between collections. With zero collections the
        // entire allocation stays outstanding.
        let reclaim_events = (self.young_gcs - young_start) + (self.full_gcs - full_start);
        if reclaim_events == 0 {
            self.off_heap_outstanding += w.off_heap_alloc;
        } else {
            // Interleave allocation with the reclamation already applied in
            // `record_event`: approximate by adding the per-interval share
            // and applying the residual decay analytically.
            let per_event = w.off_heap_alloc / (reclaim_events as f64 + 1.0);
            let keep = 1.0 - self.cost.young_offheap_reclaim;
            let extra = per_event;
            let mut acc = Mem::ZERO;
            for _ in 0..reclaim_events.min(64) {
                acc = (acc + extra) * keep;
            }
            self.off_heap_outstanding += acc + per_event;
        }

        // Peak RSS during the wave: the between-collections share of the
        // buffer churn sits on top of the live pool and carried garbage.
        let intra_wave = w.off_heap_alloc / (reclaim_events as f64 + 1.0);
        self.peak_rss = self.peak_rss.max(self.rss() + intra_wave);

        // End of wave: the working set dies; promoted transients become
        // garbage awaiting the next full collection.
        self.dead_transient += self.live_transient;
        self.live_transient = Mem::ZERO;
        self.note_heap(working_in_young + w.shuffle_live);
        self.note_rss(now + w.compute_time);

        WaveOutcome {
            young_gcs: (self.young_gcs - young_start) as u32,
            full_gcs: (self.full_gcs - full_start) as u32,
            gc_pause: self.total_pause - pause_start,
            oom: false,
            promotion_failure,
            peak_heap_used: self.peak_heap_used,
            peak_rss: self.peak_rss,
        }
    }

    /// Whether any full collection has happened (RelM's profile-quality
    /// check: estimating `M_u` needs full-GC events).
    pub fn had_full_gc(&self) -> bool {
        self.full_gcs > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(heap_mb: f64, nr: u32) -> JvmSim {
        let settings = GcSettings {
            new_ratio: nr,
            survivor_ratio: 8,
            tenuring_threshold: 2,
        };
        JvmSim::new(Mem::mb(heap_mb), settings, GcCostModel::default())
    }

    fn wave(compute_s: f64, churn_mb: f64, working_mb: f64) -> WavePressure {
        WavePressure {
            compute_time: Millis::secs(compute_s),
            churn: Mem::mb(churn_mb),
            working_set: Mem::mb(working_mb),
            tenured_delta: Mem::ZERO,
            shuffle_live: Mem::ZERO,
            spill_batch: Mem::ZERO,
            spill_events: 0,
            off_heap_alloc: Mem::ZERO,
            off_heap_live: Mem::ZERO,
            sort_live: Mem::ZERO,
        }
    }

    #[test]
    fn light_wave_triggers_no_gc() {
        let mut jvm = sim(4404.0, 2);
        let out = jvm.simulate_wave(Millis::ZERO, &wave(10.0, 100.0, 50.0));
        assert_eq!(out.young_gcs, 0);
        assert_eq!(out.full_gcs, 0);
        assert!(!out.oom);
        assert_eq!(out.gc_pause, Millis::ZERO);
    }

    #[test]
    fn churn_triggers_young_gcs_proportional_to_eden() {
        let mut jvm = sim(4404.0, 2);
        // Eden is ~1174MB; 5GB of churn should trigger ~4 young GCs.
        let out = jvm.simulate_wave(Millis::ZERO, &wave(10.0, 5000.0, 100.0));
        assert!(
            out.young_gcs >= 3 && out.young_gcs <= 5,
            "young_gcs = {}",
            out.young_gcs
        );
        assert!(out.gc_pause > Millis::ZERO);
    }

    #[test]
    fn smaller_eden_means_more_young_gcs() {
        let mut low = sim(4404.0, 1);
        let mut high = sim(4404.0, 9);
        let w = wave(10.0, 4000.0, 100.0);
        let o_low = low.simulate_wave(Millis::ZERO, &w);
        let o_high = high.simulate_wave(Millis::ZERO, &w);
        assert!(
            o_high.young_gcs > o_low.young_gcs,
            "NR=9 should GC more often: {} vs {}",
            o_high.young_gcs,
            o_low.young_gcs
        );
    }

    #[test]
    fn wave_slowdown_stretches_pauses_and_resets() {
        let w = wave(10.0, 5000.0, 100.0);
        let mut plain = sim(4404.0, 2);
        let baseline = plain.simulate_wave(Millis::ZERO, &w).gc_pause;
        assert!(baseline > Millis::ZERO);

        let mut straggler = sim(4404.0, 2);
        straggler.set_wave_slowdown(3.0);
        let slowed = straggler.simulate_wave(Millis::ZERO, &w).gc_pause;
        assert!(
            (slowed / baseline - 3.0).abs() < 1e-9,
            "slowdown should scale pauses exactly: {slowed} vs {baseline}"
        );

        // The slowdown applies to one wave only.
        let after = straggler.simulate_wave(Millis::secs(30.0), &w).gc_pause;
        let plain_after = plain.simulate_wave(Millis::secs(30.0), &w).gc_pause;
        assert_eq!(after, plain_after);

        // Sub-unity factors are clamped: a "straggler" cannot speed up.
        let mut fast = sim(4404.0, 2);
        fast.set_wave_slowdown(0.1);
        assert_eq!(fast.simulate_wave(Millis::ZERO, &w).gc_pause, baseline);
    }

    #[test]
    fn live_set_exceeding_heap_is_oom() {
        let mut jvm = sim(1101.0, 2);
        jvm.set_code_overhead(Mem::mb(115.0));
        jvm.set_cache_used(Mem::mb(700.0));
        let out = jvm.simulate_wave(Millis::ZERO, &wave(10.0, 500.0, 400.0));
        assert!(out.oom);
    }

    #[test]
    fn cache_exceeding_old_is_promotion_failure_with_full_gc_storm() {
        // NR=2 over 4404MB: Old = 2936MB. Cache of 3100MB overflows Old.
        let mut jvm = sim(4404.0, 2);
        jvm.set_code_overhead(Mem::mb(100.0));
        jvm.set_cache_used(Mem::mb(3100.0));
        let out = jvm.simulate_wave(Millis::ZERO, &wave(20.0, 4000.0, 200.0));
        assert!(out.promotion_failure);
        assert!(
            out.full_gcs >= out.young_gcs,
            "every young GC should degrade to full"
        );
        assert!(out.full_gcs > 0);
    }

    #[test]
    fn raising_new_ratio_fixes_promotion_failure() {
        // Same cache with NR=5: Old = 3670MB, cache fits.
        let mut jvm = sim(4404.0, 5);
        jvm.set_code_overhead(Mem::mb(100.0));
        jvm.set_cache_used(Mem::mb(3100.0));
        let out = jvm.simulate_wave(Millis::ZERO, &wave(20.0, 4000.0, 200.0));
        assert!(!out.promotion_failure);
        assert_eq!(out.full_gcs, 0);
    }

    #[test]
    fn shuffle_buffers_over_half_eden_promote_and_force_full_gcs() {
        let mut jvm = sim(2202.0, 2);
        jvm.set_code_overhead(Mem::mb(100.0));
        // Eden ~ 587MB; live shuffle of 400MB > eden/2.
        let w = WavePressure {
            compute_time: Millis::secs(30.0),
            churn: Mem::mb(3000.0),
            working_set: Mem::mb(100.0),
            tenured_delta: Mem::ZERO,
            shuffle_live: Mem::mb(400.0),
            spill_batch: Mem::mb(400.0),
            spill_events: 8,
            off_heap_alloc: Mem::ZERO,
            off_heap_live: Mem::ZERO,
            sort_live: Mem::ZERO,
        };
        let out = jvm.simulate_wave(Millis::ZERO, &w);
        assert!(
            out.full_gcs > 0,
            "promoted spill batches must force full GCs"
        );
    }

    #[test]
    fn small_shuffle_buffers_do_not_force_full_gcs() {
        let mut jvm = sim(2202.0, 2);
        jvm.set_code_overhead(Mem::mb(100.0));
        let w = WavePressure {
            compute_time: Millis::secs(30.0),
            churn: Mem::mb(3000.0),
            working_set: Mem::mb(100.0),
            tenured_delta: Mem::ZERO,
            shuffle_live: Mem::mb(100.0), // < eden/2
            spill_batch: Mem::mb(100.0),
            spill_events: 8,
            off_heap_alloc: Mem::ZERO,
            off_heap_live: Mem::ZERO,
            sort_live: Mem::ZERO,
        };
        let out = jvm.simulate_wave(Millis::ZERO, &w);
        assert_eq!(out.full_gcs, 0);
    }

    #[test]
    fn off_heap_grows_without_gc_and_shrinks_with_gc() {
        // No churn: no GC, buffers accumulate.
        let mut quiet = sim(4404.0, 2);
        let mut w = wave(10.0, 10.0, 10.0);
        w.off_heap_alloc = Mem::mb(300.0);
        quiet.simulate_wave(Millis::ZERO, &w);
        quiet.simulate_wave(Millis::secs(10.0), &w);
        let quiet_rss = quiet.rss();

        // Heavy churn: frequent GC reclaims buffers.
        let mut busy = sim(4404.0, 2);
        let mut w2 = wave(10.0, 8000.0, 10.0);
        w2.off_heap_alloc = Mem::mb(300.0);
        busy.simulate_wave(Millis::ZERO, &w2);
        busy.simulate_wave(Millis::secs(10.0), &w2);
        let busy_rss = busy.rss();

        assert!(
            quiet_rss > busy_rss,
            "RSS without GC ({quiet_rss}) should exceed RSS with GC ({busy_rss})"
        );
    }

    #[test]
    fn events_are_time_ordered_and_counted() {
        let mut jvm = sim(2202.0, 2);
        jvm.simulate_wave(Millis::ZERO, &wave(10.0, 4000.0, 100.0));
        jvm.simulate_wave(Millis::secs(20.0), &wave(10.0, 4000.0, 100.0));
        let events = jvm.events();
        assert_eq!(
            events.len() as u64,
            jvm.young_gc_count() + jvm.full_gc_count()
        );
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn full_gc_collects_dead_transients() {
        let mut jvm = sim(2202.0, 1);
        jvm.set_code_overhead(Mem::mb(100.0));
        // Big working sets promote; several waves accumulate dead transients
        // until a full GC runs. Old cap at NR=1 is 1101MB.
        for i in 0..6 {
            let out = jvm.simulate_wave(Millis::secs(i as f64 * 10.0), &wave(10.0, 2000.0, 400.0));
            assert!(!out.oom);
        }
        assert!(jvm.full_gc_count() > 0);
        // After the last full GC old usage returns near the stable set at
        // some event.
        let min_old_after_full = jvm
            .events()
            .iter()
            .filter(|e| e.kind == GcKind::Full)
            .map(|e| e.old_used_after.as_mb())
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_old_after_full < 700.0,
            "full GC should compact old, saw {min_old_after_full}"
        );
    }

    #[test]
    fn idle_pressure_is_free() {
        let mut jvm = sim(4404.0, 2);
        let out = jvm.simulate_wave(Millis::ZERO, &WavePressure::idle(Millis::secs(5.0)));
        assert_eq!(out.young_gcs, 0);
        assert_eq!(out.full_gcs, 0);
        assert_eq!(out.gc_pause, Millis::ZERO);
        assert!(!out.oom);
    }

    #[test]
    fn eden_pressure_carries_across_waves() {
        // Each wave churns half an Eden; a collection must still trigger
        // roughly every other wave.
        let mut jvm = sim(4404.0, 2); // eden ~1174MB
        let w = wave(5.0, 580.0, 50.0);
        let mut total_young = 0;
        for i in 0..10 {
            let out = jvm.simulate_wave(Millis::secs(i as f64 * 5.0), &w);
            total_young += out.young_gcs;
        }
        assert!(
            (3..=6).contains(&total_young),
            "10 half-Eden waves should trigger ~4-5 young GCs, got {total_young}"
        );
    }

    #[test]
    fn promotion_failure_forces_full_gcs_even_with_low_churn() {
        // Old cannot hold the cache; even sub-Eden churn must trigger full
        // collections (the JVM thrashes on every allocation quantum).
        let mut jvm = sim(4404.0, 1); // old = 2202MB
        jvm.set_code_overhead(Mem::mb(100.0));
        jvm.set_cache_used(Mem::mb(2500.0));
        let out = jvm.simulate_wave(Millis::ZERO, &wave(20.0, 600.0, 100.0));
        assert!(out.promotion_failure);
        assert!(out.full_gcs >= 1, "quantum-driven full GCs expected");
    }

    #[test]
    fn sort_buffers_create_old_pressure() {
        // An in-memory sort whose live buffers exceed Old's headroom must
        // behave like Observation 5.
        let mut jvm = sim(4404.0, 2); // old = 2936MB
        jvm.set_code_overhead(Mem::mb(110.0));
        let mut w = wave(20.0, 2000.0, 200.0);
        w.sort_live = Mem::mb(3000.0);
        let out = jvm.simulate_wave(Millis::ZERO, &w);
        assert!(out.promotion_failure, "sort buffers beyond Old must thrash");
        assert!(out.full_gcs > 0);
    }

    #[test]
    fn peaks_are_monotone_and_bounded() {
        let mut jvm = sim(4404.0, 2);
        jvm.set_code_overhead(Mem::mb(115.0));
        jvm.set_cache_used(Mem::mb(1000.0));
        jvm.simulate_wave(Millis::ZERO, &wave(10.0, 3000.0, 300.0));
        assert!(jvm.peak_heap_used() <= jvm.layout().heap);
        assert!(jvm.peak_heap_used() >= Mem::mb(1115.0));
        assert!(jvm.peak_rss() >= jvm.layout().heap);
    }
}
