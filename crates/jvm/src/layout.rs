//! Heap layout arithmetic for the ParallelGC generational organization.
//!
//! ParallelGC splits the heap into an Old generation and a Young generation
//! (`NewRatio` = Old/Young), and the Young generation into one Eden space and
//! two Survivor spaces (`SurvivorRatio` = Eden/Survivor). Only one survivor
//! space is occupied at any time.

use relm_common::{Mem, MemoryConfig};
use serde::{Deserialize, Serialize};

/// The GC-relevant knobs of a JVM launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcSettings {
    /// Ratio of Old capacity to Young capacity.
    pub new_ratio: u32,
    /// Ratio of Eden capacity to one Survivor space.
    pub survivor_ratio: u32,
    /// Number of young collections an object must survive before being
    /// tenured to Old (`MaxTenuringThreshold`; ParallelGC adapts between the
    /// initial and max thresholds — we use a single effective value).
    pub tenuring_threshold: u32,
}

impl Default for GcSettings {
    fn default() -> Self {
        GcSettings {
            new_ratio: 2,
            survivor_ratio: 8,
            tenuring_threshold: 2,
        }
    }
}

impl GcSettings {
    /// Extracts the GC settings of a full memory configuration.
    pub fn from_config(config: &MemoryConfig) -> Self {
        GcSettings {
            new_ratio: config.new_ratio,
            survivor_ratio: config.survivor_ratio,
            ..GcSettings::default()
        }
    }
}

/// Absolute sizes of every heap pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeapLayout {
    /// Total heap.
    pub heap: Mem,
    /// Old generation capacity.
    pub old: Mem,
    /// Young generation capacity (Eden + two Survivors).
    pub young: Mem,
    /// Eden capacity.
    pub eden: Mem,
    /// One survivor space's capacity.
    pub survivor: Mem,
}

impl HeapLayout {
    /// Computes the layout implied by a heap size and GC settings.
    pub fn new(heap: Mem, settings: &GcSettings) -> Self {
        let nr = settings.new_ratio.max(1) as f64;
        let sr = settings.survivor_ratio.max(1) as f64;
        let old = heap * (nr / (nr + 1.0));
        let young = heap - old;
        // Eden + 2 survivors = young, eden / survivor = SR.
        let survivor = young * (1.0 / (sr + 2.0));
        let eden = young - survivor * 2.0;
        HeapLayout {
            heap,
            old,
            young,
            eden,
            survivor,
        }
    }

    /// The usable heap from an application's perspective: everything except
    /// one (empty) survivor space and a small JVM-internal reserve.
    pub fn usable(&self) -> Mem {
        (self.heap - self.survivor) * 0.97
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_matches_parallel_gc_defaults() {
        // NR=2, SR=8 over 4404MB: old = 2936, young = 1468,
        // survivor = 1468/10 = 146.8, eden = 1174.4.
        let l = HeapLayout::new(Mem::mb(4404.0), &GcSettings::default());
        assert!((l.old.as_mb() - 2936.0).abs() < 0.1);
        assert!((l.young.as_mb() - 1468.0).abs() < 0.1);
        assert!((l.survivor.as_mb() - 146.8).abs() < 0.1);
        assert!((l.eden.as_mb() - 1174.4).abs() < 0.1);
    }

    #[test]
    fn pools_partition_the_heap() {
        for nr in 1..=9 {
            for sr in [2u32, 4, 8, 16] {
                let settings = GcSettings {
                    new_ratio: nr,
                    survivor_ratio: sr,
                    tenuring_threshold: 2,
                };
                let l = HeapLayout::new(Mem::gb(2.0), &settings);
                let total = l.old + l.eden + l.survivor * 2.0;
                assert!(
                    (total.as_mb() - l.heap.as_mb()).abs() < 1e-6,
                    "NR={nr} SR={sr}: pools do not partition the heap"
                );
                assert!(l.eden.as_mb() > 0.0);
            }
        }
    }

    #[test]
    fn higher_new_ratio_shrinks_eden() {
        let heap = Mem::gb(4.0);
        let eden = |nr| {
            HeapLayout::new(
                heap,
                &GcSettings {
                    new_ratio: nr,
                    survivor_ratio: 8,
                    tenuring_threshold: 2,
                },
            )
            .eden
        };
        assert!(eden(1) > eden(2));
        assert!(eden(2) > eden(5));
        assert!(eden(5) > eden(9));
    }

    #[test]
    fn usable_excludes_survivor_and_reserve() {
        let l = HeapLayout::new(Mem::mb(1000.0), &GcSettings::default());
        assert!(l.usable() < l.heap);
        assert!(l.usable() > l.heap * 0.85);
    }

    #[test]
    fn settings_from_config() {
        let cfg = MemoryConfig {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            task_concurrency: 2,
            cache_fraction: 0.3,
            shuffle_fraction: 0.3,
            new_ratio: 5,
            survivor_ratio: 6,
        };
        let s = GcSettings::from_config(&cfg);
        assert_eq!(s.new_ratio, 5);
        assert_eq!(s.survivor_ratio, 6);
    }
}
