//! Property tests for the cross-session memory store: every persisted
//! record (digest, fingerprint, prior bundle) must survive a serde round
//! trip unchanged; save → load → save must be byte-idempotent; corrupted
//! or truncated entry lines must be *skipped with a counter* — never a
//! panic, never a hard error; and retrieval must not depend on ingestion
//! order.

use proptest::prelude::*;
use relm_cluster::ClusterSpec;
use relm_common::Mem;
use relm_memory::{
    build_prior, Fingerprint, MemoryStore, SessionDigest, DEFAULT_PRIOR_CAP, DIGEST_VERSION,
};
use relm_profile::DerivedStats;
use relm_tune::ConfigSpace;
use relm_workloads::wordcount;

/// Synthesizes plausible Table-6 statistics from one scalar draw (the
/// vendored proptest has no collection or struct strategies).
fn stats(seed: u64) -> DerivedStats {
    DerivedStats {
        containers_per_node: 1 + (seed % 8) as u32,
        heap: Mem::mb(1024.0 + (seed % 7) as f64 * 512.0),
        cpu_avg: (seed % 101) as f64,
        disk_avg: ((seed / 3) % 101) as f64,
        m_i: Mem::mb(200.0 + (seed % 5) as f64 * 50.0),
        m_c: Mem::mb(300.0 + (seed % 11) as f64 * 40.0),
        m_s: Mem::mb(150.0 + (seed % 13) as f64 * 30.0),
        m_u: Mem::mb(400.0 + (seed % 17) as f64 * 20.0),
        p: 1 + (seed % 6) as u32,
        h: (seed % 10) as f64 / 10.0,
        s: (seed % 9) as f64 / 9.0,
        m_u_from_full_gc: seed.is_multiple_of(2),
    }
}

fn space() -> ConfigSpace {
    ConfigSpace::for_app(&ClusterSpec::cluster_a(), &wordcount())
}

/// A digest with `n_obs` observations decoded from the unit hypercube.
fn digest(seed: u64, n_obs: usize) -> SessionDigest {
    let space = space();
    let unit = |i: u64| {
        let v = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i.wrapping_mul(2654435761));
        (v % 1000) as f64 / 1000.0
    };
    let observations = (0..n_obs as u64)
        .map(|i| {
            let x = [
                unit(4 * i),
                unit(4 * i + 1),
                unit(4 * i + 2),
                unit(4 * i + 3),
            ];
            relm_memory::DigestObs {
                config: space.decode(&x),
                score_mins: 5.0 + unit(4 * i + 7) * 20.0,
                censored: (seed + i).is_multiple_of(5),
            }
        })
        .collect();
    SessionDigest {
        version: DIGEST_VERSION,
        workload: format!("wl{}", seed % 4),
        base_seed: seed,
        evaluations: n_obs,
        profiled: n_obs as u64,
        stats: if seed.is_multiple_of(7) {
            None
        } else {
            Some(stats(seed))
        },
        observations,
    }
}

fn distinct_seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            base.wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(2654435761))
        })
        .collect()
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "relm-memory-prop-{}-{tag}.jsonl",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn records_round_trip_through_serde(base in 0u64..100_000, n_obs in 0usize..12) {
        // Digest.
        let d = digest(base, n_obs);
        let body = serde_json::to_string(&d).unwrap();
        let back: SessionDigest = serde_json::from_str(&body).unwrap();
        prop_assert_eq!(&back, &d);

        // Fingerprint (when the digest carries stats).
        if let Some(fp) = d.fingerprint() {
            let body = serde_json::to_string(&fp).unwrap();
            let back: Fingerprint = serde_json::from_str(&body).unwrap();
            prop_assert_eq!(back, fp);
            prop_assert_eq!(fp.distance(&fp), 0.0);
        }

        // Prior bundle built from a store holding the digest.
        let mut store = MemoryStore::new();
        store.ingest(d.clone());
        if let Some(query) = store.fingerprint_for_workload(&d.workload) {
            let prior = build_prior(&store.retrieve(&query, 3), &space(), DEFAULT_PRIOR_CAP);
            let body = serde_json::to_string(&prior).unwrap();
            let back: relm_memory::PriorBundle = serde_json::from_str(&body).unwrap();
            prop_assert_eq!(back, prior);
        }
    }

    #[test]
    fn save_load_save_is_byte_idempotent(
        base in 0u64..100_000,
        n in 0usize..10,
        case in 0u64..1_000_000,
    ) {
        let mut store = MemoryStore::new();
        for &seed in &distinct_seeds(base, n) {
            store.ingest(digest(seed, 2 + (seed % 4) as usize));
        }
        let first_path = tmp_path(&format!("{case}-first"));
        let second_path = tmp_path(&format!("{case}-second"));
        store.save(&first_path).unwrap();

        let loaded = MemoryStore::load(&first_path, relm_obs::Obs::disabled()).unwrap();
        prop_assert_eq!(loaded.len(), store.len());
        prop_assert_eq!(loaded.skipped(), 0);
        loaded.save(&second_path).unwrap();
        let first = std::fs::read(&first_path).unwrap();
        let second = std::fs::read(&second_path).unwrap();
        prop_assert_eq!(first, second, "save(load(f)) must reproduce f byte-for-byte");

        std::fs::remove_file(&first_path).ok();
        std::fs::remove_file(&second_path).ok();
    }

    #[test]
    fn corrupt_or_truncated_lines_are_skipped_never_fatal(
        base in 1u64..100_000,
        n in 2usize..8,
        pick in 0usize..64,
        mode in 0u8..3,
        case in 0u64..1_000_000,
    ) {
        let mut store = MemoryStore::new();
        for &seed in &distinct_seeds(base, n) {
            store.ingest(digest(seed, 2));
        }
        let total = store.len();
        let path = tmp_path(&format!("{case}-corrupt"));
        store.save(&path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Line 0 is the header (which must stay intact); damage an entry.
        let idx = 1 + pick % (lines.len() - 1);
        let damaged: String = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i != idx {
                    return l.to_string();
                }
                match mode {
                    // Truncated mid-record (a torn write).
                    0 => l[..l.len() / 2].to_string(),
                    // Not JSON at all.
                    1 => "garbage not json".to_string(),
                    // Valid JSON, wrong checksum: flip a digit in the value.
                    _ => {
                        let at = l
                            .find("\"value\"")
                            .and_then(|v| {
                                l[v..].char_indices().find(|(_, c)| c.is_ascii_digit()).map(|(i, _)| v + i)
                            })
                            .expect("entry has digits");
                        let mut b = l.as_bytes().to_vec();
                        b[at] = if b[at] == b'9' { b'0' } else { b[at] + 1 };
                        String::from_utf8(b).unwrap()
                    }
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&path, damaged).unwrap();

        let loaded = MemoryStore::load(&path, relm_obs::Obs::disabled()).unwrap();
        prop_assert_eq!(loaded.skipped(), 1, "exactly the damaged line is skipped");
        prop_assert_eq!(loaded.len(), total - 1, "every intact entry survives");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retrieval_is_independent_of_ingestion_order(
        base in 0u64..100_000,
        n in 1usize..10,
        rot in 0usize..10,
        k in 1usize..5,
    ) {
        let seeds = distinct_seeds(base, n);
        let digests: Vec<SessionDigest> = seeds
            .iter()
            .map(|&s| digest(s, 2 + (s % 3) as usize))
            .collect();

        let mut forward = MemoryStore::new();
        for d in &digests {
            forward.ingest(d.clone());
        }
        let mut rotated = MemoryStore::new();
        let pivot = rot % digests.len();
        for d in digests[pivot..].iter().chain(&digests[..pivot]) {
            rotated.ingest(d.clone());
        }
        prop_assert_eq!(forward.len(), rotated.len());

        let query = Fingerprint::from_stats(&stats(base | 1));
        let a = forward.retrieve(&query, k);
        let b = rotated.retrieve(&query, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.key, &y.key);
            prop_assert_eq!(x.similarity, y.similarity);
            prop_assert_eq!(&x.digest, &y.digest);
        }
    }
}
