//! The persistent cross-session memory store.
//!
//! Layout mirrors the evalcache's JSONL store — a versioned header line,
//! then one checksummed entry per line, key-sorted so the file is a pure
//! function of the store *contents*:
//!
//! ```text
//! {"kind":"relm-memory","version":1}
//! {"key":"<32-hex>","check":<fnv64>,"value":{...SessionDigest...}}
//! ```
//!
//! One deliberate difference from the evalcache: a corrupted or truncated
//! entry line is **skipped and counted** (`memory.skipped`) instead of
//! failing the whole load. The evalcache replays exact outcomes — a
//! corrupt entry there would silently falsify a history, so it must
//! refuse. Memory only *informs* priors; losing one digest degrades a
//! warm start, it never corrupts a result — so the store salvages every
//! verifiable line and keeps serving. A wrong header (different kind or
//! version) is still a hard error: that is a different file, not a
//! damaged one.

use crate::digest::SessionDigest;
use crate::fingerprint::Fingerprint;
use relm_evalcache::canonical_json;
use relm_obs::Obs;
use serde::{Map, Number, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Store format version; bumped whenever the line layout changes.
pub const STORE_VERSION: u32 = 1;
/// The `kind` tag every memory store file starts with.
pub const STORE_KIND: &str = "relm-memory";

use relm_common::hash::fnv1a64_str;

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// One retrieval hit: a past session and how similar its workload
/// fingerprint is to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved {
    /// The digest's store key (32-hex), the deterministic tiebreaker.
    pub key: String,
    /// Similarity weight in `(0, 1]` (see [`Fingerprint::similarity`]).
    pub similarity: f64,
    /// The retrieved session digest.
    pub digest: SessionDigest,
}

/// The cross-session tuning memory: session digests keyed by their
/// canonical content address, retrievable by fingerprint similarity.
///
/// Instrumented on an [`Obs`] handle: `memory.ingested`,
/// `memory.retrievals`, `memory.retrieve_ms` (histogram),
/// `memory.store_sessions` (gauge), `memory.skipped`.
#[derive(Debug, Clone)]
pub struct MemoryStore {
    sessions: BTreeMap<String, SessionDigest>,
    obs: Obs,
    /// Corrupted/truncated entry lines skipped by the last load.
    skipped: u64,
}

impl MemoryStore {
    /// An empty store (telemetry disabled).
    pub fn new() -> Self {
        MemoryStore::instrumented(Obs::disabled())
    }

    /// An empty store mirroring its counters to `obs`.
    pub fn instrumented(obs: Obs) -> Self {
        MemoryStore {
            sessions: BTreeMap::new(),
            obs,
            skipped: 0,
        }
    }

    /// Stored sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Entry lines the last [`MemoryStore::load`] skipped as corrupted or
    /// truncated.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Iterates the stored digests in key order.
    pub fn sessions(&self) -> impl Iterator<Item = (&String, &SessionDigest)> {
        self.sessions.iter()
    }

    /// Merges one session digest into the store. Dedup/update rule: a new
    /// key inserts; an existing key is replaced only when the incoming
    /// digest has at least as many evaluations (a longer run of the same
    /// session supersedes a shorter one; a stale shorter one never
    /// clobbers). Returns whether the store changed; every change bumps
    /// `memory.ingested` and refreshes the `memory.store_sessions` gauge.
    pub fn ingest(&mut self, digest: SessionDigest) -> bool {
        let key = digest.key().hex();
        let changed = match self.sessions.get(&key) {
            Some(existing) => *existing != digest && digest.evaluations >= existing.evaluations,
            None => true,
        };
        if changed {
            self.sessions.insert(key, digest);
            self.obs.inc("memory.ingested");
            self.obs
                .gauge("memory.store_sessions", self.sessions.len() as f64);
        }
        changed
    }

    /// The stored fingerprint to query with for a workload label: among
    /// sessions with that (normalized) label and a fingerprint, the one
    /// with the most evaluations — ties broken by key hex, so the choice
    /// is byte-reproducible.
    pub fn fingerprint_for_workload(&self, label: &str) -> Option<Fingerprint> {
        let label = crate::digest::normalize_label(label);
        self.sessions
            .iter()
            .filter(|(_, d)| d.workload == label)
            .filter_map(|(k, d)| d.fingerprint().map(|fp| (d.evaluations, k, fp)))
            // BTreeMap iterates keys ascending; max_by_key keeps the later
            // (larger-key) candidate on equal evaluation counts, which is
            // deterministic — the point of the (evaluations, key) ordering.
            .max_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)))
            .map(|(_, _, fp)| fp)
    }

    /// Top-`k` nearest stored sessions to `query`, by ascending
    /// fingerprint distance with the key hex as the deterministic
    /// tiebreaker. Sessions without a fingerprint (no clean run) never
    /// match. Counts `memory.retrievals` and records `memory.retrieve_ms`.
    pub fn retrieve(&self, query: &Fingerprint, k: usize) -> Vec<Retrieved> {
        let start = Instant::now();
        let mut hits: Vec<(f64, &String, &SessionDigest)> = self
            .sessions
            .iter()
            .filter_map(|(key, d)| d.fingerprint().map(|fp| (query.distance(&fp), key, d)))
            .collect();
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(b.1)));
        hits.truncate(k);
        let out: Vec<Retrieved> = hits
            .into_iter()
            .map(|(distance, key, digest)| Retrieved {
                key: key.clone(),
                similarity: 1.0 / (1.0 + distance),
                digest: digest.clone(),
            })
            .collect();
        self.obs.inc("memory.retrievals");
        self.obs
            .record("memory.retrieve_ms", start.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Serializes the store (header + key-sorted checksummed entries).
    fn render(&self) -> String {
        let mut out = {
            let mut m = Map::new();
            m.insert("kind", Value::String(STORE_KIND.to_string()));
            m.insert("version", Value::Number(Number::U64(STORE_VERSION as u64)));
            Value::Object(m).to_string()
        };
        out.push('\n');
        for (key, digest) in &self.sessions {
            let value_json = canonical_json(digest);
            let mut line = Map::new();
            line.insert("key", Value::String(key.clone()));
            line.insert(
                "check",
                Value::Number(Number::U64(fnv1a64_str(&value_json))),
            );
            line.insert(
                "value",
                serde_json::from_str(&value_json).expect("canonical JSON re-parses"),
            );
            out.push_str(&Value::Object(line).to_string());
            out.push('\n');
        }
        out
    }

    /// Writes the store to `path` atomically: a sibling temporary file
    /// (unique per process and save) renamed into place, so a crash
    /// mid-save never destroys the previous store.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.render())?;
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        renamed
    }

    /// Parses one entry line into its verified digest, or a reason to
    /// skip it.
    fn parse_entry(line: &str) -> Result<(String, SessionDigest), String> {
        let value: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let map = value.as_object().ok_or("not an object")?;
        let key = map
            .get("key")
            .and_then(Value::as_str)
            .filter(|k| k.len() == 32 && k.chars().all(|c| c.is_ascii_hexdigit()))
            .ok_or("bad key")?;
        let check = map
            .get("check")
            .and_then(Value::as_u64)
            .ok_or("bad check")?;
        let payload = map.get("value").ok_or("missing value")?;
        let value_json = canonical_json(payload);
        if fnv1a64_str(&value_json) != check {
            return Err(format!("checksum mismatch for key {key}"));
        }
        let digest: SessionDigest = serde_json::from_str(&value_json).map_err(|e| e.to_string())?;
        if digest.version != crate::digest::DIGEST_VERSION {
            return Err(format!("unsupported digest version {}", digest.version));
        }
        Ok((key.to_string(), digest))
    }

    /// Loads a store file. The header must match kind and version — a
    /// mismatch is a hard error. Entry lines that fail to parse, fail
    /// their checksum, or carry an unknown digest version are *skipped*:
    /// each skip counts on `memory.skipped` and in
    /// [`MemoryStore::skipped`], and the remaining entries load normally —
    /// a partially damaged memory degrades, it never panics or refuses.
    pub fn load(path: &Path, obs: Obs) -> io::Result<Self> {
        let start = Instant::now();
        let text = std::fs::read_to_string(path)?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| invalid("memory store file is empty (missing header)"))?;
        let header: Value =
            serde_json::from_str(header).map_err(|e| invalid(format!("memory header: {e}")))?;
        let kind = header
            .as_object()
            .and_then(|m| m.get("kind"))
            .and_then(Value::as_str);
        if kind != Some(STORE_KIND) {
            return Err(invalid(format!(
                "memory store kind is {kind:?}, expected {STORE_KIND:?}"
            )));
        }
        let version = header
            .as_object()
            .and_then(|m| m.get("version"))
            .and_then(Value::as_u64);
        if version != Some(STORE_VERSION as u64) {
            return Err(invalid(format!(
                "memory store version {version:?} is not the supported version {STORE_VERSION}"
            )));
        }
        let mut store = MemoryStore::instrumented(obs);
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_entry(line) {
                Ok((key, digest)) => {
                    store.sessions.insert(key, digest);
                }
                Err(_) => {
                    store.skipped += 1;
                    store.obs.inc("memory.skipped");
                }
            }
        }
        store
            .obs
            .gauge("memory.store_sessions", store.sessions.len() as f64);
        store
            .obs
            .add("memory.load_ms", start.elapsed().as_secs_f64() * 1e3);
        Ok(store)
    }

    /// Like [`MemoryStore::load`], but a missing file is an empty store —
    /// the first session of a fresh deployment has no memory yet, which
    /// is not an error.
    pub fn load_or_empty(path: &Path, obs: Obs) -> io::Result<Self> {
        match MemoryStore::load(path, obs.clone()) {
            Ok(store) => Ok(store),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(MemoryStore::instrumented(obs)),
            Err(e) => Err(e),
        }
    }
}

impl Default for MemoryStore {
    fn default() -> Self {
        MemoryStore::new()
    }
}
