//! # relm-memory
//!
//! Persistent cross-session tuning memory: the layer between the
//! evalcache (exact-cell reuse) and the tuners (cross-workload
//! generalization).
//!
//! Every tuning session today starts cold, yet the paper's Table 6 shows
//! a compact resource-statistics vector characterizes a workload well
//! enough to transfer knowledge across applications (§6.6). This crate
//! makes that observation operational:
//!
//! * [`SessionDigest`] — the compact remainder of a settled session
//!   (label, mean Table-6 stats, every `(config, score)` observation),
//!   extractable from a [`relm_tune::TuningEnv`] at drain/checkpoint time
//!   with no live profile needed.
//! * [`Fingerprint`] — the normalized statistics vector; distance between
//!   fingerprints is the workload-similarity metric.
//! * [`MemoryStore`] — the persistent store: checksummed JSONL (the
//!   evalcache's atomic write-rename and canonical-hash idioms), key-sorted
//!   so the bytes are reproducible, with *skip-and-count* semantics for
//!   corrupted entries (memory informs priors; it never falsifies
//!   results, so a damaged line degrades instead of failing the load).
//! * [`PriorBundle`] / [`build_prior`] — similarity-retrieved warm starts
//!   per tuner family: GP observations for BO/GBO, weighted mean stats
//!   for RelM, retrieved digests for DDPG replay seeding.
//!
//! Retrieval, prior construction, and the store bytes are all
//! deterministic (total-order comparisons, key-hex tiebreaks), so a
//! warm-started session is byte-reproducible given the same store
//! contents.

#![warn(missing_docs)]

pub mod digest;
pub mod fingerprint;
pub mod prior;
pub mod store;

pub use digest::{normalize_label, DigestObs, SessionDigest, DIGEST_VERSION};
pub use fingerprint::{Fingerprint, FP_DIMS};
pub use prior::{
    build_prior, build_prior_budgeted, PriorBundle, DEFAULT_PRIOR_BUDGET, DEFAULT_PRIOR_CAP,
};
pub use store::{MemoryStore, Retrieved, STORE_KIND, STORE_VERSION};
