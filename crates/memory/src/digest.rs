//! The compact remainder of a tuning session: everything cross-session
//! warm starting needs, and nothing a live session holds.
//!
//! A [`SessionDigest`] is extracted when a session settles (drain,
//! checkpoint, or explicit export): the workload label, the mean Table-6
//! statistics over its clean runs (via
//! [`relm_tune::TuningEnv::stats_accumulator`]), and the full
//! `(config, score)` observation list. Fingerprinting and prior
//! construction work from digests alone — ingest never needs a live
//! environment or a retained profile.

use crate::fingerprint::Fingerprint;
use relm_common::{Error, MemoryConfig, Result};
use relm_evalcache::{EvalKey, KeyBuilder};
use relm_profile::DerivedStats;
use relm_tune::TuningEnv;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Digest schema version; bumped on any incompatible layout change.
pub const DIGEST_VERSION: u32 = 1;

/// One settled observation, compacted for cross-session reuse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigestObs {
    /// The evaluated configuration.
    pub config: MemoryConfig,
    /// Objective value in minutes (penalized when censored).
    pub score_mins: f64,
    /// True when the run never finished cleanly — the score is a penalty
    /// bound, not a measurement.
    pub censored: bool,
}

/// The persistent remainder of one tuning session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDigest {
    /// Schema version ([`DIGEST_VERSION`]).
    pub version: u32,
    /// Normalized workload label (see [`normalize_label`]).
    pub workload: String,
    /// The session's base seed — with the label, the digest's identity.
    pub base_seed: u64,
    /// Settled evaluations the session ran.
    pub evaluations: usize,
    /// Clean (non-aborted) evaluations aggregated into `stats`.
    pub profiled: u64,
    /// Mean Table-6 statistics over the clean runs; `None` when every run
    /// aborted (such a digest stores observations but cannot be
    /// fingerprinted or retrieved).
    pub stats: Option<DerivedStats>,
    /// Every settled observation, in history order.
    pub observations: Vec<DigestObs>,
}

/// Normalizes a workload label the way the serving layer resolves
/// workload names: ASCII alphanumerics only, lowercased (`K-means` ==
/// `kmeans`).
pub fn normalize_label(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

impl SessionDigest {
    /// Extracts the digest of a settled session. `workload` is normalized;
    /// `base_seed` is the seed the session's seed chain started from.
    pub fn from_env(workload: &str, base_seed: u64, env: &TuningEnv) -> Self {
        let acc = env.stats_accumulator();
        SessionDigest {
            version: DIGEST_VERSION,
            workload: normalize_label(workload),
            base_seed,
            evaluations: env.evaluations(),
            profiled: acc.count(),
            stats: acc.mean(),
            observations: env
                .history()
                .iter()
                .map(|o| DigestObs {
                    config: o.config,
                    score_mins: o.score_mins,
                    censored: o.is_censored(),
                })
                .collect(),
        }
    }

    /// The digest's content address in the store: a canonical hash of the
    /// normalized label and base seed. Two runs of the same session land
    /// on the same key (dedup); different seeds of one workload are
    /// distinct store entries.
    pub fn key(&self) -> EvalKey {
        KeyBuilder::new("memory/v1")
            .field("workload", &self.workload)
            .field("base_seed", &self.base_seed)
            .finish()
    }

    /// The workload fingerprint, when the session produced at least one
    /// clean profile.
    pub fn fingerprint(&self) -> Option<Fingerprint> {
        self.stats.as_ref().map(Fingerprint::from_stats)
    }

    /// The best clean score, when any run finished (NaN-safe).
    pub fn best_clean_score(&self) -> Option<f64> {
        self.observations
            .iter()
            .filter(|o| !o.censored)
            .map(|o| o.score_mins)
            .min_by(f64::total_cmp)
    }

    /// Writes the digest to `path` atomically (temp file + rename, like a
    /// checkpoint), creating parent directories as needed. Concurrent
    /// savers to one path never tear: each writes its own temp file and
    /// the rename is atomic.
    pub fn save(&self, path: &Path) -> Result<()> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| Error::Tuning(format!("digest dir: {e}")))?;
            }
        }
        let tmp = path.with_extension(format!(
            "{}.{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let body = serde_json::to_string_pretty(self)
            .map_err(|e| Error::Tuning(format!("digest encode: {e}")))?;
        std::fs::write(&tmp, body).map_err(|e| Error::Tuning(format!("digest write: {e}")))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            Error::Tuning(format!("digest rename: {e}"))
        })
    }

    /// Reads a digest back, rejecting unknown schema versions.
    pub fn load(path: &Path) -> Result<Self> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| Error::Tuning(format!("digest read: {e}")))?;
        let digest: SessionDigest =
            serde_json::from_str(&body).map_err(|e| Error::Tuning(format!("digest parse: {e}")))?;
        if digest.version != DIGEST_VERSION {
            return Err(Error::Tuning(format!(
                "digest version {} unsupported (expected {DIGEST_VERSION})",
                digest.version
            )));
        }
        Ok(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_app::Engine;
    use relm_cluster::ClusterSpec;
    use relm_workloads::{max_resource_allocation, wordcount};

    fn settled_env() -> TuningEnv {
        let mut env = TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), wordcount(), 7);
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), env.app());
        env.evaluate(&cfg);
        let mut thin = cfg;
        thin.containers_per_node = 4;
        thin.heap = env.heap_for(4);
        env.evaluate(&thin);
        env
    }

    #[test]
    fn digest_captures_history_and_fingerprints() {
        let env = settled_env();
        let digest = SessionDigest::from_env("WordCount", 7, &env);
        assert_eq!(digest.workload, "wordcount");
        assert_eq!(digest.evaluations, 2);
        assert_eq!(digest.observations.len(), 2);
        assert!(digest.profiled >= 1);
        assert!(digest.fingerprint().is_some());
        assert!(digest.best_clean_score().is_some());
        // Identity is (label, seed) — not history contents.
        assert_eq!(
            digest.key(),
            SessionDigest::from_env("word-count", 7, &env).key()
        );
        assert_ne!(
            digest.key(),
            SessionDigest::from_env("WordCount", 8, &env).key()
        );
    }

    #[test]
    fn digest_round_trips_through_disk() {
        let env = settled_env();
        let digest = SessionDigest::from_env("WordCount", 7, &env);
        let dir = std::env::temp_dir().join(format!("relm_digest_{}", std::process::id()));
        let path = dir.join("s-0001.digest.json");
        digest.save(&path).unwrap();
        let loaded = SessionDigest::load(&path).unwrap();
        assert_eq!(loaded, digest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let env = settled_env();
        let mut digest = SessionDigest::from_env("WordCount", 7, &env);
        digest.version = 99;
        let dir = std::env::temp_dir().join(format!("relm_digest_v_{}", std::process::id()));
        let path = dir.join("bad.digest.json");
        digest.save(&path).unwrap();
        assert!(SessionDigest::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
