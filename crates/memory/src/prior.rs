//! Prior construction: turning retrieved past sessions into the
//! tuner-family-specific warm starts of §6.6.
//!
//! One [`PriorBundle`] serves all three families:
//!
//! * **BO/GBO** — [`PriorBundle::gp_obs`]: encoded `(x, y)` observations
//!   to seed a `GpFitter` (or `BayesOpt::with_warm_start`), re-weighted by
//!   similarity through *sample allocation*: a session at similarity `s`
//!   contributes `max(1, round(s · cap))` of its best observations
//!   (censored ones at their penalized scores, exactly as a live fitter
//!   sees its own history), so near-identical workloads dominate the
//!   prior and distant ones contribute only their incumbent.
//! * **RelM** — [`PriorBundle::stats`]: the similarity-weighted mean
//!   Table-6 statistics, ready for
//!   `RelmTuner::recommend_from_stats` — a white-box recommendation
//!   without paying for a profiling run.
//! * **DDPG** — [`PriorBundle::sessions`] keeps the retrieved digests
//!   (with their per-session similarity) so `relm-ddpg` can replay them
//!   into transitions and pre-fill its experience buffer.

use crate::digest::SessionDigest;
use crate::store::Retrieved;
use relm_common::Mem;
use relm_profile::DerivedStats;
use relm_surrogate::select_inducing;
use relm_tune::ConfigSpace;
use serde::{Deserialize, Serialize};

/// Default per-session observation allocation cap for the GP prior.
pub const DEFAULT_PRIOR_CAP: usize = 8;

/// Default total budget on GP prior observations. Retrieval today caps out
/// at `MEMORY_RETRIEVE_K · DEFAULT_PRIOR_CAP = 24` observations, so the
/// default budget never truncates — it exists as the backstop for larger
/// stores or raised caps, keeping warm-started fits off the O(n³) cliff.
pub const DEFAULT_PRIOR_BUDGET: usize = 32;

/// A warm-start prior built from retrieved past sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorBundle {
    /// Encoded `(x, y)` observations for GP seeding, similarity-allocated
    /// and deduplicated, ordered by retrieval rank then ascending score.
    pub gp_obs: Vec<(Vec<f64>, f64)>,
    /// Similarity-weighted mean Table-6 statistics across the retrieved
    /// sessions, for RelM's white-box models; `None` when no retrieved
    /// session carried stats.
    pub stats: Option<DerivedStats>,
    /// The retrieved sessions themselves, `(similarity, digest)`, in
    /// retrieval order — the raw material for replay-buffer seeding.
    pub sessions: Vec<(f64, SessionDigest)>,
    /// How many allocated observations the total budget dropped (0 when
    /// the prior fit within budget — always the case at today's defaults).
    #[serde(default)]
    pub truncated: usize,
}

impl PriorBundle {
    /// An empty prior (a cold start).
    pub fn empty() -> Self {
        PriorBundle {
            gp_obs: Vec::new(),
            stats: None,
            sessions: Vec::new(),
            truncated: 0,
        }
    }

    /// True when retrieval found nothing usable.
    pub fn is_empty(&self) -> bool {
        self.gp_obs.is_empty() && self.stats.is_none() && self.sessions.is_empty()
    }

    /// The best (lowest) seeded objective value, if any — a warm-start
    /// incumbent for EI thresholds before the session has history.
    pub fn best_y(&self) -> Option<f64> {
        self.gp_obs.iter().map(|(_, y)| *y).min_by(f64::total_cmp)
    }

    /// The encoded point of the best seeded observation — the incumbent a
    /// warm-started session should re-evaluate first (incumbent transfer):
    /// re-scoring the mapped workload's best-known configuration on the
    /// new workload anchors the surrogate where the prior claims the
    /// optimum lives.
    pub fn best_x(&self) -> Option<&[f64]> {
        self.gp_obs
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, _)| x.as_slice())
    }
}

/// Builds the prior from retrieval results (already similarity-ordered by
/// [`crate::MemoryStore::retrieve`]). `cap` bounds how many observations
/// the *most* similar session may contribute; a session at similarity `s`
/// contributes `max(1, round(s · cap))` of its best observations.
/// Censored observations participate with their penalized scores — the
/// same treatment a live guided fitter gives its own history, and the
/// prior's warning signs: the GP learns which regions time out without
/// re-paying for them. Best-first ordering still front-loads the clean
/// incumbents. Deterministic: observation selection orders by `(score,
/// history position)` and duplicate configurations (identical encoded
/// points) keep only their first, highest-rank occurrence.
pub fn build_prior(retrieved: &[Retrieved], space: &ConfigSpace, cap: usize) -> PriorBundle {
    build_prior_budgeted(retrieved, space, cap, DEFAULT_PRIOR_BUDGET)
}

/// [`build_prior`] with an explicit total budget on `gp_obs`. When the
/// per-session allocation exceeds `budget`, the kept subset is chosen by
/// the surrogate's deterministic greedy max–min selection
/// ([`relm_surrogate::select_inducing`]) seeded at the best-scoring
/// observation — space-filling coverage of the allocated points with the
/// incumbent always retained — and re-emitted in the original allocation
/// order (retrieval rank, then ascending score). [`PriorBundle::truncated`]
/// records how many observations the budget dropped.
pub fn build_prior_budgeted(
    retrieved: &[Retrieved],
    space: &ConfigSpace,
    cap: usize,
    budget: usize,
) -> PriorBundle {
    let mut gp_obs: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut seen: Vec<Vec<f64>> = Vec::new();
    for hit in retrieved {
        let quota = ((hit.similarity * cap as f64).round() as usize).max(1);
        let mut ranked: Vec<(usize, &crate::digest::DigestObs)> =
            hit.digest.observations.iter().enumerate().collect();
        // Stable sort: equal scores keep history order.
        ranked.sort_by(|a, b| a.1.score_mins.total_cmp(&b.1.score_mins));
        for (_, obs) in ranked.into_iter().take(quota) {
            let x = space.encode(&obs.config).to_vec();
            if seen.iter().any(|s| s == &x) {
                continue;
            }
            seen.push(x.clone());
            gp_obs.push((x, obs.score_mins));
        }
    }
    let mut truncated = 0;
    if budget > 0 && gp_obs.len() > budget {
        truncated = gp_obs.len() - budget;
        let points: Vec<Vec<f64>> = gp_obs.iter().map(|(x, _)| x.clone()).collect();
        let best = gp_obs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        // `select_inducing` returns sorted indices, so the kept subset
        // preserves the original rank-then-score ordering.
        let keep = select_inducing(&points, budget, best);
        gp_obs = keep.into_iter().map(|i| gp_obs[i].clone()).collect();
    }
    PriorBundle {
        gp_obs,
        stats: weighted_mean_stats(retrieved),
        sessions: retrieved
            .iter()
            .map(|hit| (hit.similarity, hit.digest.clone()))
            .collect(),
        truncated,
    }
}

/// Similarity-weighted mean of the retrieved sessions' statistics.
fn weighted_mean_stats(retrieved: &[Retrieved]) -> Option<DerivedStats> {
    let mut weight = 0.0;
    let mut containers = 0.0;
    let mut heap = 0.0;
    let mut cpu = 0.0;
    let mut disk = 0.0;
    let mut m_i = 0.0;
    let mut m_c = 0.0;
    let mut m_s = 0.0;
    let mut m_u = 0.0;
    let mut p = 0.0;
    let mut h = 0.0;
    let mut s = 0.0;
    let mut full_gc = 0.0;
    for hit in retrieved {
        let Some(stats) = &hit.digest.stats else {
            continue;
        };
        let w = hit.similarity;
        weight += w;
        containers += w * stats.containers_per_node as f64;
        heap += w * stats.heap.as_mb();
        cpu += w * stats.cpu_avg;
        disk += w * stats.disk_avg;
        m_i += w * stats.m_i.as_mb();
        m_c += w * stats.m_c.as_mb();
        m_s += w * stats.m_s.as_mb();
        m_u += w * stats.m_u.as_mb();
        p += w * stats.p as f64;
        h += w * stats.h;
        s += w * stats.s;
        if stats.m_u_from_full_gc {
            full_gc += w;
        }
    }
    if weight <= 0.0 {
        return None;
    }
    Some(DerivedStats {
        containers_per_node: ((containers / weight).round() as u32).max(1),
        heap: Mem::mb(heap / weight),
        cpu_avg: cpu / weight,
        disk_avg: disk / weight,
        m_i: Mem::mb(m_i / weight),
        m_c: Mem::mb(m_c / weight),
        m_s: Mem::mb(m_s / weight),
        m_u: Mem::mb(m_u / weight),
        p: ((p / weight).round() as u32).max(1),
        h: h / weight,
        s: s / weight,
        m_u_from_full_gc: full_gc * 2.0 >= weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::DigestObs;
    use relm_cluster::ClusterSpec;
    use relm_workloads::wordcount;

    fn space() -> ConfigSpace {
        ConfigSpace::for_app(&ClusterSpec::cluster_a(), &wordcount())
    }

    /// A retrieval hit whose digest holds `n` distinct observations.
    fn hit(seed: u64, similarity: f64, n: usize) -> Retrieved {
        let space = space();
        let unit = |i: u64| {
            let v = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(2654435761));
            (v % 997) as f64 / 996.0
        };
        let observations = (0..n as u64)
            .map(|i| DigestObs {
                config: space.decode(&[
                    unit(4 * i),
                    unit(4 * i + 1),
                    unit(4 * i + 2),
                    unit(4 * i + 3),
                ]),
                score_mins: 5.0 + unit(4 * i + 7) * 20.0,
                censored: false,
            })
            .collect();
        Retrieved {
            key: format!("{seed:032x}"),
            similarity,
            digest: SessionDigest {
                version: crate::digest::DIGEST_VERSION,
                workload: format!("wl{seed}"),
                base_seed: seed,
                evaluations: n,
                profiled: n as u64,
                stats: None,
                observations,
            },
        }
    }

    #[test]
    fn default_budget_never_truncates_todays_retrieval() {
        // MEMORY_RETRIEVE_K sessions at full similarity and the default cap
        // allocate at most 3 * 8 = 24 observations < DEFAULT_PRIOR_BUDGET,
        // so the default-path prior must be unaffected by the budget.
        let hits = vec![hit(1, 1.0, 40), hit(2, 1.0, 40), hit(3, 1.0, 40)];
        let prior = build_prior(&hits, &space(), DEFAULT_PRIOR_CAP);
        assert_eq!(prior.truncated, 0);
        assert!(prior.gp_obs.len() <= DEFAULT_PRIOR_BUDGET);
        let unbudgeted = build_prior_budgeted(&hits, &space(), DEFAULT_PRIOR_CAP, usize::MAX);
        assert_eq!(prior, unbudgeted);
    }

    #[test]
    fn budget_truncates_deterministically_and_keeps_the_incumbent() {
        let hits = vec![hit(10, 1.0, 30), hit(11, 1.0, 30), hit(12, 1.0, 30)];
        let full = build_prior_budgeted(&hits, &space(), 20, usize::MAX);
        let budget = 12;
        assert!(
            full.gp_obs.len() > budget,
            "test needs an over-budget prior"
        );

        let capped = build_prior_budgeted(&hits, &space(), 20, budget);
        assert_eq!(capped.gp_obs.len(), budget);
        assert_eq!(capped.truncated, full.gp_obs.len() - budget);
        // The incumbent survives truncation…
        assert_eq!(capped.best_y(), full.best_y());
        // …the kept set is an ordered subsequence of the full allocation…
        let mut cursor = full.gp_obs.iter();
        for obs in &capped.gp_obs {
            assert!(
                cursor.any(|o| o == obs),
                "budgeted prior must preserve allocation order"
            );
        }
        // …and the choice is deterministic.
        assert_eq!(capped, build_prior_budgeted(&hits, &space(), 20, budget));
    }

    #[test]
    fn zero_budget_means_unbounded() {
        let hits = vec![hit(7, 1.0, 30)];
        let capped = build_prior_budgeted(&hits, &space(), 20, 0);
        let full = build_prior_budgeted(&hits, &space(), 20, usize::MAX);
        assert_eq!(capped, full);
        assert_eq!(capped.truncated, 0);
    }
}
