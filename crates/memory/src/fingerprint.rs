//! Workload fingerprints: the Table-6 resource-statistics vector of a
//! session, normalized into a fixed-dimensional point so sessions can be
//! compared across workloads, heap sizes, and cluster shapes.
//!
//! The paper's own transfer argument (Table 6, §6.6) is that this compact
//! vector characterizes a workload well enough to carry knowledge across
//! applications: two workloads whose resource statistics are close respond
//! similarly to the same memory-configuration changes. The fingerprint
//! normalizes every memory pool by the profiled heap and every bounded
//! quantity by its range, so distance is scale-free and dominated by the
//! workload's *behavior* (cache pressure, shuffle volume, spill, GC
//! accuracy), not by the absolute hardware numbers.

use relm_profile::DerivedStats;
use serde::{Deserialize, Serialize};

/// Fingerprint dimensionality.
pub const FP_DIMS: usize = 12;

/// A workload's normalized resource-statistics vector.
///
/// Serializes transparently as a plain JSON array of `FP_DIMS` numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint(pub [f64; FP_DIMS]);

impl Fingerprint {
    /// Builds a fingerprint from a (mean) Table-6 statistics vector. Every
    /// coordinate is normalized to roughly `[0, 1]`; non-finite inputs
    /// (a degenerate profile) clamp to 0 so a corrupted session can never
    /// poison retrieval with NaN distances.
    pub fn from_stats(stats: &DerivedStats) -> Self {
        let heap = stats.heap.as_mb().max(1.0);
        let dims = [
            stats.cpu_avg / 100.0,
            stats.disk_avg / 100.0,
            stats.m_i.as_mb() / heap,
            stats.m_c.as_mb() / heap,
            stats.m_s.as_mb() / heap,
            stats.m_u.as_mb() / heap,
            stats.p as f64 / 8.0,
            stats.h,
            stats.s,
            stats.containers_per_node as f64 / 4.0,
            heap / 16_384.0,
            if stats.m_u_from_full_gc { 1.0 } else { 0.0 },
        ];
        Fingerprint(dims.map(|v| if v.is_finite() { v } else { 0.0 }))
    }

    /// Normalized Euclidean distance (root mean squared coordinate
    /// difference). Zero means identical statistics; commensurate across
    /// store generations because both sides are normalized the same way.
    pub fn distance(&self, other: &Fingerprint) -> f64 {
        let sum: f64 = self
            .0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / FP_DIMS as f64).sqrt()
    }

    /// Similarity weight in `(0, 1]`: `1 / (1 + distance)`. Identical
    /// fingerprints weigh 1; the weight decays smoothly with distance and
    /// never reaches zero, so even a far session contributes *something*
    /// when it is all the store has.
    pub fn similarity(&self, other: &Fingerprint) -> f64 {
        1.0 / (1.0 + self.distance(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Mem;

    fn stats() -> DerivedStats {
        DerivedStats {
            containers_per_node: 2,
            heap: Mem::mb(8808.0),
            cpu_avg: 40.0,
            disk_avg: 5.0,
            m_i: Mem::mb(120.0),
            m_c: Mem::mb(2000.0),
            m_s: Mem::mb(300.0),
            m_u: Mem::mb(700.0),
            p: 4,
            h: 0.8,
            s: 0.1,
            m_u_from_full_gc: true,
        }
    }

    #[test]
    fn self_distance_is_zero_and_similarity_one() {
        let fp = Fingerprint::from_stats(&stats());
        assert_eq!(fp.distance(&fp), 0.0);
        assert_eq!(fp.similarity(&fp), 1.0);
    }

    #[test]
    fn distance_is_symmetric_and_grows_with_divergence() {
        let a = Fingerprint::from_stats(&stats());
        let mut near_stats = stats();
        near_stats.cpu_avg = 45.0;
        let near = Fingerprint::from_stats(&near_stats);
        let mut far_stats = stats();
        far_stats.cpu_avg = 95.0;
        far_stats.h = 0.0;
        far_stats.s = 0.9;
        let far = Fingerprint::from_stats(&far_stats);
        assert_eq!(a.distance(&near), near.distance(&a));
        assert!(a.distance(&near) < a.distance(&far));
        assert!(a.similarity(&near) > a.similarity(&far));
    }

    #[test]
    fn non_finite_stats_clamp_to_zero() {
        let mut s = stats();
        s.cpu_avg = f64::NAN;
        s.h = f64::INFINITY;
        let fp = Fingerprint::from_stats(&s);
        assert!(fp.0.iter().all(|v| v.is_finite()));
        let other = Fingerprint::from_stats(&stats());
        assert!(fp.distance(&other).is_finite());
    }
}
