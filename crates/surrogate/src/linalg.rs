//! Minimal dense linear algebra: symmetric positive-definite solves via
//! Cholesky factorization — all that Gaussian-process inference needs.
//!
//! The factor is stored as a packed row-major lower triangle (`n(n+1)/2`
//! doubles instead of `n²`), the jitter escalation of [`Cholesky::with_jitter`]
//! is applied arithmetically during the factorization instead of copying the
//! input matrix per attempt, and [`Cholesky::solve`] fuses the forward and
//! backward substitutions into one buffer. All code paths produce results
//! bit-identical to the textbook two-triangle formulation they replaced —
//! the tuning pipeline's byte-identical-history invariant depends on it.

use relm_common::{Error, Result};

/// A dense square matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Builds a matrix from a generator function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Resets to an `n × n` zero matrix, reusing the allocation when it
    /// already fits.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
    }
}

/// Offset of row `i` in a packed row-major lower triangle.
#[inline]
fn row_start(i: usize) -> usize {
    i * (i + 1) / 2
}

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix: `A = L Lᵀ`, stored packed (lower triangle only).
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Packed row-major lower triangle of `L`.
    l: Vec<f64>,
    /// Diagonal jitter baked into the factorization (`0` for [`Cholesky::new`]).
    jitter: f64,
    /// Escalation attempts [`Cholesky::with_jitter`] needed beyond the first.
    jitter_retries: u32,
}

impl Cholesky {
    /// Factorizes `a`. Fails with [`Error::Numerical`] if the matrix is not
    /// positive definite (callers typically retry with added jitter).
    pub fn new(a: &Matrix) -> Result<Self> {
        let l = factor(a, 0.0)?;
        Ok(Cholesky {
            n: a.n(),
            l,
            jitter: 0.0,
            jitter_retries: 0,
        })
    }

    /// Factorizes `a + jitter·I`, escalating the jitter until the
    /// factorization succeeds (up to a bound). The jitter is added
    /// arithmetically inside the factorization — `a` is never copied or
    /// mutated, no matter how many escalations are needed.
    pub fn with_jitter(a: &Matrix, base_jitter: f64) -> Result<Self> {
        let mut jitter = base_jitter;
        for attempt in 0..8 {
            if let Ok(l) = factor(a, jitter) {
                return Ok(Cholesky {
                    n: a.n(),
                    l,
                    jitter,
                    jitter_retries: attempt,
                });
            }
            jitter *= 10.0;
        }
        Err(Error::Numerical("Cholesky failed even with jitter".into()))
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` (zero above the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if j > i {
            0.0
        } else {
            self.l[row_start(i) + j]
        }
    }

    /// The diagonal jitter the factorization was built with.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// How many jitter escalations [`Cholesky::with_jitter`] consumed.
    pub fn jitter_retries(&self) -> u32 {
        self.jitter_retries
    }

    /// Extends the factor by one row: given the covariances `row` of a new
    /// point against the already-factored points and its variance `diag`
    /// (the factor's jitter is added internally), appends row `n` of the
    /// factor in O(n²). The result is bit-identical to refactorizing the
    /// extended matrix from scratch at the same jitter; fails when the new
    /// pivot is not positive (callers then fall back to a full, possibly
    /// jitter-escalated refactorization).
    pub fn append_row(&mut self, row: &[f64], diag: f64) -> Result<()> {
        assert_eq!(row.len(), self.n, "appended row must cover existing points");
        let n = self.n;
        let start = self.l.len();
        self.l.reserve(n + 1);
        for (j, &rowj) in row.iter().enumerate() {
            let rj = row_start(j);
            // Disjoint contiguous views of the new (partial) row and row j:
            // the inner product runs over two slices with no bounds checks,
            // subtracting term by term in k order exactly as before.
            let (head, tail) = self.l.split_at(start);
            let sum = sub_products(rowj, &tail[..j], &head[rj..rj + j]);
            self.l.push(sum / head[rj + j]);
        }
        let mut sum = diag + self.jitter;
        for &v in &self.l[start..start + n] {
            sum -= v * v;
        }
        if sum <= 0.0 {
            self.l.truncate(start);
            return Err(Error::Numerical(format!(
                "matrix not positive definite at appended pivot {n} (residual {sum})"
            )));
        }
        self.l.push(sum.sqrt());
        self.n += 1;
        Ok(())
    }

    /// Solves `L z = b` (forward substitution).
    pub fn solve_l(&self, b: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.n];
        self.solve_l_into(b, &mut z);
        z
    }

    /// Forward substitution into a caller-owned buffer (`out.len() == n`),
    /// for hot paths that reuse allocations.
    pub fn solve_l_into(&self, b: &[f64], out: &mut [f64]) {
        for (i, &bi) in b[..self.n].iter().enumerate() {
            let ri = row_start(i);
            // Solved prefix vs the entry being solved: disjoint slices, so
            // the row·solution product is a bounds-check-free zip.
            let (done, rest) = out.split_at_mut(i);
            let sum = sub_products(bi, &self.l[ri..ri + i], done);
            rest[0] = sum / self.l[ri + i];
        }
    }

    /// Solves `A x = b` via `L Lᵀ x = b`, fusing the forward and backward
    /// substitutions into a single output buffer (no intermediate vector).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Fused solve into a caller-owned buffer (`out.len() == n`).
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        let n = self.n;
        self.solve_l_into(b, out);
        // Back substitution in place: Lᵀ x = z.
        for i in (0..n).rev() {
            let mut sum = out[i];
            for (k, xk) in out.iter().enumerate().skip(i + 1) {
                sum -= self.l[row_start(k) + i] * xk;
            }
            out[i] = sum / self.l[row_start(i) + i];
        }
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[row_start(i) + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// `sum − Σ aₖ·bₖ`, subtracting term by term in index order — the exact
/// update sequence of the textbook loops this module replaced, expressed
/// over two equal-length slices so the compiler drops the bounds checks
/// and unrolls/vectorizes the products.
#[inline]
fn sub_products(mut sum: f64, a: &[f64], b: &[f64]) -> f64 {
    for (x, y) in a.iter().zip(b) {
        sum -= x * y;
    }
    sum
}

/// The packed factorization kernel: factors `a + jitter·I` reading only the
/// lower triangle of `a`. Inner loops run over two contiguous packed rows,
/// split into disjoint slices so the hot products carry no bounds checks.
fn factor(a: &Matrix, jitter: f64) -> Result<Vec<f64>> {
    let n = a.n();
    let mut l = vec![0.0; row_start(n)];
    for i in 0..n {
        let ri = row_start(i);
        // Rows 0..i are finished; row i is being filled. Splitting at the
        // row boundary yields one view of the settled rows and one of the
        // in-progress row — provably disjoint, so both stay slices.
        let (head, row_i) = l.split_at_mut(ri);
        for j in 0..i {
            let rj = row_start(j);
            let sum = sub_products(a.get(i, j), &row_i[..j], &head[rj..rj + j]);
            row_i[j] = sum / head[rj + j];
        }
        let sum = sub_products(a.get(i, i) + jitter, &row_i[..i], &row_i[..i]);
        if sum <= 0.0 {
            return Err(Error::Numerical(format!(
                "matrix not positive definite at pivot {i} (residual {sum})"
            )));
        }
        row_i[i] = sum.sqrt();
    }
    Ok(l)
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for B = [[1,2,0],[0,1,1],[1,0,1]].
        let b = [[1.0, 2.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]];
        Matrix::from_fn(3, |i, j| {
            let mut s = 0.0;
            for row in b.iter() {
                s += row[i] * row[j];
            }
            s + if i == j { 1.0 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += c.get(i, k) * c.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn log_det_matches_product_of_pivots() {
        let a = Matrix::from_fn(2, |i, j| if i == j { 4.0 } else { 0.0 });
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn non_pd_is_rejected_then_fixed_by_jitter() {
        let a = Matrix::from_fn(2, |_, _| 1.0); // rank 1, singular
        assert!(Cholesky::new(&a).is_err());
        let c = Cholesky::with_jitter(&a, 1e-8).unwrap();
        assert!(c.jitter() >= 1e-8);
    }

    #[test]
    fn jitter_escalation_leaves_input_unchanged_and_matches_explicit_copy() {
        // Regression for the old per-attempt matrix rebuild: the in-place
        // escalation must (a) not touch the input and (b) return exactly the
        // factor that factorizing an explicitly jittered copy would produce.
        let a = Matrix::from_fn(3, |i, j| if i == j { 1.0 } else { 1.0 - 1e-12 });
        let before = a.clone();
        let c = Cholesky::with_jitter(&a, 1e-8).unwrap();
        assert_eq!(a, before, "with_jitter must not mutate its input");

        let jittered = Matrix::from_fn(3, |i, j| {
            a.get(i, j) + if i == j { c.jitter() } else { 0.0 }
        });
        let explicit = Cholesky::new(&jittered).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    c.get(i, j).to_bits(),
                    explicit.get(i, j).to_bits(),
                    "factor differs from explicit-copy factorization at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn with_jitter_counts_retries() {
        let easy = spd3();
        assert_eq!(
            Cholesky::with_jitter(&easy, 1e-8).unwrap().jitter_retries(),
            0
        );
        // Indefinite (eigenvalue −1e-3): the first jitter attempts fail.
        let indefinite = Matrix::from_fn(2, |i, j| if i == j { 1.0 } else { 1.001 });
        let c = Cholesky::with_jitter(&indefinite, 1e-8).unwrap();
        assert!(c.jitter_retries() > 0);
        assert!(c.jitter() > 1e-8);
    }

    #[test]
    fn append_row_matches_full_refactorization() {
        // Factor the leading 3×3 block of a 4×4 SPD matrix, append the last
        // row, and compare bitwise against factoring the whole matrix.
        let b = [
            [1.0, 2.0, 0.0, 1.0],
            [0.0, 1.0, 1.0, 2.0],
            [1.0, 0.0, 1.0, 0.5],
            [0.5, 1.0, 0.0, 1.0],
        ];
        let full = Matrix::from_fn(4, |i, j| {
            let mut s = 0.0;
            for row in b.iter() {
                s += row[i] * row[j];
            }
            s + if i == j { 1.0 } else { 0.0 }
        });
        let lead = Matrix::from_fn(3, |i, j| full.get(i, j));
        let mut grown = Cholesky::new(&lead).unwrap();
        let row: Vec<f64> = (0..3).map(|j| full.get(3, j)).collect();
        grown.append_row(&row, full.get(3, 3)).unwrap();
        let scratch = Cholesky::new(&full).unwrap();
        assert_eq!(grown.n(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    grown.get(i, j).to_bits(),
                    scratch.get(i, j).to_bits(),
                    "appended factor differs at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn failed_append_leaves_factor_usable() {
        let a = Matrix::from_fn(2, |i, j| if i == j { 1.0 } else { 0.0 });
        let mut c = Cholesky::new(&a).unwrap();
        // A duplicate of row 0 with zero variance cannot extend the factor.
        assert!(c.append_row(&[1.0, 0.0], 1.0).is_err());
        assert_eq!(c.n(), 2, "failed append must roll back");
        let x = c.solve(&[1.0, 2.0]);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn solve_into_reuses_buffers_bitwise() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = [0.3, -1.7, 2.2];
        let fresh = c.solve(&b);
        let mut buf = vec![9.0; 3];
        c.solve_into(&b, &mut buf);
        for (x, y) in fresh.iter().zip(&buf) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
