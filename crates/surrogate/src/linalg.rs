//! Minimal dense linear algebra: symmetric positive-definite solves via
//! Cholesky factorization — all that Gaussian-process inference needs.

use relm_common::{Error, Result};

/// A dense square matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Builds a matrix from a generator function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, f(i, j));
            }
        }
        m
    }
}

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix: `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`. Fails with [`Error::Numerical`] if the matrix is not
    /// positive definite (callers typically retry with added jitter).
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.n();
        let mut l = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(Error::Numerical(format!(
                            "matrix not positive definite at pivot {i} (residual {sum})"
                        )));
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a + jitter·I`, escalating the jitter until the
    /// factorization succeeds (up to a bound).
    pub fn with_jitter(a: &Matrix, base_jitter: f64) -> Result<Self> {
        let mut jitter = base_jitter;
        for _ in 0..8 {
            let n = a.n();
            let jittered =
                Matrix::from_fn(n, |i, j| a.get(i, j) + if i == j { jitter } else { 0.0 });
            if let Ok(c) = Cholesky::new(&jittered) {
                return Ok(c);
            }
            jitter *= 10.0;
        }
        Err(Error::Numerical("Cholesky failed even with jitter".into()))
    }

    /// The factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L z = b` (forward substitution).
    #[allow(clippy::needless_range_loop)] // triangular index math reads clearest as loops
    pub fn solve_l(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.n();
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * z[k];
            }
            z[i] = sum / self.l.get(i, i);
        }
        z
    }

    /// Solves `A x = b` via `L Lᵀ x = b`.
    #[allow(clippy::needless_range_loop)] // triangular index math reads clearest as loops
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.n();
        let z = self.solve_l(b);
        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.n()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for B = [[1,2,0],[0,1,1],[1,0,1]].
        let b = [[1.0, 2.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]];
        Matrix::from_fn(3, |i, j| {
            let mut s = 0.0;
            for row in b.iter() {
                s += row[i] * row[j];
            }
            s + if i == j { 1.0 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.l();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn log_det_matches_product_of_pivots() {
        let a = Matrix::from_fn(2, |i, j| if i == j { 4.0 } else { 0.0 });
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn non_pd_is_rejected_then_fixed_by_jitter() {
        let a = Matrix::from_fn(2, |_, _| 1.0); // rank 1, singular
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::with_jitter(&a, 1e-8).is_ok());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
