//! Gaussian-process regression (§5.1).
//!
//! The prior is `f(x) ~ GP(μ₀, k)` with a constant mean (the sample mean of
//! the standardized observations, i.e. zero) and a squared-exponential ARD
//! kernel. Posterior mean and variance follow Equation 6; hyperparameters
//! (per-dimension lengthscales, signal variance, observation noise) are
//! selected by maximizing the log marginal likelihood over a seeded random
//! search refined by coordinate descent.

use crate::linalg::{dot, Cholesky, Matrix};
use crate::Surrogate;
use relm_common::{Error, Result, Rng};

/// Kernel + noise hyperparameters, stored in log space.
#[derive(Debug, Clone, PartialEq)]
pub struct GpParams {
    /// Per-dimension log lengthscales.
    pub log_lengthscales: Vec<f64>,
    /// Log signal variance.
    pub log_signal_var: f64,
    /// Log observation-noise variance.
    pub log_noise_var: f64,
}

impl GpParams {
    /// A reasonable default for inputs normalized to `[0, 1]`.
    pub fn default_for(dims: usize) -> Self {
        GpParams {
            log_lengthscales: vec![(0.4f64).ln(); dims],
            log_signal_var: 0.0,
            log_noise_var: (1e-2f64).ln(),
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut s = 0.0;
        for ((x, y), log_l) in a.iter().zip(b).zip(&self.log_lengthscales) {
            let l = log_l.exp();
            let d = (x - y) / l;
            s += d * d;
        }
        self.log_signal_var.exp() * (-0.5 * s).exp()
    }
}

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct Gp {
    x: Vec<Vec<f64>>,
    params: GpParams,
    chol: Cholesky,
    alpha: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
}

impl Gp {
    /// Fits a GP to the observations, selecting hyperparameters by marginal
    /// likelihood. `x` rows must share a dimensionality; `y.len() == x.len()`.
    pub fn fit(x: Vec<Vec<f64>>, y: &[f64], seed: u64) -> Result<Gp> {
        if x.is_empty() || x.len() != y.len() {
            return Err(Error::Numerical(
                "GP needs matching, non-empty inputs".into(),
            ));
        }
        let dims = x[0].len();
        if x.iter().any(|r| r.len() != dims) {
            return Err(Error::Numerical("inconsistent input dimensionality".into()));
        }

        // Standardize targets.
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        let y_scale = var.sqrt().max(1e-9);
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_scale).collect();

        // Hyperparameter search: seeded random proposals around the default,
        // then coordinate refinement of the winner.
        let mut rng = Rng::new(seed ^ 0x6A09_E667);
        let mut best = GpParams::default_for(dims);
        let mut best_lml = log_marginal_likelihood(&x, &ys, &best).unwrap_or(f64::NEG_INFINITY);

        for _ in 0..24 {
            let cand = GpParams {
                log_lengthscales: (0..dims)
                    .map(|_| rng.uniform_in((0.05f64).ln(), (2.0f64).ln()))
                    .collect(),
                log_signal_var: rng.uniform_in((0.2f64).ln(), (3.0f64).ln()),
                log_noise_var: rng.uniform_in((1e-4f64).ln(), (0.3f64).ln()),
            };
            if let Ok(lml) = log_marginal_likelihood(&x, &ys, &cand) {
                if lml > best_lml {
                    best_lml = lml;
                    best = cand;
                }
            }
        }

        // Coordinate descent, two sweeps.
        for _ in 0..2 {
            for coord in 0..(dims + 2) {
                for step in [-0.4, 0.4, -0.15, 0.15] {
                    let mut cand = best.clone();
                    match coord {
                        c if c < dims => cand.log_lengthscales[c] += step,
                        c if c == dims => cand.log_signal_var += step,
                        _ => cand.log_noise_var += step,
                    }
                    if let Ok(lml) = log_marginal_likelihood(&x, &ys, &cand) {
                        if lml > best_lml {
                            best_lml = lml;
                            best = cand;
                        }
                    }
                }
            }
        }

        let k = gram(&x, &best);
        let chol = Cholesky::with_jitter(&k, 1e-8)?;
        let alpha = chol.solve(&ys);
        Ok(Gp {
            x,
            params: best,
            chol,
            alpha,
            y_mean,
            y_scale,
        })
    }

    /// Posterior mean and variance at `x` (Equation 6), in the original
    /// target units.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self.x.iter().map(|xi| self.params.kernel(xi, x)).collect();
        let mean_std = dot(&k_star, &self.alpha);
        let v = self.chol.solve_l(&k_star);
        let k_xx = self.params.kernel(x, x) + self.params.log_noise_var.exp();
        let var_std = (k_xx - dot(&v, &v)).max(1e-12);
        (
            self.y_mean + self.y_scale * mean_std,
            var_std * self.y_scale * self.y_scale,
        )
    }

    /// The selected hyperparameters.
    pub fn params(&self) -> &GpParams {
        &self.params
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the GP holds no training points (cannot happen after a
    /// successful [`Gp::fit`]).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

impl Surrogate for Gp {
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        Gp::predict(self, x)
    }
}

fn gram(x: &[Vec<f64>], params: &GpParams) -> Matrix {
    let n = x.len();
    let noise = params.log_noise_var.exp();
    Matrix::from_fn(n, |i, j| {
        params.kernel(&x[i], &x[j]) + if i == j { noise + 1e-10 } else { 0.0 }
    })
}

/// Log marginal likelihood of standardized targets under the kernel.
pub fn log_marginal_likelihood(x: &[Vec<f64>], ys: &[f64], params: &GpParams) -> Result<f64> {
    let k = gram(x, params);
    let chol = Cholesky::new(&k)?;
    let alpha = chol.solve(ys);
    let n = ys.len() as f64;
    Ok(-0.5 * dot(ys, &alpha) - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 6.0).sin() + 2.0).collect();
        let gp = Gp::fit(x.clone(), &y, 1).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            assert!((m - yi).abs() < 0.25, "predicted {m} for target {yi}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = vec![vec![0.2], vec![0.3], vec![0.4]];
        let y = vec![1.0, 1.2, 1.1];
        let gp = Gp::fit(x, &y, 2).unwrap();
        let (_, var_near) = gp.predict(&[0.3]);
        let (_, var_far) = gp.predict(&[0.95]);
        assert!(
            var_far > var_near,
            "far variance {var_far} <= near {var_near}"
        );
    }

    #[test]
    fn variance_is_non_negative_everywhere() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0]).collect();
        let gp = Gp::fit(x, &y, 3).unwrap();
        for i in 0..50 {
            let (_, var) = gp.predict(&[i as f64 / 49.0]);
            assert!(var >= 0.0);
        }
    }

    #[test]
    fn fits_multidimensional_smooth_functions() {
        let mut rng = Rng::new(7);
        let x: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![rng.uniform(), rng.uniform(), rng.uniform()])
            .collect();
        let f = |v: &[f64]| 3.0 * v[0] - 2.0 * v[1] * v[1] + (v[2] * 3.0).sin();
        let y: Vec<f64> = x.iter().map(|v| f(v)).collect();
        let gp = Gp::fit(x, &y, 4).unwrap();
        let mut err = 0.0;
        let mut count = 0;
        for _ in 0..30 {
            let p = vec![rng.uniform(), rng.uniform(), rng.uniform()];
            let (m, _) = gp.predict(&p);
            err += (m - f(&p)).abs();
            count += 1;
        }
        assert!(
            err / (count as f64) < 0.5,
            "mean abs error too high: {}",
            err / count as f64
        );
    }

    #[test]
    fn rejects_empty_and_mismatched_inputs() {
        assert!(Gp::fit(vec![], &[], 1).is_err());
        assert!(Gp::fit(vec![vec![0.1]], &[1.0, 2.0], 1).is_err());
        assert!(Gp::fit(vec![vec![0.1], vec![0.1, 0.2]], &[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn handles_duplicate_inputs_gracefully() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = Gp::fit(x, &y, 5).unwrap();
        let (m, v) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.2);
        assert!(v.is_finite());
    }

    #[test]
    fn constant_targets_do_not_blow_up() {
        let x = grid_1d(5);
        let y = vec![2.0; 5];
        let gp = Gp::fit(x, &y, 6).unwrap();
        let (m, v) = gp.predict(&[0.33]);
        assert!((m - 2.0).abs() < 1e-3);
        assert!(v.is_finite());
    }
}
