//! Gaussian-process regression (§5.1).
//!
//! The prior is `f(x) ~ GP(μ₀, k)` with a constant mean (the sample mean of
//! the standardized observations, i.e. zero) and a squared-exponential ARD
//! kernel. Posterior mean and variance follow Equation 6; hyperparameters
//! (per-dimension lengthscales, signal variance, observation noise) are
//! selected by maximizing the log marginal likelihood over a seeded random
//! search refined by coordinate descent.
//!
//! The hot path is organized around [`GpFitter`], which owns a
//! [`GramCache`] of pairwise differences so the ~136 likelihood evaluations
//! per fit assemble their Gram matrices with one `exp` per pair, scores the
//! random proposals on a bounded thread pool ([`crate::scoring::par_map`]),
//! and — between hyperparameter re-tunes — extends the previous Cholesky
//! factor by one row per new observation instead of refactorizing. Every
//! path is bit-identical to the original serial from-scratch fit; the
//! property tests in this module and the byte-identical-trace gates in
//! `scripts/check.sh` hold it to that.
//!
//! For large histories an opt-in [`SparsePolicy`] (see
//! [`GpFitter::with_policy`]) bounds the fit to a deterministic inducing
//! subset — exact and byte-identical at or below the policy threshold,
//! subset-of-data above it, with cost O(n·m + m³) instead of O(n³).

use crate::gram::GramCache;
use crate::linalg::{dot, Cholesky, Matrix};
use crate::scoring::par_map;
use crate::sparse::{select_inducing, SparsePolicy};
use crate::Surrogate;
use relm_common::{Error, Result, Rng};

/// Kernel + noise hyperparameters, stored in log space.
#[derive(Debug, Clone, PartialEq)]
pub struct GpParams {
    /// Per-dimension log lengthscales.
    pub log_lengthscales: Vec<f64>,
    /// Log signal variance.
    pub log_signal_var: f64,
    /// Log observation-noise variance.
    pub log_noise_var: f64,
}

impl GpParams {
    /// A reasonable default for inputs normalized to `[0, 1]`.
    pub fn default_for(dims: usize) -> Self {
        GpParams {
            log_lengthscales: vec![(0.4f64).ln(); dims],
            log_signal_var: 0.0,
            log_noise_var: (1e-2f64).ln(),
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut s = 0.0;
        for ((x, y), log_l) in a.iter().zip(b).zip(&self.log_lengthscales) {
            let l = log_l.exp();
            let d = (x - y) / l;
            s += d * d;
        }
        self.log_signal_var.exp() * (-0.5 * s).exp()
    }
}

/// Standardizes targets: returns `(mean, scale, standardized)`.
fn standardize(y: &[f64]) -> (f64, f64, Vec<f64>) {
    let mut ys = Vec::new();
    let (y_mean, y_scale) = standardize_into(y, &mut ys);
    (y_mean, y_scale, ys)
}

/// [`standardize`] into a reused buffer — the fitter's refit path calls
/// this once per observation batch and must not reallocate each time.
fn standardize_into(y: &[f64], out: &mut Vec<f64>) -> (f64, f64) {
    let y_mean = y.iter().sum::<f64>() / y.len() as f64;
    let var = y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / y.len() as f64;
    let y_scale = var.sqrt().max(1e-9);
    out.clear();
    out.extend(y.iter().map(|v| (v - y_mean) / y_scale));
    (y_mean, y_scale)
}

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct Gp {
    x: Vec<Vec<f64>>,
    params: GpParams,
    chol: Cholesky,
    alpha: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
    /// Exponentiated lengthscales, hoisted out of the per-pair kernel loop.
    ls: Vec<f64>,
    /// `exp(log_signal_var)`.
    sv: f64,
    /// `exp(log_noise_var)`.
    noise: f64,
}

impl Gp {
    /// Fits a GP to the observations, selecting hyperparameters by marginal
    /// likelihood. `x` rows must share a dimensionality; `y.len() == x.len()`.
    pub fn fit(x: Vec<Vec<f64>>, y: &[f64], seed: u64) -> Result<Gp> {
        Gp::fit_threaded(x, y, seed, 1)
    }

    /// [`Gp::fit`] with hyperparameter proposals scored on up to `threads`
    /// scoped threads. The result is bit-identical at every thread count.
    pub fn fit_threaded(x: Vec<Vec<f64>>, y: &[f64], seed: u64, threads: usize) -> Result<Gp> {
        if x.is_empty() || x.len() != y.len() {
            return Err(Error::Numerical(
                "GP needs matching, non-empty inputs".into(),
            ));
        }
        let mut fitter = GpFitter::new(threads);
        for (xi, yi) in x.into_iter().zip(y) {
            fitter.observe(xi, *yi)?;
        }
        fitter.fit_full(seed)
    }

    /// Fits with fixed hyperparameters (no marginal-likelihood search) —
    /// the reference the incremental refit path is tested against.
    pub fn fit_with_params(x: Vec<Vec<f64>>, y: &[f64], params: GpParams) -> Result<Gp> {
        if x.is_empty() || x.len() != y.len() {
            return Err(Error::Numerical(
                "GP needs matching, non-empty inputs".into(),
            ));
        }
        let dims = x[0].len();
        if x.iter().any(|r| r.len() != dims) {
            return Err(Error::Numerical("inconsistent input dimensionality".into()));
        }
        let (y_mean, y_scale, ys) = standardize(y);
        let cache = GramCache::new(&x);
        let mut k = Matrix::zeros(0);
        cache.assemble_fresh_into(&params, &mut k);
        let chol = Cholesky::with_jitter(&k, 1e-8)?;
        let alpha = chol.solve(&ys);
        Ok(Gp::assemble(x, params, chol, alpha, y_mean, y_scale))
    }

    /// Builds the struct, hoisting the exponentiated hyperparameters the
    /// predict loop uses.
    fn assemble(
        x: Vec<Vec<f64>>,
        params: GpParams,
        chol: Cholesky,
        alpha: Vec<f64>,
        y_mean: f64,
        y_scale: f64,
    ) -> Gp {
        let ls = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        Gp {
            x,
            params,
            chol,
            alpha,
            y_mean,
            y_scale,
            ls,
            sv,
            noise,
        }
    }

    /// The kernel with hoisted lengthscales — the same accumulation order as
    /// [`GpParams::kernel`], so the value is identical to the last bit.
    #[inline]
    fn k(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut s = 0.0;
        for ((x, y), l) in a.iter().zip(b).zip(&self.ls) {
            let d = (x - y) / l;
            s += d * d;
        }
        self.sv * (-0.5 * s).exp()
    }

    /// Posterior mean and variance at `x` (Equation 6), in the original
    /// target units.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self.x.iter().map(|xi| self.k(xi, x)).collect();
        let mean_std = dot(&k_star, &self.alpha);
        let v = self.chol.solve_l(&k_star);
        let k_xx = self.k(x, x) + self.noise;
        let var_std = (k_xx - dot(&v, &v)).max(1e-12);
        (
            self.y_mean + self.y_scale * mean_std,
            var_std * self.y_scale * self.y_scale,
        )
    }

    /// Batched prediction reusing the `k*` and forward-solve buffers across
    /// queries. Bit-identical to calling [`Gp::predict`] per point.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let n = self.x.len();
        let mut k_star = vec![0.0; n];
        let mut v = vec![0.0; n];
        xs.iter()
            .map(|q| {
                for (ks, xi) in k_star.iter_mut().zip(&self.x) {
                    *ks = self.k(xi, q);
                }
                let mean_std = dot(&k_star, &self.alpha);
                self.chol.solve_l_into(&k_star, &mut v);
                let k_xx = self.k(q, q) + self.noise;
                let var_std = (k_xx - dot(&v, &v)).max(1e-12);
                (
                    self.y_mean + self.y_scale * mean_std,
                    var_std * self.y_scale * self.y_scale,
                )
            })
            .collect()
    }

    /// The selected hyperparameters.
    pub fn params(&self) -> &GpParams {
        &self.params
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the GP holds no training points (cannot happen after a
    /// successful [`Gp::fit`]).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

impl Surrogate for Gp {
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        Gp::predict(self, x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        Gp::predict_batch(self, xs)
    }
}

/// Counters accumulated by a [`GpFitter`] — the deltas feed the
/// `surrogate.*` observability metrics recorded by the tuners.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpFitStats {
    /// Full hyperparameter-search fits.
    pub full_fits: u64,
    /// Incremental (Cholesky row-append) refits.
    pub incremental_fits: u64,
    /// Gram matrices assembled (memoized + fresh).
    pub gram_builds: u64,
    /// Per-dimension Gram contributions served from the memo.
    pub gram_reused_dims: u64,
    /// Jitter escalation attempts consumed by final factorizations.
    pub chol_jitter_retries: u64,
    /// Fits (full or refit) served by the sparse inducing-subset path.
    pub sparse_fits: u64,
}

/// The previous fit a [`GpFitter`] can cheaply refresh: hyperparameters
/// plus — on the exact path — the factorization to extend incrementally.
#[derive(Debug, Clone)]
struct LastFit {
    params: GpParams,
    /// The exact-path factor ([`None`] after a sparse fit: the subset is
    /// re-selected per refit, so there is nothing to extend).
    chol: Option<Cholesky>,
    /// The seed of the full fit that selected `params` — re-derives the
    /// sparse inducing-set start point on refits.
    seed: u64,
}

/// Incremental GP fitting over a growing dataset.
///
/// Owns the [`GramCache`] so successive fits — BO performs one per
/// iteration on the same (extended) dataset — reuse the pairwise
/// differences, and keeps the last accepted factorization so
/// [`GpFitter::refit`] can append rows in O(n²) instead of re-running the
/// O(n³) hyperparameter search. `refit` is bit-identical to a from-scratch
/// [`Gp::fit_with_params`] at the retained hyperparameters.
///
/// With a non-default [`SparsePolicy`] (see [`GpFitter::with_policy`]),
/// datasets above the policy threshold are fitted on a deterministic
/// inducing subset ([`select_inducing`]) instead of exactly: fit cost
/// stays O(n·m + m³) with `m = policy.inducing` no matter how large the
/// history grows. At or below the threshold the fitter runs the exact
/// path and is byte-identical to a policy-free fitter.
#[derive(Debug, Clone)]
pub struct GpFitter {
    cache: GramCache,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    /// Input dimensionality (0 until the first observation).
    dims: usize,
    threads: usize,
    policy: SparsePolicy,
    scratch: Matrix,
    /// Reused kernel-row buffer for the incremental append path.
    row_scratch: Vec<f64>,
    /// Reused standardized-target buffer.
    ys_scratch: Vec<f64>,
    stats: GpFitStats,
    last: Option<LastFit>,
}

impl GpFitter {
    /// A fitter scoring hyperparameter proposals on up to `threads` threads
    /// (1 = serial; results are identical either way).
    pub fn new(threads: usize) -> Self {
        GpFitter {
            cache: GramCache::new(&[]),
            x: Vec::new(),
            y: Vec::new(),
            dims: 0,
            threads,
            policy: SparsePolicy::exact(),
            scratch: Matrix::zeros(0),
            row_scratch: Vec::new(),
            ys_scratch: Vec::new(),
            stats: GpFitStats::default(),
            last: None,
        }
    }

    /// Sets the sparse large-n policy (builder style). The default is
    /// [`SparsePolicy::exact`] — never approximate.
    pub fn with_policy(mut self, policy: SparsePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active sparse policy.
    pub fn policy(&self) -> SparsePolicy {
        self.policy
    }

    /// Appends one observation, extending the difference cache in O(n·dims).
    /// Once the dataset outgrows the sparse-policy threshold the pairwise
    /// cache is dropped — the sparse path re-selects its subset per fit, so
    /// keeping the O(n²) difference arrays current would be pure waste.
    pub fn observe(&mut self, x: Vec<f64>, y: f64) -> Result<()> {
        if self.y.is_empty() {
            self.dims = x.len();
        } else if x.len() != self.dims {
            return Err(Error::Numerical("inconsistent input dimensionality".into()));
        }
        if self.policy.applies(self.y.len() + 1) {
            if !self.cache.is_empty() {
                // Bank the retiring cache's counters so stats() stays
                // monotonic across the exact→sparse transition.
                self.stats.gram_builds += self.cache.builds();
                self.stats.gram_reused_dims += self.cache.reused_dims();
                self.cache = GramCache::new(&[]);
            }
        } else {
            self.cache.append(&x);
        }
        self.x.push(x);
        self.y.push(y);
        Ok(())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// True once a full fit has run, i.e. [`GpFitter::refit`] is available.
    pub fn has_fit(&self) -> bool {
        self.last.is_some()
    }

    /// Counter snapshot (includes the Gram-cache counters).
    pub fn stats(&self) -> GpFitStats {
        GpFitStats {
            gram_builds: self.stats.gram_builds + self.cache.builds(),
            gram_reused_dims: self.stats.gram_reused_dims + self.cache.reused_dims(),
            ..self.stats
        }
    }

    /// Full fit: marginal-likelihood hyperparameter search (24 seeded random
    /// proposals scored in parallel, then serial coordinate descent over the
    /// memoized Gram), final jittered factorization. Bit-identical to the
    /// original serial `Gp::fit` at every thread count. Above the sparse
    /// policy threshold the search and fit run on a deterministic inducing
    /// subset instead of the full dataset.
    pub fn fit_full(&mut self, seed: u64) -> Result<Gp> {
        if self.y.is_empty() {
            return Err(Error::Numerical(
                "GP needs matching, non-empty inputs".into(),
            ));
        }
        if self.policy.applies(self.y.len()) {
            return self.fit_sparse_full(seed);
        }
        let GpFitter {
            cache,
            x,
            y,
            threads,
            scratch,
            ys_scratch,
            stats,
            last,
            ..
        } = self;
        let (y_mean, y_scale) = standardize_into(y, ys_scratch);
        let best = search_hyperparams(cache, ys_scratch, seed, *threads, stats);
        cache.assemble_into(&best, scratch);
        let chol = Cholesky::with_jitter(scratch, 1e-8)?;
        stats.full_fits += 1;
        stats.chol_jitter_retries += u64::from(chol.jitter_retries());
        let alpha = chol.solve(ys_scratch);
        *last = Some(LastFit {
            params: best.clone(),
            chol: Some(chol.clone()),
            seed,
        });
        Ok(Gp::assemble(x.clone(), best, chol, alpha, y_mean, y_scale))
    }

    /// The sparse large-n full fit: selects `policy.inducing` points by
    /// seeded greedy max-min ([`select_inducing`]), then runs the exact
    /// hyperparameter search and factorization on the subset alone —
    /// bit-identical to an exact fit of just those observations at the
    /// same seed, and O(n·m + m³) instead of O(n³).
    fn fit_sparse_full(&mut self, seed: u64) -> Result<Gp> {
        let m = self.policy.subset_size(self.y.len());
        let idx = select_inducing(&self.x, m, seed as usize);
        let sub_x: Vec<Vec<f64>> = idx.iter().map(|&i| self.x[i].clone()).collect();
        let sub_y: Vec<f64> = idx.iter().map(|&i| self.y[i]).collect();
        let mut sub_cache = GramCache::new(&sub_x);
        let (y_mean, y_scale) = standardize_into(&sub_y, &mut self.ys_scratch);
        let best = search_hyperparams(
            &mut sub_cache,
            &self.ys_scratch,
            seed,
            self.threads,
            &mut self.stats,
        );
        sub_cache.assemble_into(&best, &mut self.scratch);
        let chol = Cholesky::with_jitter(&self.scratch, 1e-8)?;
        self.stats.gram_builds += sub_cache.builds();
        self.stats.gram_reused_dims += sub_cache.reused_dims();
        self.stats.full_fits += 1;
        self.stats.sparse_fits += 1;
        self.stats.chol_jitter_retries += u64::from(chol.jitter_retries());
        let alpha = chol.solve(&self.ys_scratch);
        self.last = Some(LastFit {
            params: best.clone(),
            chol: None,
            seed,
        });
        Ok(Gp::assemble(sub_x, best, chol, alpha, y_mean, y_scale))
    }

    /// Incremental refit at the previously selected hyperparameters: appends
    /// one Cholesky row per observation recorded since the last fit (O(n²)
    /// each) and re-solves for the weights. The kernel rows are written into
    /// a reused scratch buffer and the stored factor is extended in place —
    /// the append path allocates nothing per observation once warm. Falls
    /// back to a full jittered refactorization if a row append loses
    /// positive definiteness — either way the result is bit-identical to
    /// [`Gp::fit_with_params`] on the extended dataset. Above the sparse
    /// policy threshold the refit instead re-selects the inducing subset
    /// (new observations can displace old inducing points) and refits it at
    /// the retained hyperparameters. Requires a prior [`GpFitter::fit_full`].
    pub fn refit(&mut self) -> Result<Gp> {
        if self.last.is_none() {
            return Err(Error::Numerical(
                "incremental refit requires a prior full fit".into(),
            ));
        }
        if self.policy.applies(self.y.len()) {
            return self.refit_sparse();
        }
        let GpFitter {
            cache,
            x,
            y,
            scratch,
            row_scratch,
            ys_scratch,
            stats,
            last,
            ..
        } = self;
        let last = last.as_mut().expect("checked above");
        let params = last.params.clone();
        let ls: Vec<f64> = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        let mut appended_ok = last.chol.is_some();
        if let Some(chol) = last.chol.as_mut() {
            for i in chol.n()..cache.len() {
                let diag = cache.kernel_row_into(i, &ls, sv, noise, row_scratch);
                if chol.append_row(row_scratch, diag).is_err() {
                    appended_ok = false;
                    break;
                }
            }
        }
        if !appended_ok {
            cache.assemble_into(&params, scratch);
            let c = Cholesky::with_jitter(scratch, 1e-8)?;
            stats.chol_jitter_retries += u64::from(c.jitter_retries());
            last.chol = Some(c);
        }
        let chol = last.chol.as_ref().expect("factor present after refit");
        stats.incremental_fits += 1;
        let (y_mean, y_scale) = standardize_into(y, ys_scratch);
        let alpha = chol.solve(ys_scratch);
        Ok(Gp::assemble(
            x.clone(),
            params,
            chol.clone(),
            alpha,
            y_mean,
            y_scale,
        ))
    }

    /// The sparse refit: re-selects the inducing subset over the grown
    /// dataset (same seeded start as the last full fit) and refits it at
    /// the retained hyperparameters — no search, so O(n·m + m³).
    fn refit_sparse(&mut self) -> Result<Gp> {
        let last = self.last.as_ref().expect("checked by refit");
        let params = last.params.clone();
        let seed = last.seed;
        let m = self.policy.subset_size(self.y.len());
        let idx = select_inducing(&self.x, m, seed as usize);
        let sub_x: Vec<Vec<f64>> = idx.iter().map(|&i| self.x[i].clone()).collect();
        let sub_y: Vec<f64> = idx.iter().map(|&i| self.y[i]).collect();
        let (y_mean, y_scale) = standardize_into(&sub_y, &mut self.ys_scratch);
        let sub_cache = GramCache::new(&sub_x);
        sub_cache.assemble_fresh_into(&params, &mut self.scratch);
        let chol = Cholesky::with_jitter(&self.scratch, 1e-8)?;
        self.stats.incremental_fits += 1;
        self.stats.sparse_fits += 1;
        self.stats.chol_jitter_retries += u64::from(chol.jitter_retries());
        let alpha = chol.solve(&self.ys_scratch);
        Ok(Gp::assemble(sub_x, params, chol, alpha, y_mean, y_scale))
    }
}

/// Marginal-likelihood hyperparameter search over a cached dataset: a
/// memoized evaluation of the default parameters, 24 seeded random
/// proposals scored in parallel against the shared cache (strict-`>` fold
/// in draw order), then two serial coordinate-descent sweeps through the
/// memoized assembly. Identical operation sequence — and therefore
/// identical bits — to the search `fit_full` originally inlined.
fn search_hyperparams(
    cache: &mut GramCache,
    ys: &[f64],
    seed: u64,
    threads: usize,
    stats: &mut GpFitStats,
) -> GpParams {
    let dims = cache.dims();
    let mut scratch = Matrix::zeros(0);
    let mut rng = Rng::new(seed ^ 0x6A09_E667);
    let mut best = GpParams::default_for(dims);
    cache.assemble_into(&best, &mut scratch);
    let mut best_lml = lml_from_gram(&scratch, ys).unwrap_or(f64::NEG_INFINITY);

    // Draw every proposal first (serial RNG, unchanged stream), score
    // them in parallel, then fold strictly in draw order — the same
    // strict-`>` fold the serial loop performed.
    let candidates: Vec<GpParams> = (0..24)
        .map(|_| GpParams {
            log_lengthscales: (0..dims)
                .map(|_| rng.uniform_in((0.05f64).ln(), (2.0f64).ln()))
                .collect(),
            log_signal_var: rng.uniform_in((0.2f64).ln(), (3.0f64).ln()),
            log_noise_var: rng.uniform_in((1e-4f64).ln(), (0.3f64).ln()),
        })
        .collect();
    {
        let cache_ref: &GramCache = cache;
        let lmls = par_map(&candidates, threads, |_, cand| {
            let mut k = Matrix::zeros(0);
            cache_ref.assemble_fresh_into(cand, &mut k);
            lml_from_gram(&k, ys)
        });
        stats.gram_builds += candidates.len() as u64;
        for (cand, lml) in candidates.iter().zip(&lmls) {
            if let Ok(lml) = lml {
                if *lml > best_lml {
                    best_lml = *lml;
                    best = cand.clone();
                }
            }
        }
    }

    // Coordinate descent, two sweeps. Inherently serial (each step
    // mutates the incumbent), but each candidate differs from the memo
    // state in at most one lengthscale, so the cache reuses the rest.
    for _ in 0..2 {
        for coord in 0..(dims + 2) {
            for step in [-0.4, 0.4, -0.15, 0.15] {
                let mut cand = best.clone();
                match coord {
                    c if c < dims => cand.log_lengthscales[c] += step,
                    c if c == dims => cand.log_signal_var += step,
                    _ => cand.log_noise_var += step,
                }
                cache.assemble_into(&cand, &mut scratch);
                if let Ok(lml) = lml_from_gram(&scratch, ys) {
                    if lml > best_lml {
                        best_lml = lml;
                        best = cand;
                    }
                }
            }
        }
    }
    best
}

/// Builds the Gram matrix directly from raw inputs: lower triangle computed
/// once, mirrored to the upper (the kernel is symmetric to the bit — the
/// squared difference is sign-insensitive).
fn gram(x: &[Vec<f64>], params: &GpParams) -> Matrix {
    let n = x.len();
    let noise = params.log_noise_var.exp();
    let mut k = Matrix::zeros(n);
    for i in 0..n {
        for j in 0..=i {
            let v = params.kernel(&x[i], &x[j]) + if i == j { noise + 1e-10 } else { 0.0 };
            k.set(i, j, v);
            k.set(j, i, v);
        }
    }
    k
}

/// LML of standardized targets given an assembled Gram matrix.
fn lml_from_gram(k: &Matrix, ys: &[f64]) -> Result<f64> {
    let chol = Cholesky::new(k)?;
    let alpha = chol.solve(ys);
    let n = ys.len() as f64;
    Ok(-0.5 * dot(ys, &alpha) - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
}

/// Log marginal likelihood of standardized targets under the kernel.
pub fn log_marginal_likelihood(x: &[Vec<f64>], ys: &[f64], params: &GpParams) -> Result<f64> {
    lml_from_gram(&gram(x, params), ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lhs::latin_hypercube;
    use proptest::prelude::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 6.0).sin() + 2.0).collect();
        let gp = Gp::fit(x.clone(), &y, 1).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            assert!((m - yi).abs() < 0.25, "predicted {m} for target {yi}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = vec![vec![0.2], vec![0.3], vec![0.4]];
        let y = vec![1.0, 1.2, 1.1];
        let gp = Gp::fit(x, &y, 2).unwrap();
        let (_, var_near) = gp.predict(&[0.3]);
        let (_, var_far) = gp.predict(&[0.95]);
        assert!(
            var_far > var_near,
            "far variance {var_far} <= near {var_near}"
        );
    }

    #[test]
    fn variance_is_non_negative_everywhere() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0]).collect();
        let gp = Gp::fit(x, &y, 3).unwrap();
        for i in 0..50 {
            let (_, var) = gp.predict(&[i as f64 / 49.0]);
            assert!(var >= 0.0);
        }
    }

    #[test]
    fn fits_multidimensional_smooth_functions() {
        let mut rng = Rng::new(7);
        let x: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![rng.uniform(), rng.uniform(), rng.uniform()])
            .collect();
        let f = |v: &[f64]| 3.0 * v[0] - 2.0 * v[1] * v[1] + (v[2] * 3.0).sin();
        let y: Vec<f64> = x.iter().map(|v| f(v)).collect();
        let gp = Gp::fit(x, &y, 4).unwrap();
        let mut err = 0.0;
        let mut count = 0;
        for _ in 0..30 {
            let p = vec![rng.uniform(), rng.uniform(), rng.uniform()];
            let (m, _) = gp.predict(&p);
            err += (m - f(&p)).abs();
            count += 1;
        }
        assert!(
            err / (count as f64) < 0.5,
            "mean abs error too high: {}",
            err / count as f64
        );
    }

    #[test]
    fn rejects_empty_and_mismatched_inputs() {
        assert!(Gp::fit(vec![], &[], 1).is_err());
        assert!(Gp::fit(vec![vec![0.1]], &[1.0, 2.0], 1).is_err());
        assert!(Gp::fit(vec![vec![0.1], vec![0.1, 0.2]], &[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn handles_duplicate_inputs_gracefully() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = Gp::fit(x, &y, 5).unwrap();
        let (m, v) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.2);
        assert!(v.is_finite());
    }

    #[test]
    fn constant_targets_do_not_blow_up() {
        let x = grid_1d(5);
        let y = vec![2.0; 5];
        let gp = Gp::fit(x, &y, 6).unwrap();
        let (m, v) = gp.predict(&[0.33]);
        assert!((m - 2.0).abs() < 1e-3);
        assert!(v.is_finite());
    }

    #[test]
    fn gram_is_symmetric() {
        let mut rng = Rng::new(31);
        let x: Vec<Vec<f64>> = (0..9)
            .map(|_| (0..4).map(|_| rng.uniform()).collect())
            .collect();
        let p = GpParams::default_for(4);
        let k = gram(&x, &p);
        for i in 0..k.n() {
            for j in 0..k.n() {
                assert_eq!(k.get(i, j).to_bits(), k.get(j, i).to_bits());
            }
        }
    }

    /// The pre-cache fit, reconstructed verbatim: direct Gram per candidate
    /// and a serial strict-`>` search. The production path must match it to
    /// the last bit — this is the trace-compatibility contract.
    fn legacy_fit(x: Vec<Vec<f64>>, y: &[f64], seed: u64) -> Gp {
        let dims = x[0].len();
        let (_, _, ys) = standardize(y);
        let mut rng = Rng::new(seed ^ 0x6A09_E667);
        let mut best = GpParams::default_for(dims);
        let mut best_lml = log_marginal_likelihood(&x, &ys, &best).unwrap_or(f64::NEG_INFINITY);
        for _ in 0..24 {
            let cand = GpParams {
                log_lengthscales: (0..dims)
                    .map(|_| rng.uniform_in((0.05f64).ln(), (2.0f64).ln()))
                    .collect(),
                log_signal_var: rng.uniform_in((0.2f64).ln(), (3.0f64).ln()),
                log_noise_var: rng.uniform_in((1e-4f64).ln(), (0.3f64).ln()),
            };
            if let Ok(lml) = log_marginal_likelihood(&x, &ys, &cand) {
                if lml > best_lml {
                    best_lml = lml;
                    best = cand;
                }
            }
        }
        for _ in 0..2 {
            for coord in 0..(dims + 2) {
                for step in [-0.4, 0.4, -0.15, 0.15] {
                    let mut cand = best.clone();
                    match coord {
                        c if c < dims => cand.log_lengthscales[c] += step,
                        c if c == dims => cand.log_signal_var += step,
                        _ => cand.log_noise_var += step,
                    }
                    if let Ok(lml) = log_marginal_likelihood(&x, &ys, &cand) {
                        if lml > best_lml {
                            best_lml = lml;
                            best = cand;
                        }
                    }
                }
            }
        }
        Gp::fit_with_params(x, y, best).unwrap()
    }

    fn random_dataset(n: usize, dims: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::new(seed);
        let xs = latin_hypercube(n, dims, &mut rng);
        let ys = xs
            .iter()
            .map(|x| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (v * (i as f64 + 1.3)).sin())
                    .sum::<f64>()
            })
            .collect();
        (xs, ys)
    }

    fn assert_gps_bitwise_equal(a: &Gp, b: &Gp, probes: &[Vec<f64>], ctx: &str) {
        assert_eq!(a.params(), b.params(), "{ctx}: hyperparameters differ");
        for p in probes {
            let (ma, va) = a.predict(p);
            let (mb, vb) = b.predict(p);
            assert_eq!(ma.to_bits(), mb.to_bits(), "{ctx}: mean differs at {p:?}");
            assert_eq!(va.to_bits(), vb.to_bits(), "{ctx}: var differs at {p:?}");
        }
    }

    #[test]
    fn fit_matches_the_legacy_search_bitwise() {
        for (n, seed) in [(6usize, 1u64), (13, 9), (20, 42)] {
            let (xs, ys) = random_dataset(n, 4, seed);
            let mut rng = Rng::new(seed ^ 77);
            let probes = latin_hypercube(12, 4, &mut rng);
            let fast = Gp::fit(xs.clone(), &ys, seed).unwrap();
            let legacy = legacy_fit(xs, &ys, seed);
            assert_gps_bitwise_equal(&fast, &legacy, &probes, "legacy-vs-cached");
        }
    }

    #[test]
    fn fit_is_bit_identical_at_every_thread_count() {
        let (xs, ys) = random_dataset(17, 4, 5);
        let mut rng = Rng::new(99);
        let probes = latin_hypercube(10, 4, &mut rng);
        let serial = Gp::fit_threaded(xs.clone(), &ys, 11, 1).unwrap();
        for threads in [2, 3, 8, 16] {
            let parallel = Gp::fit_threaded(xs.clone(), &ys, 11, threads).unwrap();
            assert_gps_bitwise_equal(&serial, &parallel, &probes, &format!("threads={threads}"));
        }
    }

    #[test]
    fn predict_batch_matches_predict_bitwise() {
        let (xs, ys) = random_dataset(15, 4, 3);
        let gp = Gp::fit(xs, &ys, 2).unwrap();
        let mut rng = Rng::new(12);
        let probes = latin_hypercube(25, 4, &mut rng);
        let batch = gp.predict_batch(&probes);
        for (p, (bm, bv)) in probes.iter().zip(&batch) {
            let (m, v) = gp.predict(p);
            assert_eq!(m.to_bits(), bm.to_bits());
            assert_eq!(v.to_bits(), bv.to_bits());
        }
    }

    #[test]
    fn refit_requires_a_prior_full_fit() {
        let mut fitter = GpFitter::new(1);
        fitter.observe(vec![0.3, 0.4], 1.0).unwrap();
        assert!(fitter.refit().is_err());
        fitter.fit_full(1).unwrap();
        fitter.observe(vec![0.6, 0.1], 2.0).unwrap();
        assert!(fitter.refit().is_ok());
        assert_eq!(fitter.stats().incremental_fits, 1);
        assert_eq!(fitter.stats().full_fits, 1);
    }

    #[test]
    fn fitter_rejects_inconsistent_dimensions() {
        let mut fitter = GpFitter::new(1);
        fitter.observe(vec![0.1, 0.2], 1.0).unwrap();
        assert!(fitter.observe(vec![0.1], 2.0).is_err());
    }

    fn sparse_policy_small() -> SparsePolicy {
        SparsePolicy {
            threshold: 12,
            inducing: 10,
        }
    }

    /// Feeds the same dataset to two fitters and returns their fits.
    fn fit_pair(
        xs: &[Vec<f64>],
        ys: &[f64],
        seed: u64,
        a: &mut GpFitter,
        b: &mut GpFitter,
    ) -> (Gp, Gp) {
        for (x, y) in xs.iter().zip(ys) {
            a.observe(x.clone(), *y).unwrap();
            b.observe(x.clone(), *y).unwrap();
        }
        (a.fit_full(seed).unwrap(), b.fit_full(seed).unwrap())
    }

    #[test]
    fn sparse_fit_equals_exact_fit_of_the_selected_subset() {
        let (xs, ys) = random_dataset(40, 3, 21);
        let policy = sparse_policy_small();
        let seed = 77u64;
        let mut fitter = GpFitter::new(1).with_policy(policy);
        for (x, y) in xs.iter().zip(&ys) {
            fitter.observe(x.clone(), *y).unwrap();
        }
        let sparse = fitter.fit_full(seed).unwrap();
        assert_eq!(fitter.stats().sparse_fits, 1);
        assert_eq!(sparse.len(), policy.inducing);

        // The reference: an exact fitter over exactly the inducing subset.
        let idx = select_inducing(&xs, policy.inducing, seed as usize);
        let mut exact = GpFitter::new(1);
        for &i in &idx {
            exact.observe(xs[i].clone(), ys[i]).unwrap();
        }
        let reference = exact.fit_full(seed).unwrap();
        let mut rng = Rng::new(5);
        let probes = latin_hypercube(10, 3, &mut rng);
        assert_gps_bitwise_equal(&sparse, &reference, &probes, "sparse-vs-subset-exact");
    }

    #[test]
    fn sparse_fit_is_bit_identical_at_every_thread_count() {
        let (xs, ys) = random_dataset(30, 4, 8);
        let mut rng = Rng::new(44);
        let probes = latin_hypercube(10, 4, &mut rng);
        let mut serial = GpFitter::new(1).with_policy(sparse_policy_small());
        let mut base = None;
        for threads in [1usize, 2, 8, 16] {
            let mut fitter = GpFitter::new(threads).with_policy(sparse_policy_small());
            for (x, y) in xs.iter().zip(&ys) {
                fitter.observe(x.clone(), *y).unwrap();
            }
            let gp = fitter.fit_full(3).unwrap();
            match &base {
                None => {
                    // Anchor on the serial fitter's result.
                    for (x, y) in xs.iter().zip(&ys) {
                        serial.observe(x.clone(), *y).unwrap();
                    }
                    let anchor = serial.fit_full(3).unwrap();
                    assert_gps_bitwise_equal(&gp, &anchor, &probes, "threads=1 anchor");
                    base = Some(anchor);
                }
                Some(anchor) => {
                    assert_gps_bitwise_equal(&gp, anchor, &probes, &format!("threads={threads}"));
                }
            }
        }
    }

    #[test]
    fn sparse_refit_reselects_at_retained_params() {
        let (xs, ys) = random_dataset(40, 3, 13);
        let mut fitter = GpFitter::new(1).with_policy(sparse_policy_small());
        for (x, y) in xs[..30].iter().zip(&ys) {
            fitter.observe(x.clone(), *y).unwrap();
        }
        let full = fitter.fit_full(9).unwrap();
        for (x, y) in xs[30..].iter().zip(&ys[30..]) {
            fitter.observe(x.clone(), *y).unwrap();
        }
        let refit = fitter.refit().unwrap();
        assert_eq!(refit.params(), full.params(), "refit must retain params");
        assert_eq!(fitter.stats().sparse_fits, 2);
        assert_eq!(fitter.stats().incremental_fits, 1);

        // Reference: re-select over the grown dataset, fixed-params fit.
        let idx = select_inducing(&xs, 10, 9);
        let sub_x: Vec<Vec<f64>> = idx.iter().map(|&i| xs[i].clone()).collect();
        let sub_y: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
        let reference = Gp::fit_with_params(sub_x, &sub_y, full.params().clone()).unwrap();
        let mut rng = Rng::new(6);
        let probes = latin_hypercube(8, 3, &mut rng);
        assert_gps_bitwise_equal(&refit, &reference, &probes, "sparse-refit-vs-scratch");
    }

    #[test]
    fn crossing_the_threshold_switches_to_sparse_and_keeps_fitting() {
        let (xs, ys) = random_dataset(16, 3, 99);
        let mut fitter = GpFitter::new(1).with_policy(sparse_policy_small());
        for (x, y) in xs[..12].iter().zip(&ys) {
            fitter.observe(x.clone(), *y).unwrap();
        }
        let exact = fitter.fit_full(1).unwrap();
        assert_eq!(fitter.stats().sparse_fits, 0, "at threshold: exact");
        assert_eq!(exact.len(), 12);
        for (x, y) in xs[12..].iter().zip(&ys[12..]) {
            fitter.observe(x.clone(), *y).unwrap();
        }
        let sparse = fitter.fit_full(2).unwrap();
        assert_eq!(fitter.stats().sparse_fits, 1, "above threshold: sparse");
        assert_eq!(sparse.len(), 10, "capped at the inducing budget");
        assert!(fitter.refit().is_ok(), "sparse refit after crossing");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Satellite: incremental-vs-full equivalence. Fit once, stream in
        /// a random number of extra observations (random values, random
        /// count), refit incrementally after each — predictions must equal
        /// a from-scratch fixed-params fit on the grown dataset bit for bit.
        #[test]
        fn incremental_refit_equals_from_scratch(
            seed in 0u64..1000,
            n0 in 4usize..12,
            appends in 1usize..5,
        ) {
            let dims = 3;
            let (xs, ys) = random_dataset(n0 + appends, dims, seed ^ 0x51AB);
            let mut fitter = GpFitter::new(1);
            for (x, y) in xs[..n0].iter().zip(&ys) {
                fitter.observe(x.clone(), *y).unwrap();
            }
            let fitted = fitter.fit_full(seed).unwrap();
            let params = fitted.params().clone();
            let mut rng = Rng::new(seed ^ 3);
            let probes = latin_hypercube(8, dims, &mut rng);
            for step in 0..appends {
                let grown = n0 + step + 1;
                fitter
                    .observe(xs[grown - 1].clone(), ys[grown - 1])
                    .unwrap();
                let incremental = fitter.refit().unwrap();
                let scratch = Gp::fit_with_params(
                    xs[..grown].to_vec(),
                    &ys[..grown],
                    params.clone(),
                )
                .unwrap();
                assert_gps_bitwise_equal(
                    &incremental,
                    &scratch,
                    &probes,
                    &format!("seed={seed} n0={n0} step={step}"),
                );
            }
        }

        /// Satellite: the sparse policy is invisible at or below its
        /// threshold. A fitter with an armed policy and a policy-free
        /// fitter must produce bitwise-identical fits for every dataset
        /// size up to the bound.
        #[test]
        fn sparse_mode_below_threshold_is_bitwise_exact(
            seed in 0u64..1000,
            n in 3usize..13,
        ) {
            let dims = 3;
            let (xs, ys) = random_dataset(n, dims, seed ^ 0xC0DE);
            let mut with_policy = GpFitter::new(1).with_policy(sparse_policy_small());
            let mut exact = GpFitter::new(1);
            let (a, b) = fit_pair(&xs, &ys, seed, &mut with_policy, &mut exact);
            let mut rng = Rng::new(seed ^ 11);
            let probes = latin_hypercube(6, dims, &mut rng);
            assert_gps_bitwise_equal(&a, &b, &probes, &format!("seed={seed} n={n}"));
            assert_eq!(with_policy.stats().sparse_fits, 0, "n <= threshold must stay exact");
        }
    }
}
