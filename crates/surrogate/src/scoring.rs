//! Deterministic parallel scoring.
//!
//! [`par_map`] fans an index-preserving map over a bounded pool of scoped
//! `std::thread`s and concatenates the per-chunk results **in chunk order**,
//! so the output is element-for-element identical to the serial loop — the
//! thread count changes wall-clock time, never a single bit of the result.
//! Determinism rests on two properties: every element is scored by a pure
//! function of that element alone (no shared accumulator, so no cross-thread
//! op reordering), and any reduction the caller performs afterwards runs
//! over the index-ordered output exactly as it would over serial results.

/// Upper bound on worker threads, no matter what callers request.
pub const MAX_SCORING_THREADS: usize = 16;

/// Contiguous chunk boundaries for `len` items over `threads` workers: the
/// remainder is spread over the leading chunks, so the boundaries are a
/// pure function of `(len, threads)` — never of scheduling.
fn chunk_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let base = len / threads;
    let extra = len % threads;
    let mut bounds = Vec::with_capacity(threads);
    let mut start = 0;
    for c in 0..threads {
        let chunk = base + usize::from(c < extra);
        bounds.push((start, start + chunk));
        start += chunk;
    }
    bounds
}

/// Maps `f` over `items`, scoring contiguous chunks on up to `threads`
/// scoped threads (clamped to `1..=`[`MAX_SCORING_THREADS`]). The returned
/// vector is in input order and bit-identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` regardless of
/// the thread count.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, MAX_SCORING_THREADS).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let bounds = chunk_bounds(items.len(), threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                scope.spawn(move || {
                    items[lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(lo + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let (lo, hi) = bounds[0];
        let mut out: Vec<R> = items[lo..hi]
            .iter()
            .enumerate()
            .map(|(i, t)| f(lo + i, t))
            .collect();
        // Join in spawn order: concatenation is index-ordered by
        // construction, independent of which thread finished first.
        for h in handles {
            out.extend(h.join().expect("scoring thread panicked"));
        }
        out
    })
}

/// Chunked form of [`par_map`]: `f` receives each contiguous chunk whole —
/// `f(start, chunk)` must return one result per element of `chunk`, for the
/// absolute item range `start..start + chunk.len()` — and the per-chunk
/// outputs are concatenated in chunk order. The chunk boundaries are the
/// exact [`par_map`] boundaries, so as long as `f` is element-wise pure
/// (each output depends only on its own item), the concatenation is
/// bit-identical to the serial single-chunk call at every thread count.
///
/// This is the batched-scoring hook: a caller holding a batch-capable
/// scorer (e.g. `Surrogate::predict_batch`, which reuses its solve buffers
/// across a chunk) amortizes per-call setup over the whole chunk instead of
/// paying it per item.
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = threads.clamp(1, MAX_SCORING_THREADS).min(items.len());
    if threads <= 1 {
        return f(0, items);
    }
    let bounds = chunk_bounds(items.len(), threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                scope.spawn(move || f(lo, &items[lo..hi]))
            })
            .collect();
        let (lo, hi) = bounds[0];
        let mut out = f(lo, &items[lo..hi]);
        for h in handles {
            out.extend(h.join().expect("scoring thread panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_every_thread_count() {
        let items: Vec<f64> = (0..103).map(|i| (i as f64) * 0.37 + 0.011).collect();
        let score = |i: usize, x: &f64| (x.sin() * (i as f64 + 1.0).sqrt(), i);
        let serial: Vec<_> = items.iter().enumerate().map(|(i, x)| score(i, x)).collect();
        for threads in [1, 2, 3, 4, 7, 8, 16, 64] {
            let parallel = par_map(&items, threads, score);
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.iter().zip(&serial) {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "threads={threads}");
                assert_eq!(a.1, b.1);
            }
        }
    }

    #[test]
    fn handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, v| *v).is_empty());
        assert_eq!(par_map(&[5u32], 8, |i, v| v + i as u32), vec![5]);
        assert_eq!(par_map(&[1u32, 2], 0, |_, v| v * 2), vec![2, 4]);
    }

    #[test]
    fn chunks_cover_all_indices_exactly_once() {
        let items: Vec<usize> = (0..37).collect();
        for threads in 1..=16 {
            let indices = par_map(&items, threads, |i, _| i);
            assert_eq!(indices, (0..37).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_map_matches_par_map_bitwise() {
        let items: Vec<f64> = (0..103).map(|i| (i as f64) * 0.29 - 3.7).collect();
        let score = |i: usize, x: &f64| x.cos() * (i as f64 + 0.5);
        let reference = par_map(&items, 1, score);
        for threads in [1, 2, 3, 5, 8, 16, 64] {
            let chunked = par_map_chunks(&items, threads, |start, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, x)| score(start + i, x))
                    .collect()
            });
            assert_eq!(chunked.len(), reference.len(), "threads={threads}");
            for (a, b) in chunked.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn chunked_map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_chunks(&empty, 8, |_, c| c.to_vec()).is_empty());
        assert_eq!(
            par_map_chunks(&[7u32], 8, |start, c| c
                .iter()
                .map(|v| v + start as u32)
                .collect()),
            vec![7]
        );
    }
}
