//! # relm-surrogate
//!
//! Surrogate models and sampling utilities for the black-box tuners (§5):
//!
//! * [`Gp`] — Gaussian-process regression with a squared-exponential ARD
//!   kernel, Cholesky-based inference, and marginal-likelihood
//!   hyperparameter selection (§5.1's Equation 6).
//! * [`expected_improvement`] — the EI acquisition function (Equation 7),
//!   plus a maximizer combining random candidates with local hill climbing.
//! * [`latin_hypercube`] — Latin Hypercube Sampling for bootstrap samples
//!   (Table 7).
//! * [`Forest`] — Random-Forest regression (bagged CART trees), the
//!   alternative surrogate of Figure 26.
//!
//! Everything is implemented from first principles on `f64` slices — no
//! external linear-algebra or ML dependencies.

pub mod acquisition;
pub mod forest;
pub mod gp;
pub mod lhs;
pub mod linalg;

pub use acquisition::{expected_improvement, maximize_ei};
pub use forest::{Forest, ForestParams};
pub use gp::{Gp, GpParams};
pub use lhs::latin_hypercube;

/// A regression surrogate with predictive uncertainty — the interface both
/// the Gaussian Process and the Random Forest implement, letting BO/GBO swap
/// surrogates (Figure 26).
pub trait Surrogate {
    /// Predictive mean and variance at a point.
    fn predict(&self, x: &[f64]) -> (f64, f64);
}
