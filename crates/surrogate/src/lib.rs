//! # relm-surrogate
//!
//! Surrogate models and sampling utilities for the black-box tuners (§5):
//!
//! * [`Gp`] — Gaussian-process regression with a squared-exponential ARD
//!   kernel, Cholesky-based inference, and marginal-likelihood
//!   hyperparameter selection (§5.1's Equation 6). [`GpFitter`] is the
//!   incremental front end: it caches pairwise differences across fits
//!   ([`gram::GramCache`]), extends the Cholesky factor row-by-row between
//!   hyperparameter re-tunes, and scores proposals on a bounded thread pool
//!   — all bit-identical to the serial from-scratch fit. For n in the
//!   hundreds-to-thousands, an opt-in [`SparsePolicy`] switches the fitter
//!   to a subset-of-data approximation over a deterministic inducing set
//!   ([`select_inducing`]), keeping fit+propose latency flat as histories
//!   grow.
//! * [`expected_improvement`] — the EI acquisition function (Equation 7),
//!   plus a maximizer combining random candidates with local hill climbing
//!   ([`maximize_ei_threaded`] parallelizes it deterministically).
//! * [`latin_hypercube`] — Latin Hypercube Sampling for bootstrap samples
//!   (Table 7).
//! * [`Forest`] — Random-Forest regression (bagged CART trees), the
//!   alternative surrogate of Figure 26.
//!
//! Everything is implemented from first principles on `f64` slices — no
//! external linear-algebra or ML dependencies.
//!
//! ```
//! use relm_surrogate::{expected_improvement, Gp, Surrogate};
//!
//! // Fit a GP to a toy 1-D objective and query it like the tuners do.
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3).powi(2)).collect();
//! let gp = Gp::fit(xs, &ys, 42).expect("toy data is well-conditioned");
//!
//! // Near a training point the posterior mean tracks the data and the
//! // variance collapses; EI is finite and non-negative everywhere.
//! let (mean, var) = gp.predict(&[2.0 / 7.0]);
//! assert!((mean - (2.0 / 7.0f64 - 0.3).powi(2)).abs() < 0.05);
//! assert!(var < 0.1);
//! let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
//! assert!(expected_improvement(mean, var, best) >= 0.0);
//! ```

pub mod acquisition;
pub mod forest;
pub mod gp;
pub mod gram;
pub mod lhs;
pub mod linalg;
pub mod scoring;
pub mod sparse;

pub use acquisition::{expected_improvement, maximize_ei, maximize_ei_threaded};
pub use forest::{Forest, ForestParams};
pub use gp::{Gp, GpFitStats, GpFitter, GpParams};
pub use gram::GramCache;
pub use lhs::latin_hypercube;
pub use scoring::{par_map, par_map_chunks, MAX_SCORING_THREADS};
pub use sparse::{select_inducing, SparsePolicy, DEFAULT_INDUCING, DEFAULT_SPARSE_THRESHOLD};

/// A regression surrogate with predictive uncertainty — the interface both
/// the Gaussian Process and the Random Forest implement, letting BO/GBO swap
/// surrogates (Figure 26). `Send + Sync` is a supertrait so acquisition
/// scoring can share a surrogate across scoped threads.
pub trait Surrogate: Send + Sync {
    /// Predictive mean and variance at a point.
    fn predict(&self, x: &[f64]) -> (f64, f64);

    /// Predictive mean and variance for a batch of points, in input order.
    /// Implementations may reuse internal buffers across the batch but must
    /// return exactly what per-point [`Surrogate::predict`] calls would.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}
