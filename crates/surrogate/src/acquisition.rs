//! The Expected Improvement acquisition function (Equation 7) and its
//! maximizer (random candidates + coordinate hill climbing, standing in for
//! the paper's "random sampling and standard gradient-based search").
//!
//! [`maximize_ei_threaded`] scores the 128-point candidate set — and runs
//! the four local hill climbs — on a bounded scoped-thread pool. The
//! candidate pool is scored as one fused [`Surrogate::predict_batch`] pass
//! per chunk (scratch buffers reused across the chunk) rather than one
//! `predict` call per candidate. All randomness is drawn serially up
//! front and every reduction folds in index order with strict comparisons,
//! so the argmax is bit-identical to the serial [`maximize_ei`] at any
//! thread count.

use crate::lhs::latin_hypercube;
use crate::scoring::{par_map, par_map_chunks};
use crate::Surrogate;
use relm_common::Rng;

/// Standard normal PDF.
fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7 — ample for acquisition ranking).
fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a *minimization* objective at a point with
/// posterior `(mean, variance)`, relative to the incumbent best `tau`
/// (Equation 7: `EI = (τ − μ)Φ(Z) + σφ(Z)` with `Z = (τ − μ)/σ`).
pub fn expected_improvement(mean: f64, variance: f64, tau: f64) -> f64 {
    let sigma = variance.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (tau - mean).max(0.0);
    }
    let z = (tau - mean) / sigma;
    ((tau - mean) * big_phi(z) + sigma * phi(z)).max(0.0)
}

/// Maximizes EI over the unit hypercube: scores a space-filling candidate
/// set, then hill-climbs from the best few candidates coordinate-wise.
/// Returns `(argmax, EI value)`.
pub fn maximize_ei<S: Surrogate + ?Sized>(
    surrogate: &S,
    dims: usize,
    tau: f64,
    rng: &mut Rng,
) -> (Vec<f64>, f64) {
    maximize_ei_threaded(surrogate, dims, tau, rng, 1)
}

/// [`maximize_ei`] with candidate scoring and the hill climbs distributed
/// over up to `threads` scoped threads. The candidate set is drawn from
/// `rng` serially before any scoring, each climb is a pure function of its
/// start point, and both reductions (the stable sort and the final fold)
/// run over index-ordered results — so the returned argmax is bit-identical
/// to the serial maximizer at every thread count.
pub fn maximize_ei_threaded<S: Surrogate + ?Sized>(
    surrogate: &S,
    dims: usize,
    tau: f64,
    rng: &mut Rng,
    threads: usize,
) -> (Vec<f64>, f64) {
    let ei_at = |x: &[f64]| {
        let (m, v) = surrogate.predict(x);
        expected_improvement(m, v, tau)
    };

    let mut candidates = latin_hypercube(96, dims, rng);
    candidates.extend((0..32).map(|_| (0..dims).map(|_| rng.uniform()).collect::<Vec<f64>>()));

    // One fused batch per chunk: `predict_batch` reuses its k*/solve
    // buffers across the whole candidate pool instead of re-allocating per
    // point, and `predict_batch` is bit-identical to per-point `predict`
    // by contract — so these scores match the per-candidate loop exactly.
    let scores = par_map_chunks(&candidates, threads, |_, chunk| {
        surrogate
            .predict_batch(chunk)
            .into_iter()
            .map(|(m, v)| expected_improvement(m, v, tau))
            .collect()
    });
    let mut scored: Vec<(f64, Vec<f64>)> = scores.into_iter().zip(candidates).collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN EI"));

    let best = scored[0].clone();
    let starts: Vec<Vec<f64>> = scored.into_iter().take(4).map(|(_, s)| s).collect();
    let climbs = par_map(&starts, threads, |_, start| {
        let mut x = start.clone();
        let mut fx = ei_at(&x);
        let mut step = 0.12;
        while step > 0.005 {
            let mut improved = false;
            for d in 0..dims {
                for dir in [-1.0, 1.0] {
                    let mut cand = x.clone();
                    cand[d] = (cand[d] + dir * step).clamp(0.0, 1.0);
                    let fc = ei_at(&cand);
                    if fc > fx {
                        x = cand;
                        fx = fc;
                        improved = true;
                    }
                }
            }
            if !improved {
                step *= 0.5;
            }
        }
        (fx, x)
    });
    let mut best = best;
    for (fx, x) in climbs {
        if fx > best.0 {
            best = (fx, x);
        }
    }
    (best.1, best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn ei_is_zero_for_certainly_worse_points() {
        // Mean far above the incumbent with tiny variance.
        assert!(expected_improvement(10.0, 1e-6, 1.0) < 1e-9);
    }

    #[test]
    fn ei_rewards_low_mean_and_high_variance() {
        let better_mean = expected_improvement(0.5, 0.1, 1.0);
        let worse_mean = expected_improvement(0.9, 0.1, 1.0);
        assert!(better_mean > worse_mean);

        let low_var = expected_improvement(1.2, 0.01, 1.0);
        let high_var = expected_improvement(1.2, 1.0, 1.0);
        assert!(
            high_var > low_var,
            "exploration term must reward uncertainty"
        );
    }

    #[test]
    fn ei_zero_variance_is_plain_improvement() {
        assert_eq!(expected_improvement(0.4, 0.0, 1.0), 0.6);
        assert_eq!(expected_improvement(1.4, 0.0, 1.0), 0.0);
    }

    struct Bowl;
    impl crate::Surrogate for Bowl {
        fn predict(&self, x: &[f64]) -> (f64, f64) {
            // Minimum at (0.7, 0.3) with small uniform uncertainty.
            let d = (x[0] - 0.7).powi(2) + (x[1] - 0.3).powi(2);
            (d, 0.01)
        }
    }

    #[test]
    fn maximizer_finds_the_bowl_minimum() {
        let mut rng = Rng::new(42);
        let (x, ei) = maximize_ei(&Bowl, 2, 0.5, &mut rng);
        assert!(ei > 0.0);
        assert!((x[0] - 0.7).abs() < 0.08, "x0 = {}", x[0]);
        assert!((x[1] - 0.3).abs() < 0.08, "x1 = {}", x[1]);
    }

    #[test]
    fn threaded_maximizer_returns_identical_bits_at_every_thread_count() {
        use crate::Gp;
        // A real GP surrogate so EI values exercise the full predict path.
        let mut data_rng = Rng::new(17);
        let xs = crate::latin_hypercube(14, 3, &mut data_rng);
        let ys: Vec<f64> = xs
            .iter()
            .map(|v| (v[0] * 4.0).sin() + v[1] * v[2])
            .collect();
        let gp = Gp::fit(xs, &ys, 9).unwrap();
        for seed in [1u64, 23, 456] {
            let mut rng = Rng::new(seed);
            let serial = maximize_ei(&gp, 3, 0.4, &mut rng);
            for threads in [2usize, 4, 8] {
                let mut rng = Rng::new(seed);
                let parallel = maximize_ei_threaded(&gp, 3, 0.4, &mut rng, threads);
                assert_eq!(serial.1.to_bits(), parallel.1.to_bits(), "EI value");
                assert_eq!(serial.0.len(), parallel.0.len());
                for (a, b) in serial.0.iter().zip(&parallel.0) {
                    assert_eq!(a.to_bits(), b.to_bits(), "argmax coordinate");
                }
            }
        }
    }
}
