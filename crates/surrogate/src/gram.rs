//! Cached Gram-matrix assembly for the squared-exponential ARD kernel.
//!
//! Hyperparameter selection evaluates the log marginal likelihood for on
//! the order of a hundred candidate parameter sets *on the same dataset*.
//! The naive path recomputes every pairwise kernel from the raw inputs each
//! time — one `exp` per dimension per pair (for the lengthscales) plus the
//! kernel's own `exp`. [`GramCache`] precomputes the per-dimension pairwise
//! coordinate differences once per dataset, hoists the per-candidate
//! `exp(log ℓ_d)` out of the pair loop, and assembles each candidate's Gram
//! as an accumulation of per-dimension scaled squares with a **single**
//! `exp` per pair. A memo of the per-dimension contributions additionally
//! lets coordinate-descent steps that change one lengthscale (or only the
//! signal/noise variances) reuse the other dimensions' work.
//!
//! The differences are stored as one packed pair-array *per dimension*
//! (structure-of-arrays), so every sweep — scaling a dimension, summing
//! dimensions into the pair totals, walking a kernel row — is a
//! contiguous slice-to-slice loop the compiler can unroll and vectorize
//! without bounds checks. [`GramCache::assemble_fresh_into`] additionally
//! blocks the pair range into cache-resident tiles: each tile's
//! per-dimension columns are streamed once while the running sums stay in
//! registers/L1, instead of striding the whole `pairs × dims` array per
//! pair.
//!
//! Everything here is bit-identical to the naive formulation: differences
//! are exact, the division by ℓ_d and the accumulation order (dimension
//! ascending, per pair) match the original `kernel` loop term for term, so
//! hyperparameter search — and therefore every tuning trace downstream —
//! is unchanged to the last bit.

use crate::gp::GpParams;
use crate::linalg::Matrix;

/// Offset of packed pair `(i, j)`, `j <= i`, in a row-major lower triangle.
#[inline]
fn pair_index(i: usize, j: usize) -> usize {
    i * (i + 1) / 2 + j
}

/// Pairs per tile in the blocked fresh assembly: 512 doubles of running
/// sums (4 KiB) stay L1-resident alongside one 4 KiB column slice per
/// dimension.
const TILE: usize = 512;

/// Per-dataset cache of pairwise coordinate differences plus a memo of the
/// last assembled lengthscale state.
#[derive(Debug, Clone)]
pub struct GramCache {
    n: usize,
    dims: usize,
    /// The cached points, row-major (`n × dims`) — kept so rows can be
    /// appended without the caller re-supplying the dataset.
    points: Vec<f64>,
    /// Packed pairwise differences, one column per dimension: entry
    /// `diffs[d][pair_index(i, j)]` holds `x_i[d] − x_j[d]` for `j <= i`.
    diffs: Vec<Vec<f64>>,
    /// Lengthscales (already exponentiated) of the memoized assembly;
    /// empty when the memo is cold.
    memo_ls: Vec<f64>,
    /// Per-dimension scaled squares `((x_i[d] − x_j[d]) / ℓ_d)²`, one packed
    /// array per dimension.
    memo_scaled: Vec<Vec<f64>>,
    /// Per-pair sums of the scaled squares, accumulated in dimension order.
    memo_s: Vec<f64>,
    /// Per-pair `exp(−s/2)` — the only transcendental left per pair.
    memo_e: Vec<f64>,
    /// Dimension contributions served from the memo instead of recomputed.
    reused_dims: u64,
    /// Gram matrices assembled from the cache.
    builds: u64,
}

impl GramCache {
    /// Builds the difference cache for a dataset (`x` rows must share the
    /// dimensionality; the caller has validated this).
    pub fn new(x: &[Vec<f64>]) -> Self {
        let dims = x.first().map_or(0, |r| r.len());
        let pairs = x.len() * (x.len() + 1) / 2;
        let mut cache = GramCache {
            n: 0,
            dims,
            points: Vec::with_capacity(x.len() * dims),
            diffs: vec![Vec::with_capacity(pairs); dims],
            memo_ls: Vec::new(),
            memo_scaled: vec![Vec::new(); dims],
            memo_s: Vec::new(),
            memo_e: Vec::new(),
            reused_dims: 0,
            builds: 0,
        };
        for row in x {
            cache.append(row);
        }
        cache
    }

    /// Appends one point: extends each dimension's packed difference column
    /// in place (`O(n·dims)`, amortized reallocation), invalidating the
    /// assembly memo.
    pub fn append(&mut self, row: &[f64]) {
        if self.n == 0 {
            self.dims = row.len();
            self.diffs.resize(self.dims, Vec::new());
            self.memo_scaled = vec![Vec::new(); self.dims];
        }
        debug_assert_eq!(row.len(), self.dims);
        // New packed entries per column: pairs (n, 0), …, (n, n−1) followed
        // by the diagonal (n, n), whose difference is exactly 0.0.
        for (d, (col, &v)) in self.diffs.iter_mut().zip(row).enumerate() {
            col.reserve(self.n + 1);
            for j in 0..self.n {
                col.push(v - self.points[j * self.dims + d]);
            }
            col.push(0.0);
        }
        self.points.extend_from_slice(row);
        self.n += 1;
        self.memo_ls.clear();
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no points are cached.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Input dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Gram matrices assembled through the memoized path so far.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Per-dimension contributions served from the memo.
    pub fn reused_dims(&self) -> u64 {
        self.reused_dims
    }

    /// Assembles the Gram matrix for `params` into `out`, reusing the
    /// per-dimension memo where the lengthscales are unchanged since the
    /// previous call. Lower triangle is computed, the upper is mirrored.
    pub fn assemble_into(&mut self, params: &GpParams, out: &mut Matrix) {
        let pairs = pair_index(self.n, 0);
        let ls: Vec<f64> = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let cold = self.memo_ls.is_empty();
        if cold {
            for scaled in &mut self.memo_scaled {
                scaled.clear();
                scaled.resize(pairs, 0.0);
            }
            self.memo_s.clear();
            self.memo_s.resize(pairs, 0.0);
            self.memo_e.clear();
            self.memo_e.resize(pairs, 0.0);
        }
        let mut changed = false;
        for (d, &l) in ls.iter().enumerate() {
            if !cold && self.memo_ls[d].to_bits() == l.to_bits() {
                self.reused_dims += 1;
                continue;
            }
            changed = true;
            // Contiguous column sweep: no strides, no bounds checks.
            for (out_p, &dv) in self.memo_scaled[d].iter_mut().zip(&self.diffs[d]) {
                let t = dv / l;
                *out_p = t * t;
            }
        }
        if changed {
            // Accumulate in dimension order — the same association the
            // per-pair kernel loop used, so the sums are bit-identical.
            self.memo_s.iter_mut().for_each(|s| *s = 0.0);
            for scaled in &self.memo_scaled {
                for (s, t) in self.memo_s.iter_mut().zip(scaled) {
                    *s += t;
                }
            }
            for (e, s) in self.memo_e.iter_mut().zip(&self.memo_s) {
                *e = (-0.5 * s).exp();
            }
        }
        self.memo_ls = ls;
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        out.reset(self.n);
        for i in 0..self.n {
            for j in 0..=i {
                let mut k = sv * self.memo_e[pair_index(i, j)];
                if i == j {
                    k += noise + 1e-10;
                }
                out.set(i, j, k);
                out.set(j, i, k);
            }
        }
        self.builds += 1;
    }

    /// Memo-free assembly (same bits as [`GramCache::assemble_into`]):
    /// shared-reference, so candidate parameter sets can be scored from
    /// worker threads against one cache. The pair range is processed in
    /// `TILE`-sized (512-pair) blocks — per block, each dimension's column slice is
    /// streamed once into an L1-resident accumulator tile, then a single
    /// `exp` pass finishes the block before it is scattered into `out`.
    pub fn assemble_fresh_into(&self, params: &GpParams, out: &mut Matrix) {
        let ls: Vec<f64> = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        out.reset(self.n);
        let pairs = pair_index(self.n, 0);
        let mut acc = [0.0f64; TILE];
        // Pair cursor: (i, j) of the next packed entry to scatter.
        let (mut i, mut j) = (0usize, 0usize);
        let mut p0 = 0;
        while p0 < pairs {
            let len = TILE.min(pairs - p0);
            let tile = &mut acc[..len];
            tile.fill(0.0);
            // Dimension-ascending accumulation per pair, as the original
            // kernel loop ordered it.
            for (col, &l) in self.diffs.iter().zip(&ls) {
                for (s, &dv) in tile.iter_mut().zip(&col[p0..p0 + len]) {
                    let t = dv / l;
                    *s += t * t;
                }
            }
            for s in tile.iter_mut() {
                *s = sv * (-0.5 * *s).exp();
            }
            for &base in tile.iter() {
                let mut k = base;
                if i == j {
                    k += noise + 1e-10;
                }
                out.set(i, j, k);
                out.set(j, i, k);
                if j == i {
                    i += 1;
                    j = 0;
                } else {
                    j += 1;
                }
            }
            p0 += len;
        }
    }

    /// The covariance row of point `i` against every earlier point, plus its
    /// own (noise-inflated) diagonal — exactly the entries a from-scratch
    /// Gram would place in row `i` of its lower triangle. Feeds
    /// [`crate::linalg::Cholesky::append_row`] on the incremental fit path.
    pub fn kernel_row(&self, i: usize, params: &GpParams) -> (Vec<f64>, f64) {
        let ls: Vec<f64> = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        let mut row = Vec::new();
        let diag = self.kernel_row_into(i, &ls, sv, noise, &mut row);
        (row, diag)
    }

    /// Allocation-free form of [`GramCache::kernel_row`]: the exponentiated
    /// hyperparameters are supplied by the caller (hoisted out of
    /// per-observation append loops) and the row is written into a reused
    /// buffer. Returns the noise-inflated diagonal.
    pub fn kernel_row_into(
        &self,
        i: usize,
        ls: &[f64],
        sv: f64,
        noise: f64,
        row: &mut Vec<f64>,
    ) -> f64 {
        assert!(i < self.n, "kernel_row index out of range");
        // Row i's pairs are contiguous in every column: packed offsets
        // pair_index(i, 0) .. pair_index(i, 0) + i.
        let base = pair_index(i, 0);
        row.clear();
        row.resize(i, 0.0);
        for (col, &l) in self.diffs.iter().zip(ls) {
            for (s, &dv) in row.iter_mut().zip(&col[base..base + i]) {
                let t = dv / l;
                *s += t * t;
            }
        }
        for s in row.iter_mut() {
            *s = sv * (-0.5 * *s).exp();
        }
        // Diagonal: zero squared distance, so the kernel is exactly the
        // signal variance (sv · exp(−0) ≡ sv bitwise).
        sv + (noise + 1e-10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Rng;

    /// The pre-cache reference: the per-pair kernel loop the cache replaced.
    fn naive_gram(x: &[Vec<f64>], params: &GpParams) -> Matrix {
        let noise = params.log_noise_var.exp();
        Matrix::from_fn(x.len(), |i, j| {
            let mut s = 0.0;
            for ((a, b), log_l) in x[i].iter().zip(&x[j]).zip(&params.log_lengthscales) {
                let l = log_l.exp();
                let d = (a - b) / l;
                s += d * d;
            }
            params.log_signal_var.exp() * (-0.5 * s).exp()
                + if i == j { noise + 1e-10 } else { 0.0 }
        })
    }

    fn dataset(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| (0..dims).map(|_| rng.uniform()).collect())
            .collect()
    }

    fn params(dims: usize, seed: u64) -> GpParams {
        let mut rng = Rng::new(seed);
        GpParams {
            log_lengthscales: (0..dims)
                .map(|_| rng.uniform_in((0.05f64).ln(), (2.0f64).ln()))
                .collect(),
            log_signal_var: rng.uniform_in((0.2f64).ln(), (3.0f64).ln()),
            log_noise_var: rng.uniform_in((1e-4f64).ln(), (0.3f64).ln()),
        }
    }

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix) {
        assert_eq!(a.n(), b.n());
        for i in 0..a.n() {
            for j in 0..a.n() {
                assert_eq!(
                    a.get(i, j).to_bits(),
                    b.get(i, j).to_bits(),
                    "gram mismatch at ({i},{j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn cached_assembly_is_bitwise_identical_to_naive() {
        for seed in 0..8 {
            let x = dataset(12, 4, seed);
            let p = params(4, seed ^ 0xABCD);
            let mut cache = GramCache::new(&x);
            let mut got = Matrix::zeros(0);
            cache.assemble_into(&p, &mut got);
            assert_bitwise_eq(&got, &naive_gram(&x, &p));
            // Second assembly with identical params: full memo reuse.
            let reused_before = cache.reused_dims();
            cache.assemble_into(&p, &mut got);
            assert_bitwise_eq(&got, &naive_gram(&x, &p));
            assert_eq!(cache.reused_dims(), reused_before + 4);
        }
    }

    #[test]
    fn memoized_and_fresh_paths_agree_after_partial_changes() {
        let x = dataset(9, 4, 3);
        let mut cache = GramCache::new(&x);
        let mut memo = Matrix::zeros(0);
        let mut fresh = Matrix::zeros(0);
        let mut p = params(4, 17);
        for step in 0..6 {
            // Perturb one coordinate at a time, like coordinate descent.
            match step % 3 {
                0 => p.log_lengthscales[step % 4] += 0.4,
                1 => p.log_signal_var -= 0.15,
                _ => p.log_noise_var += 0.15,
            }
            cache.assemble_into(&p, &mut memo);
            cache.assemble_fresh_into(&p, &mut fresh);
            assert_bitwise_eq(&memo, &fresh);
            assert_bitwise_eq(&memo, &naive_gram(&x, &p));
        }
        assert!(
            cache.reused_dims() > 0,
            "coordinate steps must reuse unchanged dimensions"
        );
    }

    #[test]
    fn tiled_fresh_assembly_is_bitwise_identical_across_tile_boundaries() {
        // n = 40 gives 820 packed pairs — more than one TILE block — so the
        // blocked path exercises a full tile, the boundary, and the tail.
        let x = dataset(40, 5, 77);
        let p = params(5, 78);
        let cache = GramCache::new(&x);
        let mut fresh = Matrix::zeros(0);
        cache.assemble_fresh_into(&p, &mut fresh);
        assert_bitwise_eq(&fresh, &naive_gram(&x, &p));
    }

    #[test]
    fn append_extends_the_cache_consistently() {
        let x = dataset(10, 3, 5);
        let p = params(3, 9);
        let mut grown = GramCache::new(&x[..6]);
        for row in &x[6..] {
            grown.append(row);
        }
        let scratch = GramCache::new(&x);
        let mut a = Matrix::zeros(0);
        let mut b = Matrix::zeros(0);
        grown.assemble_into(&p, &mut a);
        GramCache::assemble_fresh_into(&scratch, &p, &mut b);
        assert_bitwise_eq(&a, &b);
    }

    #[test]
    fn kernel_row_matches_last_gram_row() {
        let x = dataset(7, 4, 11);
        let p = params(4, 13);
        let cache = GramCache::new(&x);
        let gram = naive_gram(&x, &p);
        for i in [3usize, 6] {
            let (row, diag) = cache.kernel_row(i, &p);
            assert_eq!(row.len(), i);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), gram.get(i, j).to_bits());
            }
            assert_eq!(diag.to_bits(), gram.get(i, i).to_bits());
        }
    }

    #[test]
    fn kernel_row_into_reuses_the_buffer() {
        let x = dataset(9, 3, 19);
        let p = params(3, 20);
        let cache = GramCache::new(&x);
        let ls: Vec<f64> = p.log_lengthscales.iter().map(|l| l.exp()).collect();
        let sv = p.log_signal_var.exp();
        let noise = p.log_noise_var.exp();
        let mut buf = Vec::with_capacity(x.len());
        let ptr = buf.as_ptr();
        for i in [8usize, 5, 8] {
            let diag = cache.kernel_row_into(i, &ls, sv, noise, &mut buf);
            let (row, want_diag) = cache.kernel_row(i, &p);
            assert_eq!(buf.len(), i);
            for (a, b) in buf.iter().zip(&row) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(diag.to_bits(), want_diag.to_bits());
        }
        assert_eq!(ptr, buf.as_ptr(), "warm buffer must not reallocate");
    }

    #[test]
    fn assembled_gram_is_symmetric() {
        let x = dataset(11, 4, 21);
        let p = params(4, 22);
        let mut cache = GramCache::new(&x);
        let mut k = Matrix::zeros(0);
        cache.assemble_into(&p, &mut k);
        for i in 0..k.n() {
            for j in 0..k.n() {
                assert_eq!(k.get(i, j).to_bits(), k.get(j, i).to_bits());
            }
        }
    }
}
