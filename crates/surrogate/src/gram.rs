//! Cached Gram-matrix assembly for the squared-exponential ARD kernel.
//!
//! Hyperparameter selection evaluates the log marginal likelihood for on
//! the order of a hundred candidate parameter sets *on the same dataset*.
//! The naive path recomputes every pairwise kernel from the raw inputs each
//! time — one `exp` per dimension per pair (for the lengthscales) plus the
//! kernel's own `exp`. [`GramCache`] precomputes the per-dimension pairwise
//! coordinate differences once per dataset, hoists the per-candidate
//! `exp(log ℓ_d)` out of the pair loop, and assembles each candidate's Gram
//! as an accumulation of per-dimension scaled squares with a **single**
//! `exp` per pair. A memo of the per-dimension contributions additionally
//! lets coordinate-descent steps that change one lengthscale (or only the
//! signal/noise variances) reuse the other dimensions' work.
//!
//! Everything here is bit-identical to the naive formulation: differences
//! are exact, the division by ℓ_d and the accumulation order match the
//! original `kernel` loop term for term, so hyperparameter search — and
//! therefore every tuning trace downstream — is unchanged to the last bit.

use crate::gp::GpParams;
use crate::linalg::Matrix;

/// Offset of packed pair `(i, j)`, `j <= i`, in a row-major lower triangle.
#[inline]
fn pair_index(i: usize, j: usize) -> usize {
    i * (i + 1) / 2 + j
}

/// Per-dataset cache of pairwise coordinate differences plus a memo of the
/// last assembled lengthscale state.
#[derive(Debug, Clone)]
pub struct GramCache {
    n: usize,
    dims: usize,
    /// The cached points, row-major (`n × dims`) — kept so rows can be
    /// appended without the caller re-supplying the dataset.
    points: Vec<f64>,
    /// Pair-major packed differences: entry `pair_index(i, j) * dims + d`
    /// holds `x_i[d] − x_j[d]` for `j <= i`.
    diffs: Vec<f64>,
    /// Lengthscales (already exponentiated) of the memoized assembly;
    /// empty when the memo is cold.
    memo_ls: Vec<f64>,
    /// Per-dimension scaled squares `((x_i[d] − x_j[d]) / ℓ_d)²`, one packed
    /// array per dimension.
    memo_scaled: Vec<Vec<f64>>,
    /// Per-pair sums of the scaled squares, accumulated in dimension order.
    memo_s: Vec<f64>,
    /// Per-pair `exp(−s/2)` — the only transcendental left per pair.
    memo_e: Vec<f64>,
    /// Dimension contributions served from the memo instead of recomputed.
    reused_dims: u64,
    /// Gram matrices assembled from the cache.
    builds: u64,
}

impl GramCache {
    /// Builds the difference cache for a dataset (`x` rows must share the
    /// dimensionality; the caller has validated this).
    pub fn new(x: &[Vec<f64>]) -> Self {
        let dims = x.first().map_or(0, |r| r.len());
        let mut cache = GramCache {
            n: 0,
            dims,
            points: Vec::with_capacity(x.len() * dims),
            diffs: Vec::with_capacity(x.len() * (x.len() + 1) / 2 * dims),
            memo_ls: Vec::new(),
            memo_scaled: vec![Vec::new(); dims],
            memo_s: Vec::new(),
            memo_e: Vec::new(),
            reused_dims: 0,
            builds: 0,
        };
        for row in x {
            cache.append(row);
        }
        cache
    }

    /// Appends one point: extends the packed difference rows in place
    /// (`O(n·dims)`), invalidating the assembly memo.
    pub fn append(&mut self, row: &[f64]) {
        if self.n == 0 {
            self.dims = row.len();
            self.memo_scaled = vec![Vec::new(); self.dims];
        }
        debug_assert_eq!(row.len(), self.dims);
        // New packed row: pairs (n, 0), …, (n, n). The diagonal difference
        // is exactly 0.0 in every dimension.
        for j in 0..self.n {
            for (d, v) in row.iter().enumerate() {
                self.diffs.push(v - self.points[j * self.dims + d]);
            }
        }
        self.diffs.extend(std::iter::repeat_n(0.0, self.dims));
        self.points.extend_from_slice(row);
        self.n += 1;
        self.memo_ls.clear();
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no points are cached.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Input dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Gram matrices assembled through the memoized path so far.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Per-dimension contributions served from the memo.
    pub fn reused_dims(&self) -> u64 {
        self.reused_dims
    }

    /// Assembles the Gram matrix for `params` into `out`, reusing the
    /// per-dimension memo where the lengthscales are unchanged since the
    /// previous call. Lower triangle is computed, the upper is mirrored.
    pub fn assemble_into(&mut self, params: &GpParams, out: &mut Matrix) {
        let pairs = pair_index(self.n, 0);
        let ls: Vec<f64> = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let cold = self.memo_ls.is_empty();
        if cold {
            for scaled in &mut self.memo_scaled {
                scaled.clear();
                scaled.resize(pairs, 0.0);
            }
            self.memo_s.clear();
            self.memo_s.resize(pairs, 0.0);
            self.memo_e.clear();
            self.memo_e.resize(pairs, 0.0);
        }
        let mut changed = false;
        for (d, &l) in ls.iter().enumerate() {
            if !cold && self.memo_ls[d].to_bits() == l.to_bits() {
                self.reused_dims += 1;
                continue;
            }
            changed = true;
            let scaled = &mut self.memo_scaled[d];
            for (p, out_p) in scaled.iter_mut().enumerate() {
                let t = self.diffs[p * self.dims + d] / l;
                *out_p = t * t;
            }
        }
        if changed {
            // Accumulate in dimension order — the same association the
            // per-pair kernel loop used, so the sums are bit-identical.
            self.memo_s.iter_mut().for_each(|s| *s = 0.0);
            for scaled in &self.memo_scaled {
                for (s, t) in self.memo_s.iter_mut().zip(scaled) {
                    *s += t;
                }
            }
            for (e, s) in self.memo_e.iter_mut().zip(&self.memo_s) {
                *e = (-0.5 * s).exp();
            }
        }
        self.memo_ls = ls;
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        out.reset(self.n);
        for i in 0..self.n {
            for j in 0..=i {
                let mut k = sv * self.memo_e[pair_index(i, j)];
                if i == j {
                    k += noise + 1e-10;
                }
                out.set(i, j, k);
                out.set(j, i, k);
            }
        }
        self.builds += 1;
    }

    /// Memo-free assembly (same bits as [`GramCache::assemble_into`]):
    /// shared-reference, so candidate parameter sets can be scored from
    /// worker threads against one cache.
    pub fn assemble_fresh_into(&self, params: &GpParams, out: &mut Matrix) {
        let ls: Vec<f64> = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        out.reset(self.n);
        for i in 0..self.n {
            for j in 0..=i {
                let base = pair_index(i, j) * self.dims;
                let mut s = 0.0;
                for (d, &l) in ls.iter().enumerate() {
                    let t = self.diffs[base + d] / l;
                    s += t * t;
                }
                let mut k = sv * (-0.5 * s).exp();
                if i == j {
                    k += noise + 1e-10;
                }
                out.set(i, j, k);
                out.set(j, i, k);
            }
        }
    }

    /// The covariance row of point `i` against every earlier point, plus its
    /// own (noise-inflated) diagonal — exactly the entries a from-scratch
    /// Gram would place in row `i` of its lower triangle. Feeds
    /// [`crate::linalg::Cholesky::append_row`] on the incremental fit path.
    pub fn kernel_row(&self, i: usize, params: &GpParams) -> (Vec<f64>, f64) {
        assert!(i < self.n, "kernel_row index out of range");
        let ls: Vec<f64> = params.log_lengthscales.iter().map(|l| l.exp()).collect();
        let sv = params.log_signal_var.exp();
        let noise = params.log_noise_var.exp();
        let row = (0..i)
            .map(|j| {
                let base = pair_index(i, j) * self.dims;
                let mut s = 0.0;
                for (d, &l) in ls.iter().enumerate() {
                    let t = self.diffs[base + d] / l;
                    s += t * t;
                }
                sv * (-0.5 * s).exp()
            })
            .collect();
        // Diagonal: zero squared distance, so the kernel is exactly the
        // signal variance (sv · exp(−0) ≡ sv bitwise).
        (row, sv + (noise + 1e-10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Rng;

    /// The pre-cache reference: the per-pair kernel loop the cache replaced.
    fn naive_gram(x: &[Vec<f64>], params: &GpParams) -> Matrix {
        let noise = params.log_noise_var.exp();
        Matrix::from_fn(x.len(), |i, j| {
            let mut s = 0.0;
            for ((a, b), log_l) in x[i].iter().zip(&x[j]).zip(&params.log_lengthscales) {
                let l = log_l.exp();
                let d = (a - b) / l;
                s += d * d;
            }
            params.log_signal_var.exp() * (-0.5 * s).exp()
                + if i == j { noise + 1e-10 } else { 0.0 }
        })
    }

    fn dataset(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| (0..dims).map(|_| rng.uniform()).collect())
            .collect()
    }

    fn params(dims: usize, seed: u64) -> GpParams {
        let mut rng = Rng::new(seed);
        GpParams {
            log_lengthscales: (0..dims)
                .map(|_| rng.uniform_in((0.05f64).ln(), (2.0f64).ln()))
                .collect(),
            log_signal_var: rng.uniform_in((0.2f64).ln(), (3.0f64).ln()),
            log_noise_var: rng.uniform_in((1e-4f64).ln(), (0.3f64).ln()),
        }
    }

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix) {
        assert_eq!(a.n(), b.n());
        for i in 0..a.n() {
            for j in 0..a.n() {
                assert_eq!(
                    a.get(i, j).to_bits(),
                    b.get(i, j).to_bits(),
                    "gram mismatch at ({i},{j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn cached_assembly_is_bitwise_identical_to_naive() {
        for seed in 0..8 {
            let x = dataset(12, 4, seed);
            let p = params(4, seed ^ 0xABCD);
            let mut cache = GramCache::new(&x);
            let mut got = Matrix::zeros(0);
            cache.assemble_into(&p, &mut got);
            assert_bitwise_eq(&got, &naive_gram(&x, &p));
            // Second assembly with identical params: full memo reuse.
            let reused_before = cache.reused_dims();
            cache.assemble_into(&p, &mut got);
            assert_bitwise_eq(&got, &naive_gram(&x, &p));
            assert_eq!(cache.reused_dims(), reused_before + 4);
        }
    }

    #[test]
    fn memoized_and_fresh_paths_agree_after_partial_changes() {
        let x = dataset(9, 4, 3);
        let mut cache = GramCache::new(&x);
        let mut memo = Matrix::zeros(0);
        let mut fresh = Matrix::zeros(0);
        let mut p = params(4, 17);
        for step in 0..6 {
            // Perturb one coordinate at a time, like coordinate descent.
            match step % 3 {
                0 => p.log_lengthscales[step % 4] += 0.4,
                1 => p.log_signal_var -= 0.15,
                _ => p.log_noise_var += 0.15,
            }
            cache.assemble_into(&p, &mut memo);
            cache.assemble_fresh_into(&p, &mut fresh);
            assert_bitwise_eq(&memo, &fresh);
            assert_bitwise_eq(&memo, &naive_gram(&x, &p));
        }
        assert!(
            cache.reused_dims() > 0,
            "coordinate steps must reuse unchanged dimensions"
        );
    }

    #[test]
    fn append_extends_the_cache_consistently() {
        let x = dataset(10, 3, 5);
        let p = params(3, 9);
        let mut grown = GramCache::new(&x[..6]);
        for row in &x[6..] {
            grown.append(row);
        }
        let scratch = GramCache::new(&x);
        let mut a = Matrix::zeros(0);
        let mut b = Matrix::zeros(0);
        grown.assemble_into(&p, &mut a);
        GramCache::assemble_fresh_into(&scratch, &p, &mut b);
        assert_bitwise_eq(&a, &b);
    }

    #[test]
    fn kernel_row_matches_last_gram_row() {
        let x = dataset(7, 4, 11);
        let p = params(4, 13);
        let cache = GramCache::new(&x);
        let gram = naive_gram(&x, &p);
        for i in [3usize, 6] {
            let (row, diag) = cache.kernel_row(i, &p);
            assert_eq!(row.len(), i);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), gram.get(i, j).to_bits());
            }
            assert_eq!(diag.to_bits(), gram.get(i, i).to_bits());
        }
    }

    #[test]
    fn assembled_gram_is_symmetric() {
        let x = dataset(11, 4, 21);
        let p = params(4, 22);
        let mut cache = GramCache::new(&x);
        let mut k = Matrix::zeros(0);
        cache.assemble_into(&p, &mut k);
        for i in 0..k.n() {
            for j in 0..k.n() {
                assert_eq!(k.get(i, j).to_bits(), k.get(j, i).to_bits());
            }
        }
    }
}
