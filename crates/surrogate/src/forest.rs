//! Random-Forest regression — the alternative surrogate of §6.5/Figure 26.
//!
//! Bagged CART regression trees: each tree is grown on a bootstrap sample
//! with per-split feature subsampling; predictions average the trees, and
//! the across-tree variance serves as the (heuristic) predictive
//! uncertainty for Expected Improvement.

use crate::Surrogate;
use relm_common::{Error, Result, Rng};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_leaf: usize,
    /// Fraction of features considered per split.
    pub feature_fraction: f64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 48,
            max_depth: 10,
            min_leaf: 2,
            feature_fraction: 0.75,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<Node>,
}

impl Forest {
    /// Fits a forest. Deterministic given the seed.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: ForestParams, seed: u64) -> Result<Forest> {
        if x.is_empty() || x.len() != y.len() {
            return Err(Error::Numerical(
                "forest needs matching, non-empty inputs".into(),
            ));
        }
        let mut rng = Rng::new(seed ^ 0xBB67_AE85);
        let trees = (0..params.n_trees.max(1))
            .map(|_| {
                // Bootstrap sample.
                let idx: Vec<usize> = (0..x.len()).map(|_| rng.below(x.len())).collect();
                grow(x, y, &idx, 0, &params, &mut rng)
            })
            .collect();
        Ok(Forest { trees })
    }

    /// Mean prediction across trees.
    pub fn predict_mean(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Mean and across-tree variance.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64;
        (mean, var.max(1e-10))
    }
}

impl Surrogate for Forest {
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        Forest::predict(self, x)
    }
}

fn grow(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    depth: usize,
    params: &ForestParams,
    rng: &mut Rng,
) -> Node {
    let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
    if depth >= params.max_depth || idx.len() < params.min_leaf * 2 {
        return Node::Leaf { value: mean };
    }
    let sse: f64 = idx.iter().map(|&i| (y[i] - mean).powi(2)).sum();
    if sse < 1e-12 {
        return Node::Leaf { value: mean };
    }

    let dims = x[0].len();
    let n_features = ((dims as f64 * params.feature_fraction).ceil() as usize).clamp(1, dims);
    let mut features: Vec<usize> = (0..dims).collect();
    rng.shuffle(&mut features);
    features.truncate(n_features);

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for &f in &features {
        let mut vals: Vec<(f64, f64)> = idx.iter().map(|&i| (x[i][f], y[i])).collect();
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature value"));

        // Prefix sums for O(n) split evaluation.
        let total_sum: f64 = vals.iter().map(|(_, yi)| yi).sum();
        let n = vals.len() as f64;
        let mut left_sum = 0.0;
        for (k, window) in vals.windows(2).enumerate() {
            left_sum += window[0].1;
            if window[0].0 == window[1].0 {
                continue; // no threshold between equal values
            }
            let left_n = (k + 1) as f64;
            let right_n = n - left_n;
            if (left_n as usize) < params.min_leaf || (right_n as usize) < params.min_leaf {
                continue;
            }
            // Variance-reduction gain ∝ Σ n_c * mean_c² (constant terms drop).
            let right_sum = total_sum - left_sum;
            let gain = left_sum * left_sum / left_n + right_sum * right_sum / right_n
                - total_sum * total_sum / n;
            let threshold = (window[0].0 + window[1].0) * 0.5;
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((f, threshold, gain));
            }
        }
    }

    let Some((feature, threshold, gain)) = best else {
        return Node::Leaf { value: mean };
    };
    if gain <= 1e-12 {
        return Node::Leaf { value: mean };
    }

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| x[i][feature] <= threshold);
    Node::Split {
        feature,
        threshold,
        left: Box::new(grow(x, y, &left_idx, depth + 1, params, rng)),
        right: Box::new(grow(x, y, &right_idx, depth + 1, params, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, f: impl Fn(&[f64]) -> f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::new(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.uniform(), rng.uniform()]).collect();
        let y = x.iter().map(|v| f(v)).collect();
        (x, y)
    }

    #[test]
    fn fits_a_step_function() {
        let (x, y) = dataset(120, |v| if v[0] > 0.5 { 5.0 } else { 1.0 }, 1);
        let forest = Forest::fit(&x, &y, ForestParams::default(), 1).unwrap();
        assert!((forest.predict_mean(&[0.9, 0.5]) - 5.0).abs() < 0.5);
        assert!((forest.predict_mean(&[0.1, 0.5]) - 1.0).abs() < 0.5);
    }

    #[test]
    fn fits_nonlinear_interactions() {
        let (x, y) = dataset(250, |v| v[0] * v[1] * 10.0, 2);
        let forest = Forest::fit(&x, &y, ForestParams::default(), 2).unwrap();
        let mut err = 0.0;
        let mut rng = Rng::new(99);
        for _ in 0..50 {
            let p = [rng.uniform(), rng.uniform()];
            err += (forest.predict_mean(&p) - p[0] * p[1] * 10.0).abs();
        }
        assert!(err / 50.0 < 1.2, "mean abs error {}", err / 50.0);
    }

    #[test]
    fn predictions_stay_within_label_hull() {
        let (x, y) = dataset(100, |v| v[0] * 3.0 - 1.0, 3);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let forest = Forest::fit(&x, &y, ForestParams::default(), 3).unwrap();
        let mut rng = Rng::new(4);
        for _ in 0..100 {
            let p = [rng.uniform() * 2.0 - 0.5, rng.uniform()];
            let m = forest.predict_mean(&p);
            assert!(
                m >= lo - 1e-9 && m <= hi + 1e-9,
                "prediction {m} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn trees_disagree_between_clusters() {
        // Two well-separated clusters; bootstrap trees place the split
        // boundary differently, so across-tree variance peaks in the gap.
        let mut rng = Rng::new(5);
        let mut x: Vec<Vec<f64>> = (0..40).map(|_| vec![rng.uniform() * 0.2]).collect();
        x.extend((0..40).map(|_| vec![0.8 + rng.uniform() * 0.2]));
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[0] > 0.5 { 10.0 } else { 0.0 })
            .collect();
        let forest = Forest::fit(&x, &y, ForestParams::default(), 5).unwrap();
        let (_, var_core) = forest.predict(&[0.1]);
        let (_, var_gap) = forest.predict(&[0.5]);
        assert!(
            var_gap > var_core,
            "gap variance {var_gap} should exceed core variance {var_core}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = dataset(60, |v| v[0] + v[1], 6);
        let f1 = Forest::fit(&x, &y, ForestParams::default(), 7).unwrap();
        let f2 = Forest::fit(&x, &y, ForestParams::default(), 7).unwrap();
        assert_eq!(f1.predict_mean(&[0.3, 0.6]), f2.predict_mean(&[0.3, 0.6]));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Forest::fit(&[], &[], ForestParams::default(), 1).is_err());
        assert!(Forest::fit(&[vec![0.0]], &[1.0, 2.0], ForestParams::default(), 1).is_err());
    }

    #[test]
    fn constant_targets_produce_constant_predictions() {
        let (x, _) = dataset(50, |_| 0.0, 8);
        let y = vec![3.5; 50];
        let forest = Forest::fit(&x, &y, ForestParams::default(), 8).unwrap();
        assert_eq!(forest.predict_mean(&[0.5, 0.5]), 3.5);
    }
}
