//! Latin Hypercube Sampling (§5.1): near-random samples of a
//! multidimensional space with good per-dimension coverage, used to
//! bootstrap the Bayesian optimizer (Table 7).

use relm_common::Rng;

/// Draws `n` LHS samples in `[0, 1]^dims`. Each dimension is divided into
/// `n` strata; each stratum is hit exactly once per dimension.
pub fn latin_hypercube(n: usize, dims: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    if n == 0 || dims == 0 {
        return Vec::new();
    }
    // One shuffled stratum assignment per dimension.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        strata.push(idx);
    }
    (0..n)
        .map(|i| {
            (0..dims)
                .map(|d| {
                    let stratum = strata[d][i] as f64;
                    (stratum + rng.uniform()) / n as f64
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_unit_cube() {
        let mut rng = Rng::new(1);
        for sample in latin_hypercube(16, 4, &mut rng) {
            assert_eq!(sample.len(), 4);
            for v in sample {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn each_stratum_hit_exactly_once_per_dimension() {
        let n = 10;
        let mut rng = Rng::new(2);
        let samples = latin_hypercube(n, 3, &mut rng);
        for d in 0..3 {
            let mut hits = vec![0usize; n];
            for s in &samples {
                hits[(s[d] * n as f64).floor() as usize] += 1;
            }
            assert!(hits.iter().all(|&h| h == 1), "dimension {d}: {hits:?}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = Rng::new(3);
        assert!(latin_hypercube(0, 4, &mut rng).is_empty());
        assert!(latin_hypercube(4, 0, &mut rng).is_empty());
        assert_eq!(latin_hypercube(1, 2, &mut rng).len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = latin_hypercube(8, 4, &mut Rng::new(9));
        let b = latin_hypercube(8, 4, &mut Rng::new(9));
        assert_eq!(a, b);
    }
}
