//! Sparse large-n approximation policy: deterministic inducing-set
//! selection for subset-of-data Gaussian processes.
//!
//! Exact GP inference is O(n³) per hyperparameter evaluation, and the
//! system now manufactures large datasets: warm-start priors inject past
//! observations and long-running serve sessions accumulate hundreds of
//! settled evaluations. [`SparsePolicy`] caps the surrogate's working set:
//! below the threshold the fitter runs the exact path (byte-identical to a
//! policy-free fitter); above it, the fit restricts itself to an
//! *inducing subset* of at most [`SparsePolicy::inducing`] observations
//! chosen by [`select_inducing`] — greedy max-min (farthest-point)
//! selection in the feature cube. The subset spreads over the design
//! space, so the subset-of-data GP keeps global coverage while fit cost
//! drops from O(n³) to O(n·m + m³) with m fixed.
//!
//! Everything is deterministic: the selection is a pure function of the
//! dataset, the subset size, and a seeded start index, with strict-`>`
//! comparisons so ties break toward the lowest index. Sparse fits are
//! therefore byte-identical across thread counts and replay runs, exactly
//! like the exact path.

use serde::{Deserialize, Serialize};

/// When (and how hard) the fitter switches to the sparse approximation.
///
/// The default is [`SparsePolicy::exact`] — never approximate — so every
/// existing trace replays byte-identically unless a caller opts in (e.g.
/// via `BoConfig::sparse`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparsePolicy {
    /// Largest dataset fitted exactly. The sparse path engages strictly
    /// above this count.
    pub threshold: usize,
    /// Inducing-subset size used above the threshold (clamped to the
    /// dataset size, floored at 1).
    pub inducing: usize,
}

/// Default exact/sparse crossover: exact GPs stay comfortably under 10ms
/// up to about this many observations on commodity cores.
pub const DEFAULT_SPARSE_THRESHOLD: usize = 128;

/// Default inducing-subset size: large enough that fig20-style proposal
/// quality stays within a few percent of exact, small enough that a full
/// hyperparameter search over the subset fits in single-digit
/// milliseconds.
pub const DEFAULT_INDUCING: usize = 64;

impl SparsePolicy {
    /// Never approximate — the byte-identical default.
    pub fn exact() -> Self {
        SparsePolicy {
            threshold: usize::MAX,
            inducing: 0,
        }
    }

    /// The recommended large-n configuration: exact at n ≤
    /// [`DEFAULT_SPARSE_THRESHOLD`], a [`DEFAULT_INDUCING`]-point subset
    /// above.
    pub fn large_n() -> Self {
        SparsePolicy {
            threshold: DEFAULT_SPARSE_THRESHOLD,
            inducing: DEFAULT_INDUCING,
        }
    }

    /// True when a dataset of `n` observations should be approximated.
    pub fn applies(&self, n: usize) -> bool {
        n > self.threshold
    }

    /// Subset size for a dataset of `n` observations.
    pub fn subset_size(&self, n: usize) -> usize {
        self.inducing.clamp(1, n)
    }
}

impl Default for SparsePolicy {
    fn default() -> Self {
        SparsePolicy::exact()
    }
}

/// Greedy max-min (farthest-point) subset selection.
///
/// Starting from `points[start % points.len()]`, repeatedly adds the point
/// whose squared Euclidean distance to the chosen set is largest, until
/// `m` points are chosen. Comparisons are strict, so among equally distant
/// candidates the lowest index wins — the selection is a pure function of
/// `(points, m, start)` with no RNG and no float-order ambiguity. Returns
/// the chosen indices in ascending order (dataset order), so downstream
/// fits see observations in the same relative order the history recorded
/// them.
///
/// `m >= points.len()` selects everything. Cost is O(n·m·dims).
pub fn select_inducing(points: &[Vec<f64>], m: usize, start: usize) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if m >= n {
        return (0..n).collect();
    }
    let m = m.max(1);
    let start = start % n;
    let mut chosen = Vec::with_capacity(m);
    chosen.push(start);
    // min_d2[i] = squared distance from points[i] to the chosen set.
    let mut min_d2: Vec<f64> = points.iter().map(|p| dist2(p, &points[start])).collect();
    while chosen.len() < m {
        let mut best = 0usize;
        let mut best_d2 = f64::NEG_INFINITY;
        for (i, &d2) in min_d2.iter().enumerate() {
            if d2 > best_d2 {
                best_d2 = d2;
                best = i;
            }
        }
        chosen.push(best);
        for (d2, p) in min_d2.iter_mut().zip(points) {
            let cand = dist2(p, &points[best]);
            if cand < *d2 {
                *d2 = cand;
            }
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Squared Euclidean distance, accumulated in dimension order.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Rng;

    fn cloud(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| (0..dims).map(|_| rng.uniform()).collect())
            .collect()
    }

    #[test]
    fn selects_everything_when_m_covers_the_set() {
        let pts = cloud(7, 3, 1);
        assert_eq!(select_inducing(&pts, 7, 0), (0..7).collect::<Vec<_>>());
        assert_eq!(select_inducing(&pts, 20, 3), (0..7).collect::<Vec<_>>());
        assert!(select_inducing(&[], 4, 0).is_empty());
    }

    #[test]
    fn selection_is_deterministic_and_sorted() {
        let pts = cloud(50, 4, 9);
        let a = select_inducing(&pts, 12, 5);
        let b = select_inducing(&pts, 12, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "indices must be sorted");
        assert!(a.contains(&5), "the seeded start point must be chosen");
    }

    #[test]
    fn ties_break_toward_the_lowest_index() {
        // Four corners of a square plus the center: after the center, the
        // corners are all equally far — the lowest index must win each
        // round.
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
        ];
        let idx = select_inducing(&pts, 2, 4);
        assert_eq!(idx, vec![0, 4]);
    }

    #[test]
    fn spreads_over_clusters() {
        // Two tight clusters far apart: a 2-point subset must take one
        // point from each, whichever cluster the start lands in.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![10.0 + 0.01 * i as f64, 0.0]);
        }
        for start in [0, 7, 13, 19] {
            let idx = select_inducing(&pts, 2, start);
            let sides: Vec<bool> = idx.iter().map(|&i| pts[i][0] > 5.0).collect();
            assert_ne!(sides[0], sides[1], "start={start}: subset {idx:?}");
        }
    }

    #[test]
    fn policy_defaults_are_exact() {
        let p = SparsePolicy::default();
        assert!(!p.applies(1_000_000));
        let l = SparsePolicy::large_n();
        assert!(!l.applies(DEFAULT_SPARSE_THRESHOLD));
        assert!(l.applies(DEFAULT_SPARSE_THRESHOLD + 1));
        assert_eq!(l.subset_size(1000), DEFAULT_INDUCING);
        assert_eq!(l.subset_size(3), 3);
    }
}
