//! Allocation-churn regression test for the incremental fit path.
//!
//! `GpFitter::observe` + `GpFitter::refit` form BO's steady-state loop: one
//! new observation, one cheap refit, once per iteration. The append path
//! must therefore reuse its scratch — the kernel-row buffer, the
//! standardized-target buffer, and the stored packed-Cholesky factor (grown
//! in place, amortized) — instead of reallocating per observation. This
//! test pins that with a counting global allocator: the measured
//! observe+refit round is allowed the allocations that are inherent to
//! returning an owned `Gp` (the training-set clone, one factor copy, the
//! weight solve) plus a small constant, and nothing proportional to the
//! number of appended rows.
//!
//! This file intentionally holds a single test: the counter is global to
//! the test binary, and libtest runs tests in this binary's process.

use relm_surrogate::GpFitter;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn dataset(n: usize, dims: usize) -> Vec<(Vec<f64>, f64)> {
    // Deterministic quasi-random points; no RNG dependency needed here.
    (0..n)
        .map(|i| {
            let x: Vec<f64> = (0..dims)
                .map(|d| {
                    let v = ((i * 37 + d * 101 + 13) % 97) as f64 / 96.0;
                    v.clamp(0.01, 0.99)
                })
                .collect();
            let y = x
                .iter()
                .enumerate()
                .map(|(d, v)| (v * (d as f64 + 1.3)).sin())
                .sum();
            (x, y)
        })
        .collect()
}

#[test]
fn observe_and_refit_do_not_reallocate_per_observation() {
    const DIMS: usize = 4;
    const N0: usize = 48;
    const BATCH: usize = 16;
    let data = dataset(N0 + 2 * BATCH, DIMS);

    let mut fitter = GpFitter::new(1);
    for (x, y) in &data[..N0] {
        fitter.observe(x.clone(), *y).unwrap();
    }
    fitter.fit_full(7).unwrap();

    // Warm-up round: grows every scratch buffer to its working size.
    for (x, y) in &data[N0..N0 + BATCH] {
        fitter.observe(x.clone(), *y).unwrap();
    }
    fitter.refit().unwrap();

    // Measured round. Observation vectors are cloned up front so the
    // counter sees only the fitter's own allocations.
    let batch: Vec<(Vec<f64>, f64)> = data[N0 + BATCH..].to_vec();
    let n_final = N0 + 2 * BATCH;
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for (x, y) in batch {
        fitter.observe(x, y).unwrap();
    }
    let gp = fitter.refit().unwrap();
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(gp.len(), n_final);

    // Inherent cost of the returned Gp: the cloned training set (n row
    // vectors + the outer vector), one packed-factor copy, the weight
    // vector, and a handful of small hyperparameter/scratch vectors. The
    // old path added two heap vectors per appended kernel row and a second
    // full factor copy — with BATCH = 16 appends that pushed the count
    // well past this bound.
    let budget = (n_final + 24) as u64;
    assert!(
        allocs <= budget,
        "observe+refit allocated {allocs} times for {BATCH} appended rows \
         at n={n_final} (budget {budget}): the append path is reallocating \
         per observation again"
    );
}
