//! # relm-app
//!
//! The memory-based analytics engine substrate: a Spark-like dataflow model
//! (applications as sequences of stages divided by shuffle dependencies,
//! stages parallelized into tasks scheduled in waves over container slots)
//! and a deterministic execution simulator that runs an application under a
//! [`relm_common::MemoryConfig`] on a [`relm_cluster::ClusterSpec`].
//!
//! The simulator produces a [`RunResult`] (runtime, utilization metrics,
//! GC overheads, failure tallies) and a [`relm_profile::Profile`] (the
//! timelines RelM's statistics generator consumes). The memory behaviour of
//! each container is delegated to [`relm_jvm::JvmSim`]; container failures
//! (out-of-memory errors, physical-memory kills) follow the semantics of
//! §3.1 of the paper: failed containers are replaced, tasks are retried, and
//! an application aborts once a task has failed a preset number of times.

pub mod engine;
pub mod result;
pub mod spec;

pub use engine::{Engine, EngineCostModel};
pub use result::RunResult;
pub use spec::{AppSpec, InputSource, StageSpec};
