//! The execution simulator.
//!
//! [`Engine::run`] executes an [`AppSpec`] under a [`MemoryConfig`] on a
//! [`ClusterSpec`] and returns a [`RunResult`] plus the [`Profile`] a
//! monitoring stack would have collected. The simulation is deterministic
//! given the seed.
//!
//! ## Model
//!
//! Tasks are scheduled in waves across `containers × task_concurrency`
//! slots. A wave's wall time is the slowest container's task time:
//! input I/O (disk for HDFS reads, network for shuffle fetches, lineage
//! recomputation for cache misses), CPU work under core contention, spill
//! I/O for external sorts, plus the stop-the-world GC pauses reported by the
//! per-container [`JvmSim`].
//!
//! Failures follow §3.1: the JVM raises `OutOfMemoryError` when the live
//! demand cannot fit the heap (plus a stochastic component when the margin
//! is thin — deserialization and fetch buffers are bursty); the resource
//! manager kills containers whose RSS exceeds the physical cap. A failed
//! container is replaced and the wave retried; after
//! [`EngineCostModel::max_task_retries`] failures of the same wave the
//! application aborts.

use crate::result::RunResult;
use crate::spec::{AppSpec, InputSource, StageSpec};
use relm_cluster::{ClusterSpec, ContainerSpec, ResourceManager};
use relm_common::{Mem, MemoryConfig, Millis, Rng};
use relm_faults::{AbortCause, FaultPlan, ProfileNoise};
use relm_jvm::{GcCostModel, GcSettings, JvmSim, WavePressure};
use relm_obs::Obs;
use relm_profile::{ContainerTrace, Profile};
use serde::{Deserialize, Serialize};

/// Tunable constants of the execution model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineCostModel {
    /// GC pause/promotion constants passed to every container JVM.
    pub gc: GcCostModel,
    /// Number of times a wave is retried after container failures before the
    /// application job aborts (Spark's `spark.task.maxFailures` is 4).
    pub max_task_retries: u32,
    /// Stochastic out-of-memory model: probability scale at zero margin.
    pub soft_oom_coeff: f64,
    /// Stochastic out-of-memory model: margin decay constant.
    pub soft_oom_margin_scale: f64,
    /// Margins above this never fail stochastically.
    pub soft_oom_margin_cutoff: f64,
    /// Relative *transient* noise on a wave's live memory footprint,
    /// re-sampled on every attempt (allocation burstiness).
    pub mem_noise: f64,
    /// Relative *data skew* noise on a wave's live memory footprint, fixed
    /// per (stage, wave, container) across retries — a skewed partition stays
    /// skewed when its task is retried, which is how applications end up
    /// aborted after the task retry limit.
    pub skew_noise: f64,
    /// Unroll slack: memory the block manager keeps free when deciding
    /// whether one more partition can be cached.
    pub unroll_slack: Mem,
    /// Probability per container-wave that sustained promotion-failure
    /// thrashing raises a "GC overhead limit exceeded" OOM.
    pub gc_thrash_oom_prob: f64,
    /// Fraction of spill I/O time that is NOT hidden behind computation.
    pub spill_overlap: f64,
    /// Cost of re-populating one megabyte of cache lost to a container
    /// failure (ms/MB).
    pub recache_ms_per_mb: f64,
    /// Per-wave scheduling overhead.
    pub wave_overhead: Millis,
    /// Fixed startup time (driver, container launch).
    pub startup: Millis,
}

impl Default for EngineCostModel {
    fn default() -> Self {
        EngineCostModel {
            gc: GcCostModel::default(),
            max_task_retries: 4,
            soft_oom_coeff: 0.02,
            soft_oom_margin_scale: 0.02,
            soft_oom_margin_cutoff: 0.06,
            mem_noise: 0.03,
            skew_noise: 0.04,
            unroll_slack: Mem::mb(150.0),
            gc_thrash_oom_prob: 0.008,
            spill_overlap: 0.15,
            recache_ms_per_mb: 12.0,
            wave_overhead: Millis::ms(250.0),
            startup: Millis::secs(8.0),
        }
    }
}

/// Per-container mutable state during a run.
struct ContainerState {
    jvm: JvmSim,
    trace: ContainerTrace,
    cache_used: Mem,
    rng: Rng,
}

impl ContainerState {
    fn new(heap: Mem, settings: GcSettings, gc: GcCostModel, m_i: Mem, rng: Rng) -> Self {
        let mut jvm = JvmSim::new(heap, settings, gc);
        jvm.set_code_overhead(m_i);
        let trace = ContainerTrace {
            code_overhead: m_i,
            ..Default::default()
        };
        ContainerState {
            jvm,
            trace,
            cache_used: Mem::ZERO,
            rng,
        }
    }
}

/// The execution simulator for one cluster.
#[derive(Debug, Clone)]
pub struct Engine {
    cluster: ClusterSpec,
    cost: EngineCostModel,
    obs: Obs,
    faults: Option<FaultPlan>,
}

impl Engine {
    /// Creates an engine with the default cost model and observability
    /// disabled.
    pub fn new(cluster: ClusterSpec) -> Self {
        Engine {
            cluster,
            cost: EngineCostModel::default(),
            obs: Obs::disabled(),
            faults: None,
        }
    }

    /// Overrides the cost model.
    pub fn with_cost_model(mut self, cost: EngineCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Attaches an observability handle; every run then records an
    /// `engine.run` span plus run counters and a runtime histogram.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle (a disabled no-op by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attaches a fault plan; every run then suffers the plan's injected
    /// kills, node losses, stragglers, and profile corruption. An off plan
    /// (all rates zero) is dropped so the no-fault path stays untouched.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = if plan.is_off() { None } else { Some(plan) };
        self
    }

    /// The fault plan in effect, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The cluster this engine simulates.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &EngineCostModel {
        &self.cost
    }

    /// Runs the application under `config`, returning the run metrics and
    /// the collected profile. Deterministic given `seed`.
    pub fn run(&self, app: &AppSpec, config: &MemoryConfig, seed: u64) -> (RunResult, Profile) {
        let mut span = self.obs.span("engine.run");
        let mut sim = RunSim::new(self, app, config, seed);
        let (result, profile) = sim.execute();
        if span.is_recording() {
            span.set("app", app.name.as_str());
            span.set("seed", seed);
            span.set("gc_ms", sim.pause_time.as_ms());
            span.set("spill_mb", sim.spilled_bytes_mb);
            span.set("spill_events", sim.spill_events);
            span.set("aborted", sim.aborted);
            span.set(
                "abort_cause",
                sim.abort_cause.map(|c| c.as_str()).unwrap_or("none"),
            );
            span.set("injected_faults", result.injected_faults as u64);
            self.obs.inc("engine.runs");
            if sim.aborted {
                self.obs.inc("engine.aborts");
            }
            self.obs.record("engine.run_ms", result.runtime.as_ms());
            self.obs.record("engine.gc_ms", sim.pause_time.as_ms());
        }
        (result, profile)
    }
}

/// What one container did during one wave attempt.
struct ContainerWave {
    compute: Millis,
    gc_pause: Millis,
    cache_fill: Mem,
    shuffle_live: Mem,
    cpu_raw_core_ms: f64,
    disk_mb: f64,
    shuffle_mb: f64,
    spilled_mb: f64,
    spill_events: u32,
    tasks: u32,
    failure: Option<FailureKind>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FailureKind {
    Oom,
    RssKill(Mem),
    /// A fault plan killed this container (transient — not the config's
    /// fault).
    Injected,
}

impl FailureKind {
    fn abort_cause(self) -> AbortCause {
        match self {
            FailureKind::Oom => AbortCause::Oom,
            FailureKind::RssKill(_) => AbortCause::RssKill,
            FailureKind::Injected => AbortCause::InjectedKill,
        }
    }
}

enum WaveAttempt {
    Ok,
    ContainerFailed {
        idx: usize,
        kind: FailureKind,
        recovery: Millis,
    },
    /// A fault plan took a whole node down; every container on it dies.
    NodeLost {
        node: u32,
        recovery: Millis,
    },
}

/// The working state of one simulated run.
struct RunSim<'a> {
    engine: &'a Engine,
    app: &'a AppSpec,
    config: MemoryConfig,
    container_spec: ContainerSpec,
    containers: Vec<ContainerState>,
    rm: ResourceManager,
    now: Millis,
    aborted: bool,
    abort_cause: Option<AbortCause>,
    /// Injected stragglers + corrupted profiles (container-level injections
    /// are tallied by the resource manager).
    soft_injections: u32,
    spill_events: u64,
    // Aggregates.
    cpu_busy_core_ms: f64,
    disk_bytes_mb: f64,
    busy_time: Millis,
    pause_time: Millis,
    shuffle_bytes_mb: f64,
    spilled_bytes_mb: f64,
    // Cache accounting.
    cache_target_per_container: Mem,
    hit_ratio: f64,
    seed: u64,
}

/// FNV-1a over the skew coordinates: deterministic across platforms and
/// stable across retries of the same wave.
fn skew_hash(seed: u64, stage: &str, wave: u32, container: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in seed.to_le_bytes() {
        eat(b);
    }
    for b in stage.bytes() {
        eat(b);
    }
    for b in wave.to_le_bytes() {
        eat(b);
    }
    for b in (container as u64).to_le_bytes() {
        eat(b);
    }
    h
}

impl<'a> RunSim<'a> {
    fn new(engine: &'a Engine, app: &'a AppSpec, config: &MemoryConfig, seed: u64) -> Self {
        let cluster = &engine.cluster;
        let container_spec = cluster.container(config.containers_per_node);
        let n_containers = cluster.total_containers(config.containers_per_node);
        let settings = GcSettings::from_config(config);
        let root = Rng::new(seed);
        let containers: Vec<ContainerState> = (0..n_containers)
            .map(|i| {
                ContainerState::new(
                    config.heap,
                    settings,
                    engine.cost.gc,
                    app.code_overhead,
                    root.fork(i as u64 + 1),
                )
            })
            .collect();

        let cache_demand_pc = app.cache_demand() / n_containers as f64;
        // Spark reserves a sliver of the storage pool for unroll memory;
        // usable storage is slightly below the configured capacity.
        let cache_cap = config.cache_capacity() * 0.97;
        // Unroll semantics: a partition is only cached while unrolling it
        // leaves room for the running tasks' working memory. Cache growth
        // stops once task memory would be squeezed out — which is why a
        // too-large Cache Capacity manifests as a lower hit ratio plus
        // memory pressure, not an immediate deterministic OOM (§3.3).
        let layout = relm_jvm::HeapLayout::new(config.heap, &settings);
        let max_unmanaged_mb = app
            .stages
            .iter()
            .map(|s| s.unmanaged_per_task.as_mb())
            .fold(0.0, f64::max);
        let live_bound = Mem::mb(max_unmanaged_mb) * config.task_concurrency.max(1) as f64;
        let fit_bound =
            (layout.usable() - app.code_overhead - live_bound - engine.cost.unroll_slack)
                .clamp_non_negative();
        let cache_target_per_container = cache_demand_pc.min(cache_cap).min(fit_bound);
        let hit_ratio = if cache_demand_pc.is_zero() {
            1.0
        } else {
            cache_target_per_container / cache_demand_pc
        };

        RunSim {
            engine,
            app,
            config: *config,
            container_spec,
            containers,
            rm: ResourceManager::new(),
            now: engine.cost.startup,
            aborted: false,
            abort_cause: None,
            soft_injections: 0,
            spill_events: 0,
            cpu_busy_core_ms: 0.0,
            disk_bytes_mb: 0.0,
            busy_time: Millis::ZERO,
            pause_time: Millis::ZERO,
            shuffle_bytes_mb: 0.0,
            spilled_bytes_mb: 0.0,
            cache_target_per_container,
            hit_ratio,
            seed,
        }
    }

    fn execute(&mut self) -> (RunResult, Profile) {
        for &stage_idx in &self.app.schedule() {
            let stage = self.app.stages[stage_idx].clone();
            self.run_stage(&stage);
            if self.aborted {
                break;
            }
        }
        self.finish()
    }

    fn run_stage(&mut self, stage: &StageSpec) {
        let n_containers = self.containers.len() as u32;
        let p = self.config.task_concurrency.max(1);
        let total_slots = n_containers * p;
        let waves = stage.tasks.div_ceil(total_slots);

        for wave in 0..waves {
            let first_task = wave * total_slots;
            let tasks_this_wave = (stage.tasks - first_task).min(total_slots);
            let base = tasks_this_wave / n_containers;
            let extra = tasks_this_wave % n_containers;

            let mut attempts = 0u32;
            loop {
                match self.attempt_wave(stage, wave, base, extra, attempts) {
                    WaveAttempt::Ok => break,
                    WaveAttempt::ContainerFailed {
                        idx,
                        kind,
                        recovery,
                    } => {
                        attempts += 1;
                        self.replace_container(idx, kind);
                        self.now += recovery;
                        if attempts >= self.engine.cost.max_task_retries {
                            self.aborted = true;
                            self.abort_cause = Some(kind.abort_cause());
                            return;
                        }
                    }
                    WaveAttempt::NodeLost { node, recovery } => {
                        attempts += 1;
                        // Every container on the node comes back as a fresh
                        // JVM on replacement hardware.
                        let cpn = self.config.containers_per_node.max(1) as usize;
                        let first = node as usize * cpn;
                        for idx in first..(first + cpn).min(self.containers.len()) {
                            self.replace_container(idx, FailureKind::Injected);
                        }
                        self.now += recovery;
                        if attempts >= self.engine.cost.max_task_retries {
                            self.aborted = true;
                            self.abort_cause = Some(AbortCause::NodeLoss);
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Simulates what one container does during this wave attempt.
    /// `straggle` is an injected slowdown multiplier (1.0 = healthy): it
    /// stretches the container's compute time and its GC pauses alike.
    fn simulate_container(
        &mut self,
        idx: usize,
        stage: &StageSpec,
        wave_idx: u32,
        tasks: u32,
        straggle: f64,
    ) -> ContainerWave {
        let cost = self.engine.cost;
        let p = self.config.task_concurrency.max(1);
        let n_per_node = self.config.containers_per_node.max(1);
        let cores = self.engine.cluster.cores_per_node as f64;
        let hit_ratio = self.hit_ratio;
        let code_overhead = self.app.code_overhead;
        let noise_level = self.app.noise;
        let cache_target = self.cache_target_per_container;
        let spec = self.container_spec;
        let per_task_shuffle_budget = self.config.shuffle_capacity() / p as f64;
        let now = self.now;

        let m_f = tasks as f64;
        let input_mb = stage.input_per_task.as_mb();

        // The m concurrent tasks share the container's bandwidth slice.
        let disk_mb_s = (spec.disk_mb_per_s_share / m_f).max(1.0);
        let net_mb_s = (spec.net_mb_per_s_share / m_f).max(1.0);

        let (input_time_ms, recompute_cpu_ms, input_disk_mb) = match stage.input {
            InputSource::Hdfs => (input_mb / disk_mb_s * 1000.0, 0.0, input_mb),
            InputSource::ShuffleRead => (input_mb / net_mb_s * 1000.0, 0.0, 0.0),
            InputSource::Cached {
                miss_penalty_ms_per_mb,
            } => {
                let miss = 1.0 - hit_ratio;
                (
                    miss * input_mb / disk_mb_s * 1000.0,
                    miss * input_mb * miss_penalty_ms_per_mb,
                    miss * input_mb,
                )
            }
        };

        // CPU contention: tasks per node vs physical cores.
        let active_per_node = (n_per_node * tasks) as f64;
        let contention = (active_per_node / cores).max(1.0);
        let cpu_raw_ms = input_mb * stage.cpu_ms_per_mb + recompute_cpu_ms;
        let cpu_time_ms = cpu_raw_ms * contention;

        // Shuffle sort/aggregation through the Task Shuffle pool. The sort
        // demand is the *deserialized* data volume (Java object expansion),
        // not the raw shuffle bytes.
        let (
            spill_events,
            spill_batch,
            shuffle_live_per_task,
            sort_live_per_task,
            spill_disk_mb,
            spilled_mb,
        ) = if stage.uses_shuffle_memory && !stage.input_per_task.is_zero() {
            let demand = stage.input_per_task * stage.shuffle_expansion;
            let budget = per_task_shuffle_budget;
            if demand <= budget {
                // Fully in-memory sort: the buffers live for the whole
                // task and tenure to Old.
                (0u32, Mem::ZERO, demand, demand, 0.0, 0.0)
            } else {
                let budget = budget.max(Mem::mb(8.0));
                // External sort: all but the resident buffer is written
                // to spill files and read back during the merge. The
                // resident buffer itself lives for the whole task and
                // tenures to Old just like an in-memory sort's buffer.
                let spills = ((demand / budget).ceil() as u32).saturating_sub(1).max(1);
                let spilled = (demand - budget).min(budget * spills as f64);
                (
                    spills,
                    budget,
                    budget,
                    budget,
                    spilled.as_mb() * 2.0,
                    spilled.as_mb(),
                )
            }
        } else {
            (0, Mem::ZERO, Mem::ZERO, Mem::ZERO, 0.0, 0.0)
        };

        let shuffle_write_mb = stage.shuffle_write_per_task.as_mb();
        // Spill I/O is sequential and substantially overlapped with the
        // sort/merge computation.
        let disk_time_ms =
            (spill_disk_mb * cost.spill_overlap + shuffle_write_mb) / disk_mb_s * 1000.0;

        let sort_live = sort_live_per_task * m_f;
        let state = &mut self.containers[idx];
        let noise = state.rng.noise_factor(noise_level);
        let compute = Millis::ms(
            (input_time_ms + cpu_time_ms + disk_time_ms) * noise * straggle
                + cost.wave_overhead.as_ms(),
        );

        // Cache population: fill toward this container's target.
        let cache_fill = if stage.cache_block_per_task.is_zero() {
            Mem::ZERO
        } else {
            (stage.cache_block_per_task * m_f)
                .min((cache_target - state.cache_used).clamp_non_negative())
        };

        // JVM pressure: sticky skew (fixed per stage/wave/container) plus
        // transient burstiness (re-sampled per attempt). Per-task variation
        // is independent, so the relative noise of the container's combined
        // working set shrinks with √(concurrency) — one big heap shared by
        // many tasks smooths allocation peaks that would sink a small heap
        // running few tasks.
        let noise_scale = 1.0 / m_f.sqrt();
        let skew = Rng::new(skew_hash(self.seed, &stage.name, wave_idx, idx))
            .noise_factor(cost.skew_noise * noise_scale);
        let state = &mut self.containers[idx];
        let mem_noise = state.rng.noise_factor(cost.mem_noise * noise_scale);
        let working = stage.unmanaged_per_task * m_f * skew * mem_noise;
        let shuffle_live = shuffle_live_per_task * m_f;
        let off_heap_noise = state.rng.noise_factor(0.06);
        let pressure = WavePressure {
            compute_time: compute,
            churn: stage.input_per_task * stage.churn_factor * m_f
                + stage.shuffle_write_per_task * m_f,
            working_set: working,
            tenured_delta: cache_fill,
            shuffle_live,
            spill_batch,
            spill_events: spill_events * tasks,
            // Fetch buffers cycle roughly twice per task: the allocated
            // (and discarded) volume is twice the live pool.
            off_heap_alloc: stage.off_heap_per_task * m_f * 2.0 * off_heap_noise,
            off_heap_live: stage.off_heap_per_task * m_f * off_heap_noise,
            sort_live,
        };

        state.jvm.set_cache_used(state.cache_used);
        state.jvm.set_wave_slowdown(straggle);
        let gc = state.jvm.simulate_wave(now, &pressure);

        // Failure checks.
        let failure = if gc.oom {
            Some(FailureKind::Oom)
        } else {
            let usable = state.jvm.layout().usable();
            let demand = code_overhead + state.cache_used + cache_fill + working + shuffle_live;
            let margin = (usable - demand) / usable;
            let soft_oom = margin < cost.soft_oom_margin_cutoff
                && state.rng.chance(
                    cost.soft_oom_coeff * (-margin.max(0.0) / cost.soft_oom_margin_scale).exp(),
                );
            // Sustained full-GC thrashing eventually surfaces as
            // "GC overhead limit exceeded" out-of-memory errors.
            let thrash_oom = gc.promotion_failure && state.rng.chance(cost.gc_thrash_oom_prob);
            if soft_oom || thrash_oom {
                Some(FailureKind::Oom)
            } else if gc.peak_rss > spec.phys_cap {
                Some(FailureKind::RssKill(gc.peak_rss))
            } else {
                None
            }
        };

        ContainerWave {
            compute,
            gc_pause: gc.gc_pause,
            cache_fill,
            shuffle_live,
            cpu_raw_core_ms: cpu_raw_ms + input_mb * 0.4,
            disk_mb: input_disk_mb + spill_disk_mb + shuffle_write_mb,
            shuffle_mb: if stage.uses_shuffle_memory {
                input_mb * stage.shuffle_expansion
            } else {
                0.0
            },
            spilled_mb,
            spill_events: spill_events * tasks,
            tasks,
            failure,
        }
    }

    /// Simulates one attempt at a wave across all containers.
    fn attempt_wave(
        &mut self,
        stage: &StageSpec,
        wave_idx: u32,
        base_tasks: u32,
        extra: u32,
        attempt: u32,
    ) -> WaveAttempt {
        let n = self.containers.len();
        let mut wave_wall = Millis::ZERO;
        let plan = self.engine.faults.as_ref();

        // Node loss preempts the whole wave: every container on the victim
        // node dies before any task finishes.
        if let Some(node) = plan.and_then(|p| {
            p.node_loss(
                self.seed,
                &stage.name,
                wave_idx,
                attempt,
                self.engine.cluster.nodes,
            )
        }) {
            let cpn = self.config.containers_per_node.max(1);
            let recovery = self.rm.report_node_loss(self.now, cpn);
            self.engine.obs.inc("faults.injected");
            self.engine.obs.inc("faults.injected.node_loss");
            return WaveAttempt::NodeLost { node, recovery };
        }

        for idx in 0..n {
            let tasks = base_tasks + u32::from((idx as u32) < extra);
            if tasks == 0 {
                continue;
            }

            let straggle = plan
                .and_then(|p| p.straggler(self.seed, &stage.name, wave_idx, idx, attempt))
                .unwrap_or(1.0);
            if straggle > 1.0 {
                self.soft_injections += 1;
                self.engine.obs.inc("faults.injected");
                self.engine.obs.inc("faults.injected.straggler");
            }

            let mut wave = self.simulate_container(idx, stage, wave_idx, tasks, straggle);

            // An injected kill takes the container down even if the wave
            // would have survived organically; organic failures win the
            // race because they fire first.
            if wave.failure.is_none()
                && plan
                    .and_then(|p| p.container_kill(self.seed, &stage.name, wave_idx, idx, attempt))
                    .is_some()
            {
                wave.failure = Some(FailureKind::Injected);
            }

            if let Some(kind) = wave.failure {
                // The attempt consumed time up to the failure.
                self.now += wave_wall.max(wave.compute * 0.7);
                let recovery = match kind {
                    FailureKind::Oom => self.rm.report_oom(self.now),
                    FailureKind::RssKill(rss) => self
                        .rm
                        .check_rss(self.now, &self.container_spec, rss)
                        .expect("rss kill failure implies rss above cap"),
                    FailureKind::Injected => {
                        self.engine.obs.inc("faults.injected");
                        self.engine.obs.inc("faults.injected.container_kill");
                        self.rm.report_injected_kill(self.now)
                    }
                };
                return WaveAttempt::ContainerFailed {
                    idx,
                    kind,
                    recovery,
                };
            }

            // Commit.
            let total = wave.compute + wave.gc_pause;
            wave_wall = wave_wall.max(total);
            let m_f = wave.tasks as f64;
            self.cpu_busy_core_ms += wave.cpu_raw_core_ms * m_f;
            self.disk_bytes_mb += wave.disk_mb * m_f;
            self.busy_time += total * m_f;
            self.pause_time += wave.gc_pause * m_f;
            self.shuffle_bytes_mb += wave.shuffle_mb * m_f;
            self.spilled_bytes_mb += wave.spilled_mb * m_f;
            self.spill_events += wave.spill_events as u64;

            let now = self.now;
            let state = &mut self.containers[idx];
            state.cache_used += wave.cache_fill;
            state.trace.running_tasks.push(now, wave.tasks);
            state.trace.cache_used.push(now, state.cache_used);
            state.trace.shuffle_used.push(now, wave.shuffle_live);
        }

        self.now += wave_wall;
        WaveAttempt::Ok
    }

    /// Replaces a failed container with a fresh JVM process. The replacement
    /// keeps the accumulated trace (the profiler observes the whole run) and
    /// is assumed to re-populate its cache during the retry (the time cost is
    /// charged in the recovery delay by the caller via `recache_ms_per_mb`).
    fn replace_container(&mut self, idx: usize, _kind: FailureKind) {
        let settings = GcSettings::from_config(&self.config);
        let lost_cache = self.containers[idx].cache_used;
        let mut old_trace = std::mem::take(&mut self.containers[idx].trace);
        // Flush the dying JVM's RSS samples into the trace now — the fresh
        // process starts a new sample log. The final sample is the peak that
        // triggered the failure.
        let mut last_t = self.now;
        for &(t, rss) in self.containers[idx].jvm.rss_samples() {
            old_trace.rss.push_clamped(t, rss);
            last_t = last_t.max(t);
        }
        old_trace
            .rss
            .push_clamped(last_t, self.containers[idx].jvm.peak_rss());
        let rng = self.containers[idx].rng.fork(0xDEAD_BEEF);
        let mut fresh = ContainerState::new(
            self.config.heap,
            settings,
            self.engine.cost.gc,
            self.app.code_overhead,
            rng,
        );
        fresh.trace = old_trace;
        fresh.cache_used = lost_cache;
        self.now += Millis::ms(lost_cache.as_mb() * self.engine.cost.recache_ms_per_mb);
        self.containers[idx] = fresh;
    }

    fn finish(&mut self) -> (RunResult, Profile) {
        let elapsed = self.now.max(Millis::ms(1.0));
        let cluster = &self.engine.cluster;
        let total_cores = (cluster.nodes * cluster.cores_per_node) as f64;
        let avg_cpu_util =
            (self.cpu_busy_core_ms / (total_cores * elapsed.as_ms())).clamp(0.0, 1.0);
        let total_disk_mb_s = cluster.disk_mb_per_s * cluster.nodes as f64;
        let avg_disk_util =
            (self.disk_bytes_mb / (total_disk_mb_s * elapsed.as_secs())).clamp(0.0, 1.0);

        let gc_overhead = if self.busy_time > Millis::ZERO {
            (self.pause_time / self.busy_time).clamp(0.0, 1.0)
        } else {
            0.0
        };

        let max_heap_util = self
            .containers
            .iter()
            .map(|c| c.jvm.peak_heap_used() / self.config.heap)
            .fold(0.0, f64::max)
            .clamp(0.0, 1.0);

        let spill_fraction = if self.shuffle_bytes_mb == 0.0 {
            0.0
        } else {
            (self.spilled_bytes_mb / self.shuffle_bytes_mb).clamp(0.0, 1.0)
        };

        let young_gcs: u64 = self.containers.iter().map(|c| c.jvm.young_gc_count()).sum();
        let full_gcs: u64 = self.containers.iter().map(|c| c.jvm.full_gc_count()).sum();

        // Decide profile corruption before assembling the result so the
        // injection tally includes it.
        let corruption = self
            .engine
            .faults
            .as_ref()
            .and_then(|p| p.profile_corruption(self.seed));
        if corruption.is_some() {
            self.soft_injections += 1;
            self.engine.obs.inc("faults.injected");
            self.engine.obs.inc("faults.injected.profile_corruption");
        }

        let result = RunResult {
            runtime: elapsed,
            aborted: self.aborted,
            abort_cause: self.abort_cause,
            container_failures: self.rm.failures(),
            injected_faults: self.rm.injected_failures() + self.soft_injections,
            oom_failures: self.rm.oom_failures(),
            rss_kills: self.rm.rss_kills(),
            max_heap_util,
            avg_cpu_util,
            avg_disk_util,
            gc_overhead,
            cache_hit_ratio: self.hit_ratio,
            spill_fraction,
            young_gcs,
            full_gcs,
        };

        let containers = self
            .containers
            .iter_mut()
            .map(|c| {
                let mut trace = std::mem::take(&mut c.trace);
                trace.gc_events = c.jvm.events().to_vec();
                trace.peak_heap_used = c.jvm.peak_heap_used();
                trace.peak_old_used = c.jvm.peak_old_used();
                for &(t, rss) in c.jvm.rss_samples() {
                    trace.rss.push_clamped(t, rss);
                }
                trace
            })
            .collect();

        let mut profile = Profile {
            app_name: self.app.name.clone(),
            config: self.config,
            duration: elapsed,
            cpu_avg: avg_cpu_util * 100.0,
            disk_avg: avg_disk_util * 100.0,
            cache_hit_ratio: self.hit_ratio,
            spill_fraction,
            containers,
            gc_overhead,
        };

        if let Some(mut noise) = corruption {
            corrupt_profile(&mut profile, &mut noise);
        }

        (result, profile)
    }
}

/// Degrades a collected profile the way a flaky monitoring stack does:
/// summary statistics drift (clock skew, partial sample windows) and
/// individual GC events go missing (log rotation, dropped scrapes). The
/// perturbation is multiplicative and clamped into each statistic's valid
/// range, so downstream consumers get a *plausible* but wrong profile —
/// exactly the failure mode white-box tuning must survive.
fn corrupt_profile(profile: &mut Profile, noise: &mut ProfileNoise) {
    profile.cpu_avg = (profile.cpu_avg * noise.factor()).clamp(0.0, 100.0);
    profile.disk_avg = (profile.disk_avg * noise.factor()).clamp(0.0, 100.0);
    profile.cache_hit_ratio = (profile.cache_hit_ratio * noise.factor()).clamp(0.0, 1.0);
    profile.spill_fraction = (profile.spill_fraction * noise.factor()).clamp(0.0, 1.0);
    profile.gc_overhead = (profile.gc_overhead * noise.factor()).clamp(0.0, 1.0);
    for trace in &mut profile.containers {
        let f = noise.factor();
        trace.peak_heap_used = trace.peak_heap_used * f;
        trace.peak_old_used = (trace.peak_old_used * f).min(trace.peak_heap_used);
        trace.gc_events.retain(|_| !noise.chance(0.3));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AppSpec, StageSpec};

    fn engine() -> Engine {
        Engine::new(ClusterSpec::cluster_a())
    }

    fn default_config() -> MemoryConfig {
        MemoryConfig {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            task_concurrency: 2,
            cache_fraction: 0.3,
            shuffle_fraction: 0.3,
            new_ratio: 2,
            survivor_ratio: 8,
        }
    }

    fn simple_app() -> AppSpec {
        let mut map = StageSpec::new("map", 200, Mem::mb(128.0));
        map.cpu_ms_per_mb = 25.0;
        map.unmanaged_per_task = Mem::mb(180.0);
        AppSpec::new("simple", vec![map])
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let e = engine();
        let app = simple_app();
        let cfg = default_config();
        let (r1, _) = e.run(&app, &cfg, 7);
        let (r2, _) = e.run(&app, &cfg, 7);
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_vary_runtime_slightly() {
        let e = engine();
        let app = simple_app();
        let cfg = default_config();
        let (r1, _) = e.run(&app, &cfg, 1);
        let (r2, _) = e.run(&app, &cfg, 2);
        assert_ne!(r1.runtime, r2.runtime);
        let ratio = r1.runtime / r2.runtime;
        assert!(ratio > 0.7 && ratio < 1.4, "noise too large: {ratio}");
    }

    #[test]
    fn more_containers_speed_up_cpu_bound_work() {
        let e = engine();
        let app = simple_app();
        let mut fat = default_config();
        let mut thin = default_config();
        thin.containers_per_node = 4;
        thin.heap = Mem::mb(1101.0);
        fat.containers_per_node = 1;
        let (r_fat, _) = e.run(&app, &fat, 3);
        let (r_thin, _) = e.run(&app, &thin, 3);
        assert!(
            r_thin.runtime < r_fat.runtime * 0.7,
            "thin {} vs fat {}",
            r_thin.runtime,
            r_fat.runtime
        );
    }

    #[test]
    fn cache_hit_ratio_follows_capacity() {
        let e = engine();
        let mut load = StageSpec::new("load", 160, Mem::mb(128.0));
        load.cache_block_per_task = Mem::mb(200.0); // 32GB demand >> capacity
        let mut iter = StageSpec::new("iter", 160, Mem::mb(200.0));
        iter.in_iteration = true;
        iter.input = InputSource::Cached {
            miss_penalty_ms_per_mb: 30.0,
        };
        let mut app = AppSpec::new("cachey", vec![load, iter]);
        app.iterations = 3;

        let cfg = default_config();
        let (r, _) = e.run(&app, &cfg, 5);
        // Demand per container = 32000/8 = 4000MB; capacity = 0.3*4404*0.97.
        assert!(r.cache_hit_ratio < 0.5, "hit ratio = {}", r.cache_hit_ratio);
        assert!(r.cache_hit_ratio > 0.2);

        let mut big = cfg;
        big.cache_fraction = 0.6;
        big.shuffle_fraction = 0.0;
        big.new_ratio = 5; // keep old large enough for the bigger cache
        let (r2, _) = e.run(&app, &big, 5);
        assert!(r2.cache_hit_ratio > r.cache_hit_ratio);
    }

    #[test]
    fn oversized_working_set_aborts() {
        let e = engine();
        let mut map = StageSpec::new("map", 64, Mem::mb(512.0));
        map.unmanaged_per_task = Mem::mb(3000.0); // cannot fit 2 tasks in 4.4GB
        let app = AppSpec::new("oom", vec![map]);
        let (r, _) = e.run(&app, &default_config(), 1);
        assert!(r.aborted);
        assert!(r.oom_failures > 0);
    }

    #[test]
    fn spills_happen_when_shuffle_pool_is_small() {
        let e = engine();
        let mut map = StageSpec::new("map", 60, Mem::mb(512.0));
        map.shuffle_write_per_task = Mem::mb(512.0);
        map.unmanaged_per_task = Mem::mb(300.0);
        let mut reduce = StageSpec::new("reduce", 60, Mem::mb(512.0));
        reduce.input = InputSource::ShuffleRead;
        reduce.uses_shuffle_memory = true;
        reduce.unmanaged_per_task = Mem::mb(200.0);
        let app = AppSpec::new("sort", vec![map, reduce]);

        let mut small = default_config();
        small.shuffle_fraction = 0.05;
        small.cache_fraction = 0.0;
        let (r_small, _) = e.run(&app, &small, 2);
        assert!(
            r_small.spill_fraction > 0.9,
            "spill = {}",
            r_small.spill_fraction
        );

        let mut big = default_config();
        big.shuffle_fraction = 0.5;
        big.cache_fraction = 0.0;
        let (r_big, _) = e.run(&app, &big, 2);
        assert!(r_big.spill_fraction < r_small.spill_fraction);
    }

    #[test]
    fn profile_contains_all_containers_and_timelines() {
        let e = engine();
        let app = simple_app();
        let cfg = default_config();
        let (_, profile) = e.run(&app, &cfg, 9);
        assert_eq!(profile.containers.len(), 8);
        for c in &profile.containers {
            assert!(!c.running_tasks.is_empty());
            assert_eq!(c.code_overhead, Mem::mb(110.0));
        }
        assert!(profile.duration > Millis::ZERO);
    }

    #[test]
    fn gc_overhead_grows_with_task_concurrency_under_memory_pressure() {
        let e = engine();
        let mut map = StageSpec::new("map", 400, Mem::mb(128.0));
        map.unmanaged_per_task = Mem::mb(380.0);
        map.churn_factor = 4.0;
        let app = AppSpec::new("pressure", vec![map]);
        let mut low = default_config();
        low.task_concurrency = 1;
        let mut high = default_config();
        high.task_concurrency = 6;
        let (r_low, _) = e.run(&app, &low, 4);
        let (r_high, _) = e.run(&app, &high, 4);
        assert!(
            r_high.gc_overhead >= r_low.gc_overhead,
            "gc overhead should not drop with concurrency: {} vs {}",
            r_high.gc_overhead,
            r_low.gc_overhead
        );
    }

    #[test]
    fn fault_injection_is_deterministic() {
        use relm_faults::{FaultConfig, FaultPlan};
        let e = engine().with_faults(FaultPlan::new(99, FaultConfig::uniform(0.10)));
        let app = simple_app();
        let cfg = default_config();
        let (r1, p1) = e.run(&app, &cfg, 7);
        let (r2, p2) = e.run(&app, &cfg, 7);
        assert_eq!(r1, r2);
        assert_eq!(p1.cpu_avg, p2.cpu_avg);
        assert_eq!(p1.cache_hit_ratio, p2.cache_hit_ratio);
    }

    #[test]
    fn injected_faults_slow_the_run_but_are_not_the_configs_fault() {
        use relm_faults::{FaultConfig, FaultPlan};
        let app = simple_app();
        let cfg = default_config();
        let (clean, _) = engine().run(&app, &cfg, 13);
        assert_eq!(clean.injected_faults, 0);

        let faulty = engine().with_faults(FaultPlan::new(5, FaultConfig::uniform(0.15)));
        let (r, _) = faulty.run(&app, &cfg, 13);
        assert!(r.injected_faults > 0, "a 15% plan must inject something");
        assert!(
            r.runtime > clean.runtime,
            "recovery delays must cost wall time: {} vs {}",
            r.runtime,
            clean.runtime
        );
        assert_eq!(r.oom_failures, 0);
        assert_eq!(r.rss_kills, 0);
        assert!(
            r.is_safe(),
            "injected faults must not mark the config unsafe"
        );
    }

    #[test]
    fn off_plan_matches_no_plan_exactly() {
        use relm_faults::{FaultConfig, FaultPlan};
        let app = simple_app();
        let cfg = default_config();
        let (plain, _) = engine().run(&app, &cfg, 21);
        let off = engine().with_faults(FaultPlan::new(1, FaultConfig::off()));
        let (gated, _) = off.run(&app, &cfg, 21);
        assert_eq!(plain, gated);
    }

    #[test]
    fn organic_aborts_carry_a_persistent_cause() {
        use relm_faults::{AbortCause, AbortClass};
        let e = engine();
        let mut map = StageSpec::new("map", 64, Mem::mb(512.0));
        map.unmanaged_per_task = Mem::mb(3000.0);
        let app = AppSpec::new("oom", vec![map]);
        let (r, _) = e.run(&app, &default_config(), 1);
        assert!(r.aborted);
        assert_eq!(r.abort_cause, Some(AbortCause::Oom));
        assert_eq!(r.abort_cause.unwrap().class(), AbortClass::Persistent);
        assert!(!r.is_safe());
    }

    #[test]
    fn utilization_metrics_are_fractions() {
        let e = engine();
        let (r, _) = e.run(&simple_app(), &default_config(), 11);
        for v in [
            r.avg_cpu_util,
            r.avg_disk_util,
            r.max_heap_util,
            r.gc_overhead,
        ] {
            assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        assert!(r.avg_cpu_util > 0.0);
    }
}
