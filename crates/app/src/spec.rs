//! Application and stage descriptions.
//!
//! An application is a sequence of stages (the paper tunes a *given workflow
//! with a given input data*, §2.2). Iterative applications (K-means, SVM,
//! PageRank) mark a group of stages as the iteration body; the engine
//! repeats that body `iterations` times, which is where cache hit ratios
//! start to matter.

use relm_common::Mem;
use serde::{Deserialize, Serialize};

/// Where a stage's tasks read their input from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InputSource {
    /// Input partitions read from the distributed filesystem (disk-bound).
    Hdfs,
    /// Shuffle blocks fetched over the network from map outputs.
    ShuffleRead,
    /// Cached partitions. Misses recompute the partition's lineage at
    /// `miss_penalty_ms_per_mb` per megabyte.
    Cached {
        /// Cost of recomputing one megabyte of a missed partition.
        miss_penalty_ms_per_mb: f64,
    },
}

/// One stage of computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage name (for the event log).
    pub name: String,
    /// Number of tasks — one per input partition.
    pub tasks: u32,
    /// Input volume each task processes.
    pub input_per_task: Mem,
    /// Input source.
    pub input: InputSource,
    /// CPU work per megabyte of input, in milliseconds on one core.
    pub cpu_ms_per_mb: f64,
    /// Shuffle output each task writes (map side).
    pub shuffle_write_per_task: Mem,
    /// Whether the stage sorts/aggregates its input through the Task Shuffle
    /// pool (reduce side); when the per-task share of the pool is smaller
    /// than the sort demand, the task spills to disk.
    pub uses_shuffle_memory: bool,
    /// Expansion factor from raw shuffle bytes to deserialized in-memory
    /// sort demand (Java object overhead; 3–5x is typical for text records).
    pub shuffle_expansion: f64,
    /// Live unmanaged memory each running task holds (deserialized input
    /// objects, partially processed partitions) — the `M_u` ground truth.
    pub unmanaged_per_task: Mem,
    /// Short-lived allocation volume as a multiple of the input volume.
    pub churn_factor: f64,
    /// Off-heap (native network buffer) bytes each task allocates.
    pub off_heap_per_task: Mem,
    /// Bytes of the task's output that are cached.
    pub cache_block_per_task: Mem,
    /// Whether this stage belongs to the iteration body.
    pub in_iteration: bool,
}

impl StageSpec {
    /// A conservative baseline stage; construct and override the fields that
    /// matter for the workload being described.
    pub fn new(name: &str, tasks: u32, input_per_task: Mem) -> Self {
        StageSpec {
            name: name.to_owned(),
            tasks,
            input_per_task,
            input: InputSource::Hdfs,
            cpu_ms_per_mb: 30.0,
            shuffle_write_per_task: Mem::ZERO,
            uses_shuffle_memory: false,
            shuffle_expansion: 3.0,
            unmanaged_per_task: input_per_task * 1.5,
            churn_factor: 2.5,
            off_heap_per_task: Mem::ZERO,
            cache_block_per_task: Mem::ZERO,
            in_iteration: false,
        }
    }

    /// Total input volume of the stage.
    pub fn total_input(&self) -> Mem {
        self.input_per_task * self.tasks as f64
    }

    /// Total cached output volume of the stage.
    pub fn total_cached(&self) -> Mem {
        self.cache_block_per_task * self.tasks as f64
    }
}

/// A complete application: workflow plus input data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// The stage sequence. Stages with `in_iteration = true` must form one
    /// contiguous group; the engine repeats that group.
    pub stages: Vec<StageSpec>,
    /// Number of iterations of the iteration body (1 for non-iterative
    /// applications).
    pub iterations: u32,
    /// Relative run-to-run noise on task durations and memory footprints.
    pub noise: f64,
    /// Constant memory held by application code objects in every container
    /// (`M_i`, the Code Overhead pool).
    pub code_overhead: Mem,
}

impl AppSpec {
    /// Creates an application with no iteration body.
    pub fn new(name: &str, stages: Vec<StageSpec>) -> Self {
        AppSpec {
            name: name.to_owned(),
            stages,
            iterations: 1,
            noise: 0.06,
            code_overhead: Mem::mb(110.0),
        }
    }

    /// Total cache demand of the application across the cluster.
    pub fn cache_demand(&self) -> Mem {
        self.stages.iter().map(StageSpec::total_cached).sum()
    }

    /// The expanded stage schedule: prologue stages once, the iteration body
    /// `iterations` times, epilogue stages once. Returns indexes into
    /// `stages`.
    pub fn schedule(&self) -> Vec<usize> {
        let body: Vec<usize> = self
            .stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.in_iteration)
            .map(|(i, _)| i)
            .collect();
        let first_body = body.first().copied();
        // Prologue = all non-iteration stages before the body; epilogue after.
        let prologue: Vec<usize> = self
            .stages
            .iter()
            .enumerate()
            .filter(|(i, s)| !s.in_iteration && first_body.is_none_or(|b| *i < b))
            .map(|(i, _)| i)
            .collect();
        let epilogue: Vec<usize> = self
            .stages
            .iter()
            .enumerate()
            .filter(|(i, s)| !s.in_iteration && first_body.is_some_and(|b| *i > b))
            .map(|(i, _)| i)
            .collect();
        let mut schedule = prologue;
        for _ in 0..self.iterations.max(1) {
            schedule.extend(&body);
        }
        schedule.extend(epilogue);
        schedule
    }

    /// Whether the application caches anything.
    pub fn uses_cache(&self) -> bool {
        !self.cache_demand().is_zero()
    }

    /// Whether any stage uses shuffle execution memory.
    pub fn uses_shuffle(&self) -> bool {
        self.stages
            .iter()
            .any(|s| s.uses_shuffle_memory || !s.shuffle_write_per_task.is_zero())
    }

    /// Whether any stage sorts/aggregates through the Task Shuffle pool
    /// (a stricter notion than [`AppSpec::uses_shuffle`]: map-side shuffle
    /// writes do not consume the pool).
    pub fn uses_shuffle_memory(&self) -> bool {
        self.stages.iter().any(|s| s.uses_shuffle_memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iterative_app() -> AppSpec {
        let mut load = StageSpec::new("load", 100, Mem::mb(128.0));
        load.cache_block_per_task = Mem::mb(200.0);
        let mut iter = StageSpec::new("iterate", 100, Mem::mb(200.0));
        iter.in_iteration = true;
        iter.input = InputSource::Cached {
            miss_penalty_ms_per_mb: 40.0,
        };
        let collect = StageSpec::new("collect", 10, Mem::mb(8.0));
        AppSpec {
            name: "iterative".into(),
            stages: vec![load, iter, collect],
            iterations: 3,
            noise: 0.05,
            code_overhead: Mem::mb(110.0),
        }
    }

    #[test]
    fn schedule_repeats_iteration_body() {
        let app = iterative_app();
        assert_eq!(app.schedule(), vec![0, 1, 1, 1, 2]);
    }

    #[test]
    fn schedule_without_iterations_is_identity() {
        let app = AppSpec::new(
            "flat",
            vec![
                StageSpec::new("a", 1, Mem::mb(1.0)),
                StageSpec::new("b", 1, Mem::mb(1.0)),
            ],
        );
        assert_eq!(app.schedule(), vec![0, 1]);
    }

    #[test]
    fn cache_demand_sums_caching_stages() {
        let app = iterative_app();
        assert_eq!(app.cache_demand(), Mem::mb(100.0 * 200.0));
        assert!(app.uses_cache());
    }

    #[test]
    fn totals() {
        let s = StageSpec::new("s", 10, Mem::mb(128.0));
        assert_eq!(s.total_input(), Mem::mb(1280.0));
        assert_eq!(s.total_cached(), Mem::ZERO);
    }

    #[test]
    fn shuffle_detection() {
        let mut s = StageSpec::new("map", 10, Mem::mb(128.0));
        s.shuffle_write_per_task = Mem::mb(64.0);
        let app = AppSpec::new("shuffly", vec![s]);
        assert!(app.uses_shuffle());
        assert!(!app.uses_cache());
    }
}
