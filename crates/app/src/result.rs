//! The outcome of one simulated application run.

use relm_common::Millis;
use relm_faults::{AbortCause, AbortClass};
use serde::{Deserialize, Serialize};

/// Metrics of one application run — the quantities plotted throughout §3 and
/// §6 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Wall-clock duration of the run (includes failure recovery time).
    pub runtime: Millis,
    /// Whether the application job was aborted because a task exceeded the
    /// retry limit.
    pub aborted: bool,
    /// What took the application down, when it aborted.
    pub abort_cause: Option<AbortCause>,
    /// Total container failures (OOM + physical-memory kills + injected).
    pub container_failures: u32,
    /// Faults injected by an attached fault plan (transient kills, node-loss
    /// casualties, stragglers, profile corruption) — infrastructure trouble
    /// the configuration is not responsible for.
    pub injected_faults: u32,
    /// Container failures caused by `OutOfMemoryError`.
    pub oom_failures: u32,
    /// Container failures caused by the resource manager's physical-memory
    /// cap.
    pub rss_kills: u32,
    /// Maximum heap utilization across containers (fraction of heap).
    pub max_heap_util: f64,
    /// Average CPU utilization across the cluster (fraction).
    pub avg_cpu_util: f64,
    /// Average disk utilization across the cluster (fraction).
    pub avg_disk_util: f64,
    /// Fraction of task time spent in GC pauses.
    pub gc_overhead: f64,
    /// Cache hit ratio (H): cached partitions read from cache over
    /// partitions requested.
    pub cache_hit_ratio: f64,
    /// Fraction of shuffle data spilled to disk (S).
    pub spill_fraction: f64,
    /// Total young collections across containers.
    pub young_gcs: u64,
    /// Total full collections across containers.
    pub full_gcs: u64,
}

impl RunResult {
    /// Runtime in minutes (the unit the paper reports).
    pub fn runtime_mins(&self) -> f64 {
        self.runtime.as_mins()
    }

    /// True when the run finished with no container failures the
    /// *configuration* caused — the paper's notion of a *safe* execution.
    /// Injected faults (and aborts whose cause is transient or
    /// infrastructural) do not count against the configuration.
    pub fn is_safe(&self) -> bool {
        let config_abort = self.aborted
            && self
                .abort_cause
                .is_none_or(|c| c.class() == AbortClass::Persistent);
        !config_abort && self.oom_failures == 0 && self.rss_kills == 0
    }
}
