//! The worker registry: who is alive, when they last spoke, and what
//! they are running.
//!
//! Liveness has two independent signals:
//!
//! * **Sequence gaps** — heartbeats are numbered by the worker, so a
//!   beat lost on the wire is visible as a gap even when the next beat
//!   arrives on time. Gap counting is deterministic: the same injected
//!   heartbeat-loss schedule produces the same `fleet.heartbeats_missed`
//!   tally on every run.
//! * **Silence** — the monitor declares a worker dead once nothing has
//!   arrived for `missed_threshold` heartbeat intervals. This side is
//!   wall-clock (real failure detection cannot be anything else); the
//!   serving layer's determinism does not depend on *when* a worker is
//!   declared dead, only on the at-most-once commit discipline.
//!
//! All methods take `now` explicitly so tests can drive the clock.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Liveness state of one registered worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Heartbeating within bounds.
    Alive,
    /// Declared dead by the monitor (or force-killed by a test). A dead
    /// worker's requests are refused until it re-registers.
    Dead,
}

/// One registered worker.
#[derive(Debug)]
struct WorkerEntry {
    state: WorkerState,
    /// Evaluations the worker runs concurrently (currently always 1).
    #[allow(dead_code)]
    capacity: u32,
    /// When the center last heard anything from this worker.
    last_seen: Instant,
    /// Highest heartbeat sequence number seen.
    last_seq: u64,
    /// Heartbeats missed, counted from sequence gaps.
    missed: u64,
    /// The task currently assigned to this worker, if any.
    assigned: Option<u64>,
}

/// The center's view of the fleet.
#[derive(Debug, Default)]
pub struct WorkerRegistry {
    workers: BTreeMap<String, WorkerEntry>,
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WorkerRegistry::default()
    }

    /// Registers (or re-registers) a worker. If the worker was already
    /// known and had a task assigned — a presumed-dead process coming
    /// back, or a restart reusing the id — that assignment is orphaned
    /// and returned so the caller can requeue it.
    pub fn register(&mut self, worker: &str, capacity: u32, now: Instant) -> Option<u64> {
        self.workers
            .insert(
                worker.to_string(),
                WorkerEntry {
                    state: WorkerState::Alive,
                    capacity,
                    last_seen: now,
                    last_seq: 0,
                    missed: 0,
                    assigned: None,
                },
            )
            .and_then(|old| old.assigned)
    }

    /// Records a heartbeat. Returns the number of beats lost on the wire
    /// since the last one (the sequence gap), or `None` if the worker is
    /// unknown or already declared dead — the caller must refuse it.
    pub fn heartbeat(&mut self, worker: &str, seq: u64, now: Instant) -> Option<u64> {
        let entry = self.workers.get_mut(worker)?;
        if entry.state == WorkerState::Dead {
            return None;
        }
        entry.last_seen = now;
        let gap = seq.saturating_sub(entry.last_seq + 1);
        entry.missed += gap;
        entry.last_seq = entry.last_seq.max(seq);
        Some(gap)
    }

    /// Marks any other request from the worker (`Ack`, `Complete`) as a
    /// sign of life. Returns false for unknown or dead workers.
    pub fn touch(&mut self, worker: &str, now: Instant) -> bool {
        match self.workers.get_mut(worker) {
            Some(entry) if entry.state == WorkerState::Alive => {
                entry.last_seen = now;
                true
            }
            _ => false,
        }
    }

    /// The worker's current liveness, if registered.
    pub fn state(&self, worker: &str) -> Option<WorkerState> {
        self.workers.get(worker).map(|e| e.state)
    }

    /// The task currently assigned to `worker`.
    pub fn assigned(&self, worker: &str) -> Option<u64> {
        self.workers.get(worker).and_then(|e| e.assigned)
    }

    /// Records that `task` was assigned to `worker`.
    pub fn set_assigned(&mut self, worker: &str, task: u64) {
        if let Some(entry) = self.workers.get_mut(worker) {
            entry.assigned = Some(task);
        }
    }

    /// Clears the worker's assignment (after a commit).
    pub fn clear_assigned(&mut self, worker: &str) {
        if let Some(entry) = self.workers.get_mut(worker) {
            entry.assigned = None;
        }
    }

    /// Declares every worker silent for longer than `timeout` dead and
    /// returns `(worker, orphaned task)` for each newly dead one.
    pub fn sweep(&mut self, now: Instant, timeout: Duration) -> Vec<(String, Option<u64>)> {
        let mut died = Vec::new();
        for (name, entry) in &mut self.workers {
            if entry.state == WorkerState::Alive && now.duration_since(entry.last_seen) > timeout {
                entry.state = WorkerState::Dead;
                died.push((name.clone(), entry.assigned.take()));
            }
        }
        died
    }

    /// Test/ops hook: declare `worker` dead immediately, returning its
    /// orphaned task.
    pub fn force_dead(&mut self, worker: &str) -> Option<u64> {
        let entry = self.workers.get_mut(worker)?;
        entry.state = WorkerState::Dead;
        entry.assigned.take()
    }

    /// Workers currently alive.
    pub fn alive(&self) -> usize {
        self.workers
            .values()
            .filter(|e| e.state == WorkerState::Alive)
            .count()
    }

    /// Total heartbeats missed (sequence gaps), across all workers ever
    /// registered.
    pub fn heartbeats_missed(&self) -> u64 {
        self.workers.values().map(|e| e.missed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn register_heartbeat_and_liveness() {
        let mut reg = WorkerRegistry::new();
        assert_eq!(reg.register("w-0", 1, now()), None);
        assert_eq!(reg.state("w-0"), Some(WorkerState::Alive));
        assert_eq!(reg.alive(), 1);
        assert_eq!(reg.heartbeat("w-0", 1, now()), Some(0));
        assert_eq!(reg.heartbeat("w-0", 2, now()), Some(0));
        assert_eq!(reg.heartbeats_missed(), 0);
    }

    #[test]
    fn sequence_gaps_count_missed_beats_deterministically() {
        let mut reg = WorkerRegistry::new();
        reg.register("w-0", 1, now());
        assert_eq!(reg.heartbeat("w-0", 1, now()), Some(0));
        // Beats 2 and 3 lost on the wire; 4 arrives.
        assert_eq!(reg.heartbeat("w-0", 4, now()), Some(2));
        assert_eq!(reg.heartbeats_missed(), 2);
        // A duplicate or reordered old beat never double-counts.
        assert_eq!(reg.heartbeat("w-0", 4, now()), Some(0));
        assert_eq!(reg.heartbeat("w-0", 3, now()), Some(0));
        assert_eq!(reg.heartbeats_missed(), 2);
    }

    #[test]
    fn silence_past_the_threshold_kills_and_orphans() {
        let mut reg = WorkerRegistry::new();
        let t0 = now();
        reg.register("w-0", 1, t0);
        reg.register("w-1", 1, t0);
        reg.set_assigned("w-0", 42);
        let timeout = Duration::from_millis(30);
        // w-1 keeps beating, w-0 goes silent.
        let t1 = t0 + Duration::from_millis(40);
        reg.heartbeat("w-1", 1, t1);
        let died = reg.sweep(t1, timeout);
        assert_eq!(died, vec![("w-0".to_string(), Some(42))]);
        assert_eq!(reg.state("w-0"), Some(WorkerState::Dead));
        assert_eq!(reg.alive(), 1);
        // A dead worker's beats are refused until it re-registers.
        assert_eq!(reg.heartbeat("w-0", 5, t1), None);
        assert!(!reg.touch("w-0", t1));
        // Sweeping again reports nothing new.
        assert!(reg.sweep(t1 + timeout, timeout).is_empty());
    }

    #[test]
    fn reregistration_revives_and_orphans_the_old_assignment() {
        let mut reg = WorkerRegistry::new();
        let t0 = now();
        reg.register("w-0", 1, t0);
        reg.set_assigned("w-0", 7);
        reg.force_dead("w-0");
        // force_dead already orphaned the task.
        assert_eq!(reg.register("w-0", 1, t0), None);
        assert_eq!(reg.state("w-0"), Some(WorkerState::Alive));
        // But a live worker re-registering with a task in hand orphans it.
        reg.set_assigned("w-0", 9);
        assert_eq!(reg.register("w-0", 1, t0), Some(9));
    }
}
