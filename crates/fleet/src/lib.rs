//! `relm-fleet`: fault-tolerant distributed serving for the RelM tuner.
//!
//! [`relm_serve`] multiplexes tuning sessions onto an in-process pool;
//! this crate stretches the same service across processes. A **center**
//! owns the sessions and their histories; stateless **workers** register
//! over the existing JSON-lines protocol, heartbeat on a fixed cadence,
//! and pull evaluations one at a time. A monitor declares silent workers
//! dead after a missed-heartbeat threshold and requeues their tasks; a
//! content-addressed dedup key (the evaluation cache's [`EvalKey`])
//! makes reassignment **at-most-once**: no cell is ever paid for twice,
//! and no session ever sees a duplicated or dropped evaluation.
//!
//! The standing invariant, inherited from the serving layer and enforced
//! by `tests/fleet_kill.rs`: per-session histories are **byte-identical
//! at any fleet size under any injected worker-failure schedule** — a
//! 3-worker fleet with a worker killed mid-evaluation produces exactly
//! the history of a 1-worker local run. The trick is that a worker ships
//! back the same [`relm_tune::CachedEval`] the cache-fill path would
//! have stored, and the center *replays* it through the session's
//! environment — so distribution, like caching before it, is invisible
//! to the deterministic state.
//!
//! Worker-level fault injection lives in [`relm_faults::WorkerFaultPlan`]
//! (kill mid-evaluation, heartbeat loss, result-link drop), seeded and
//! site-addressed like every other fault in the repro.
//!
//! [`EvalKey`]: relm_tune::EvalKey

pub mod center;
pub mod monitor;
pub mod registry;
pub mod tasks;
pub mod worker;

pub use center::Center;
pub use monitor::MonitorConfig;
pub use registry::{WorkerRegistry, WorkerState};
pub use tasks::{TaskState, TaskTable};
pub use worker::{evaluate_task, run_worker, WorkerConfig, WorkerExit, WorkerReport};
