//! Liveness policy: how often workers beat and how much silence means
//! death.

use std::time::Duration;

/// Heartbeat cadence and death threshold, fixed by the center and
/// announced to every worker at registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Interval between worker heartbeats, in milliseconds.
    pub heartbeat_ms: u64,
    /// Consecutive missed intervals after which a silent worker is
    /// declared dead and its task reassigned.
    pub missed_threshold: u32,
}

impl MonitorConfig {
    /// Silence longer than this declares a worker dead.
    ///
    /// Must dominate the longest legitimate silent window a worker can
    /// hit: one result-frame round-trip over a blocking connection (a
    /// worker cannot beat while its `Complete` is in flight). The
    /// default (2s) leaves ample room; tests that shrink it to tens of
    /// milliseconds must use an in-process transport.
    pub fn death_timeout(&self) -> Duration {
        Duration::from_millis(self.heartbeat_ms * u64::from(self.missed_threshold))
    }

    /// How long the monitor sleeps between sweeps.
    pub fn sweep_interval(&self) -> Duration {
        Duration::from_millis(self.heartbeat_ms.max(1))
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            heartbeat_ms: 500,
            missed_threshold: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn death_timeout_is_threshold_intervals() {
        let cfg = MonitorConfig {
            heartbeat_ms: 100,
            missed_threshold: 3,
        };
        assert_eq!(cfg.death_timeout(), Duration::from_millis(300));
        assert_eq!(cfg.sweep_interval(), Duration::from_millis(100));
    }
}
