//! The fleet worker: a stateless evaluation executor.
//!
//! A worker registers with the center, heartbeats on the announced
//! cadence, and polls for work with every beat. An assignment carries a
//! complete [`FleetTask`] — everything the evaluation's outcome is a
//! pure function of — so the worker rebuilds a throwaway
//! [`TuningEnv`] and runs exactly the live evaluation the center would
//! have run in-process. The result ships back as the same [`relm_tune::CachedEval`]
//! the cache-fill path would have stored, which is what lets the center
//! commit it through the shared evaluation cache's replay path,
//! byte-identical to a local run.
//!
//! The transport is a plain closure over the JSON-lines protocol, so the
//! same loop runs over TCP ([`relm_serve::TcpClient`]) or in-process
//! (`|req| Ok(service.handle(req))`) — tests and the load harness use
//! the latter, the `fleet_worker` binary the former.
//!
//! Injected faults ([`WorkerFaultPlan`]) hit three sites:
//!
//! * **Kill** — the worker dies silently right after acking a task (the
//!   mid-evaluation crash). It never speaks again; the monitor notices
//!   the silence and the task is reassigned.
//! * **Heartbeat loss** — a beat is dropped on the wire. The sequence
//!   number still advances, so the center counts the gap.
//! * **Link drop** — a completed result is lost in transit. The worker
//!   retries delivery a bounded number of times (new fault coordinates
//!   each try), then gives up and exits — from the center's point of
//!   view, a death after silence, handled by reassignment. The cell's
//!   cost is not wasted if the retry lands late: a deposed delivery
//!   still warms the center's cache.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use relm_app::Engine;
use relm_common::Millis;
use relm_faults::WorkerFaultPlan;
use relm_obs::Obs;
use relm_serve::{EvalOutcome, FleetTask, Request, Response};
use relm_tune::{EvalStore, TuningEnv};

/// Worker identity and fault plan.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Registry name, unique per fleet (e.g. `"w-0"`).
    pub id: String,
    /// Seeded fault-injection plan; `None` runs clean.
    pub faults: Option<WorkerFaultPlan>,
    /// Heartbeat-interval override. `None` follows the cadence the
    /// center announces at registration; tests override to speed up.
    pub heartbeat_ms: Option<u64>,
}

impl WorkerConfig {
    /// A clean worker named `id`.
    pub fn named(id: impl Into<String>) -> Self {
        WorkerConfig {
            id: id.into(),
            faults: None,
            heartbeat_ms: None,
        }
    }

    /// Attaches a seeded fault plan.
    pub fn with_faults(mut self, faults: WorkerFaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Overrides the heartbeat cadence (tests).
    pub fn with_heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = Some(ms);
        self
    }
}

/// Why the worker loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The stop flag was raised (orderly shutdown).
    Stopped,
    /// An injected kill fired mid-evaluation: silent death.
    Killed,
    /// Delivery retries exhausted after injected link drops.
    LinkDead,
    /// The center refused us (declared dead, or draining away).
    Refused,
    /// The transport failed (center gone).
    Disconnected,
}

/// What one worker did with its life.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker id, echoed for multi-worker harnesses.
    pub id: String,
    /// Evaluations executed to completion (delivered or not).
    pub evaluations: usize,
    /// Heartbeats actually sent.
    pub heartbeats: u64,
    /// Heartbeats suppressed by injected loss.
    pub heartbeats_lost: u64,
    /// Result deliveries suppressed by injected link drops.
    pub link_drops: u64,
    /// Completions answered [`Response::Reassigned`] (we were deposed).
    pub deposed: u64,
    /// Why the loop ended.
    pub exit: WorkerExit,
}

/// Delivery attempts before a link-dropped result is abandoned and the
/// worker exits. Bounded so a fully severed link (drop rate 1.0)
/// converges to a silent death instead of spinning forever.
const DELIVERY_ATTEMPTS: u32 = 4;

/// Runs one worker against a transport until stopped, refused, killed by
/// an injected fault, or disconnected. `transport` sends one request and
/// blocks for its response — `|req| client.request(req)` over TCP,
/// `|req| Ok(service.handle(req))` in-process.
pub fn run_worker<F>(mut transport: F, config: &WorkerConfig, stop: &AtomicBool) -> WorkerReport
where
    F: FnMut(&Request) -> io::Result<Response>,
{
    let mut report = WorkerReport {
        id: config.id.clone(),
        evaluations: 0,
        heartbeats: 0,
        heartbeats_lost: 0,
        link_drops: 0,
        deposed: 0,
        exit: WorkerExit::Stopped,
    };
    let worker = config.id.clone();

    // Register; the center announces the heartbeat cadence.
    let announced = match transport(&Request::Register {
        worker: worker.clone(),
        capacity: 1,
    }) {
        Ok(Response::Registered { heartbeat_ms, .. }) => heartbeat_ms,
        Ok(_) => {
            report.exit = WorkerExit::Refused;
            return report;
        }
        Err(_) => {
            report.exit = WorkerExit::Disconnected;
            return report;
        }
    };
    let beat = Duration::from_millis(config.heartbeat_ms.unwrap_or(announced).max(1));

    let mut seq = 0u64;
    loop {
        if stop.load(Ordering::Relaxed) {
            report.exit = WorkerExit::Stopped;
            return report;
        }
        std::thread::sleep(beat);
        seq += 1;
        if let Some(plan) = &config.faults {
            if plan.heartbeat_loss(&worker, seq) {
                // The beat is lost on the wire: the sequence number still
                // advances, so the center sees the gap.
                report.heartbeats_lost += 1;
                continue;
            }
        }
        report.heartbeats += 1;
        let reply = match transport(&Request::Heartbeat {
            worker: worker.clone(),
            seq,
        }) {
            Ok(reply) => reply,
            Err(_) => {
                report.exit = WorkerExit::Disconnected;
                return report;
            }
        };
        let mut next = match reply {
            Response::Assign { task } => Some(task),
            Response::HeartbeatAck { .. } => None,
            Response::Error { .. } => {
                // Unknown or declared dead: a real deployment would
                // re-register; we exit and let the harness decide.
                report.exit = WorkerExit::Refused;
                return report;
            }
            _ => None,
        };
        // Work loop: the reply to each Complete may carry the next
        // assignment (pipelined), so drain until the center says idle.
        while let Some(task) = next.take() {
            match run_task(&mut transport, config, *task, &mut report, beat, &mut seq) {
                TaskEnd::Next(assign) => next = assign,
                TaskEnd::Idle => {}
                TaskEnd::Exit(exit) => {
                    report.exit = exit;
                    return report;
                }
            }
        }
    }
}

/// How one task ended, from the work loop's point of view.
enum TaskEnd {
    /// Delivered; the center pipelined another assignment. Boxed: the
    /// lease snapshot dwarfs the other variants.
    Next(Option<Box<FleetTask>>),
    /// Delivered (or dropped as stale); back to heartbeating.
    Idle,
    /// The worker is done for (kill, dead link, refusal, disconnect).
    Exit(WorkerExit),
}

fn run_task<F>(
    transport: &mut F,
    config: &WorkerConfig,
    task: FleetTask,
    report: &mut WorkerReport,
    beat: Duration,
    seq: &mut u64,
) -> TaskEnd
where
    F: FnMut(&Request) -> io::Result<Response>,
{
    let worker = &config.id;
    // Confirm receipt before spending anything.
    match transport(&Request::Ack {
        worker: worker.clone(),
        task: task.id,
    }) {
        Ok(Response::Reassigned { .. }) => return TaskEnd::Idle, // stale assign
        Ok(Response::Error { .. }) => return TaskEnd::Exit(WorkerExit::Refused),
        Ok(_) => {}
        Err(_) => return TaskEnd::Exit(WorkerExit::Disconnected),
    }
    // Injected mid-evaluation crash: die silently, never speak again.
    if let Some(plan) = &config.faults {
        if plan.worker_kill(worker, task.id, task.attempt) {
            return TaskEnd::Exit(WorkerExit::Killed);
        }
    }
    // Evaluate on a helper thread while this loop keeps heartbeating —
    // a busy worker must not look dead just because the evaluation
    // outlasts the death timeout.
    let outcome = std::thread::scope(|scope| {
        let eval = scope.spawn(|| evaluate_task(&task));
        while !eval.is_finished() {
            std::thread::sleep(beat);
            *seq += 1;
            if let Some(plan) = &config.faults {
                if plan.heartbeat_loss(worker, *seq) {
                    report.heartbeats_lost += 1;
                    continue;
                }
            }
            report.heartbeats += 1;
            // The center answers a busy worker's beat with a plain ack
            // (it never double-assigns); an Error here means we were
            // declared dead anyway — finish and deliver regardless, the
            // late result still warms the center's cache.
            let _ = transport(&Request::Heartbeat {
                worker: worker.clone(),
                seq: *seq,
            });
        }
        eval.join().expect("evaluation thread panicked")
    });
    report.evaluations += 1;
    // Deliver, retrying through injected link drops. Each attempt uses
    // fresh fault coordinates, so a lossy (but not severed) link
    // eventually lets one through. While the Complete frame is in flight
    // the worker is necessarily silent — the transport is one blocking
    // connection — so the monitor's death timeout must dominate a frame
    // round-trip (the production default of 2s comfortably does).
    for attempt in 0..DELIVERY_ATTEMPTS {
        if let Some(plan) = &config.faults {
            if plan.link_drop(worker, task.id, attempt) {
                report.link_drops += 1;
                // The frame is lost; from here the worker is silent
                // until the next try (no heartbeat — a wedged link and a
                // wedged worker look the same from the center).
                std::thread::sleep(beat);
                continue;
            }
        }
        return match transport(&Request::Complete {
            worker: worker.clone(),
            task: task.id,
            outcome: outcome.clone(),
        }) {
            Ok(Response::Assign { task }) => TaskEnd::Next(Some(task)),
            Ok(Response::HeartbeatAck { .. }) => TaskEnd::Idle,
            Ok(Response::Reassigned { .. }) => {
                report.deposed += 1;
                TaskEnd::Idle
            }
            Ok(Response::Error { .. }) => TaskEnd::Exit(WorkerExit::Refused),
            Ok(_) => TaskEnd::Idle,
            Err(_) => TaskEnd::Exit(WorkerExit::Disconnected),
        };
    }
    TaskEnd::Exit(WorkerExit::LinkDead)
}

/// Executes one task exactly as the center's in-process pool would:
/// rebuild the engine and a throwaway environment from the task's
/// snapshot, evaluate through a private cache so the cache-fill path
/// produces the canonical [`relm_tune::CachedEval`], and ship that.
/// Public so fault-injection tests can play a worker by hand.
pub fn evaluate_task(task: &FleetTask) -> EvalOutcome {
    let started = Instant::now();
    let mut engine = Engine::new(task.cluster.clone())
        .with_cost_model(task.cost)
        .with_obs(Obs::disabled());
    if let Some(plan) = &task.faults {
        engine = engine.with_faults(plan.clone());
    }
    let store = EvalStore::new();
    let mut env = TuningEnv::restore(
        engine,
        task.app.clone(),
        task.seed,
        0.0,
        Millis::ZERO,
        Vec::new(),
    )
    .with_retry_policy(task.retry)
    .with_cache(store.clone());
    let key = env.eval_key(&task.config);
    let _ = env.evaluate(&task.config);
    let eval = store
        .get(&key)
        .expect("cache-fill path stores the evaluation it just ran");
    EvalOutcome {
        eval: (*eval).clone(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}
