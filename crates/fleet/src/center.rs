//! The fleet center: the process that owns the sessions and farms their
//! evaluations out to remote workers.
//!
//! The center wraps an [`relm_serve::Service`] running in
//! [`relm_serve::Execution::External`] mode and attaches itself as the service's
//! [`FleetRouter`]. Everything session-shaped (registry, FIFO queues,
//! histories, checkpoints) stays in the service; the center adds only
//! the fleet machinery: the worker [registry](crate::WorkerRegistry),
//! the [task table](crate::TaskTable), a monitor thread that declares
//! silent workers dead, and the at-most-once commit discipline.
//!
//! **At-most-once, spelled out.** A leased evaluation commits into its
//! session exactly once, through one of three mutually exclusive doors:
//!
//! 1. *Worker commit* — the task's **current** assignee delivers
//!    `Complete`; the center takes the lease out of the table (removing
//!    it is what makes a second commit impossible) and replays the
//!    outcome through the shared evaluation cache.
//! 2. *Cache commit* — before assigning, the center probes the shared
//!    cache with the lease's content-addressed key; if the outcome
//!    already landed (a deposed worker's late delivery, or another
//!    session paying for the same cell), the task commits locally with
//!    no worker at all (`fleet.cache_commits`).
//! 3. *Local commit* — during drain, tasks no live worker will take are
//!    run dry in-process (`fleet.local_commits`).
//!
//! A deposed worker's `Complete` hits none of the doors: it only warms
//! the cache (`fleet.late_results`) so the reassigned attempt replays it
//! for free.
//!
//! Lock ordering: center state lock → service locks, never the reverse.
//! The service upholds its side by never calling the router while
//! holding its state lock.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use relm_serve::{EvalLease, FleetRouter, FleetTask, Request, Response, Service};

use crate::monitor::MonitorConfig;
use crate::registry::WorkerRegistry;
use crate::tasks::TaskTable;

/// Registry + task table behind one lock: every fleet-protocol request
/// mutates both together (a heartbeat both proves liveness and may hand
/// out a task), so splitting them would only invite ordering bugs.
#[derive(Default)]
struct CenterState {
    registry: WorkerRegistry,
    tasks: TaskTable,
}

/// What the assignment loop decided under the center lock; the commit
/// (if any) runs after the lock is released.
enum Dispatch {
    /// Task's outcome was already cached — commit locally, look again.
    Commit(EvalLease),
    /// Fresh work for the polling worker.
    Assign(FleetTask),
    /// Nothing queued and no lease ready.
    Idle,
}

/// The fleet center. Create with [`Center::start`]; hand workers the
/// service's address (TCP) or the service handle (in-process threads).
pub struct Center {
    service: Arc<Service>,
    monitor: MonitorConfig,
    state: Mutex<CenterState>,
    /// Lifetime task reassignments, mirrored into `fleet.reassignments`.
    reassigned: AtomicUsize,
    stop: AtomicBool,
    monitor_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Center {
    /// Builds the center around an [`Execution::External`] service,
    /// attaches it as the service's router, and spawns the monitor
    /// thread. The monitor holds only a [`Weak`] reference, so dropping
    /// every external `Arc<Center>` lets it exit on its next sweep.
    ///
    /// [`Execution::External`]: relm_serve::Execution::External
    pub fn start(service: Arc<Service>, monitor: MonitorConfig) -> Arc<Center> {
        let center = Arc::new(Center {
            service,
            monitor,
            state: Mutex::new(CenterState::default()),
            reassigned: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            monitor_thread: Mutex::new(None),
        });
        let as_router: Arc<dyn FleetRouter> = Arc::clone(&center) as Arc<dyn FleetRouter>;
        center.service.set_router(Arc::downgrade(&as_router));
        let weak: Weak<Center> = Arc::downgrade(&center);
        let interval = monitor.sweep_interval();
        let handle = std::thread::Builder::new()
            .name("fleet-monitor".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(center) = weak.upgrade() else { break };
                if center.stop.load(Ordering::Relaxed) {
                    break;
                }
                center.sweep_now();
            })
            .expect("spawn fleet monitor");
        *center.monitor_thread.lock().expect("monitor slot poisoned") = Some(handle);
        center
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// The liveness policy workers are told at registration.
    pub fn monitor_config(&self) -> MonitorConfig {
        self.monitor
    }

    /// Stops the monitor thread (idempotent). Dropping the last `Arc`
    /// also stops it, one sweep interval later.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self
            .monitor_thread
            .lock()
            .expect("monitor slot poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }

    /// Sweeps the registry once: workers silent past the death timeout
    /// are declared dead and their tasks requeued. Called by the monitor
    /// thread and by drain-assist; safe to call from tests.
    pub fn sweep_now(&self) {
        let obs = self.service.obs().clone();
        let mut st = self.state.lock().expect("center state poisoned");
        let died = st
            .registry
            .sweep(Instant::now(), self.monitor.death_timeout());
        for (worker, orphan) in died {
            obs.inc("fleet.workers_died");
            if let Some(task) = orphan {
                self.requeue_locked(&mut st, task, &worker);
            }
        }
        obs.gauge("fleet.workers_alive", st.registry.alive() as f64);
    }

    /// Test/ops hook: declare `worker` dead immediately and requeue its
    /// task — the deterministic stand-in for "the monitor noticed".
    pub fn force_dead(&self, worker: &str) {
        let obs = self.service.obs().clone();
        let mut st = self.state.lock().expect("center state poisoned");
        let orphan = st.registry.force_dead(worker);
        if st.registry.state(worker).is_some() {
            obs.inc("fleet.workers_died");
        }
        if let Some(task) = orphan {
            self.requeue_locked(&mut st, task, worker);
        }
        obs.gauge("fleet.workers_alive", st.registry.alive() as f64);
    }

    /// Requeues a dead worker's task (attempt + 1) and counts the
    /// reassignment. Caller holds the center lock.
    fn requeue_locked(&self, st: &mut CenterState, task: u64, worker: &str) {
        if st.tasks.requeue(task).is_some() {
            self.reassigned.fetch_add(1, Ordering::Relaxed);
            let obs = self.service.obs();
            obs.inc("fleet.reassignments");
            let _ = worker; // identity carried by the counters' trace context
        }
    }

    /// Lifetime reassignments (also the `fleet.reassignments` counter).
    pub fn reassignment_count(&self) -> usize {
        self.reassigned.load(Ordering::Relaxed)
    }

    /// Tasks currently queued or on workers.
    pub fn outstanding(&self) -> usize {
        self.state
            .lock()
            .expect("center state poisoned")
            .tasks
            .outstanding()
    }

    fn register(&self, worker: &str, capacity: u32) -> Response {
        let obs = self.service.obs().clone();
        {
            let mut st = self.state.lock().expect("center state poisoned");
            let orphan = st.registry.register(worker, capacity, Instant::now());
            if let Some(task) = orphan {
                // A presumed-dead worker re-registering (or an id reused
                // by a restart): its old assignment is orphaned.
                self.requeue_locked(&mut st, task, worker);
            }
            obs.gauge("fleet.workers_alive", st.registry.alive() as f64);
        }
        obs.inc("fleet.workers_registered");
        Response::Registered {
            worker: worker.to_string(),
            heartbeat_ms: self.monitor.heartbeat_ms,
            missed_threshold: self.monitor.missed_threshold,
        }
    }

    fn heartbeat(&self, worker: &str, seq: u64) -> Response {
        let obs = self.service.obs().clone();
        {
            let mut st = self.state.lock().expect("center state poisoned");
            match st.registry.heartbeat(worker, seq, Instant::now()) {
                None => {
                    return Response::Error {
                        message: format!(
                            "worker `{worker}` is not registered or was declared dead"
                        ),
                    }
                }
                Some(gap) if gap > 0 => obs.add("fleet.heartbeats_missed", gap as f64),
                Some(_) => {}
            }
            obs.inc("fleet.heartbeats");
            // A worker mid-evaluation polls too; don't double-assign.
            if st.registry.assigned(worker).is_some() {
                return Response::HeartbeatAck {
                    pending: st.tasks.queued_len(),
                };
            }
        }
        self.next_assignment(worker)
    }

    fn ack(&self, worker: &str, task: u64) -> Response {
        let mut st = self.state.lock().expect("center state poisoned");
        if !st.registry.touch(worker, Instant::now()) {
            return Response::Error {
                message: format!("worker `{worker}` is not registered or was declared dead"),
            };
        }
        if st.tasks.ack(task, worker) {
            Response::HeartbeatAck {
                pending: st.tasks.queued_len(),
            }
        } else {
            // The task was reassigned between Assign and Ack (or already
            // committed); tell the worker to drop it.
            Response::Reassigned { task }
        }
    }

    fn complete(&self, worker: &str, task: u64, outcome: relm_serve::EvalOutcome) -> Response {
        let obs = self.service.obs().clone();
        let lease = {
            let mut st = self.state.lock().expect("center state poisoned");
            st.registry.touch(worker, Instant::now());
            if st.tasks.current_assignee(task) == Some(worker) {
                st.registry.clear_assigned(worker);
                st.tasks.take_for_commit(task)
            } else {
                // Deposed (declared dead, task reassigned) or unknown
                // task: the result must NOT commit — at-most-once — but
                // it is still a perfectly good outcome for its cell, so
                // warm the cache and let the reassigned attempt (or any
                // other session on the same cell) replay it for free.
                let key = st.tasks.key_of(task);
                drop(st);
                if let Some(key) = key {
                    self.service.warm_cache(key, outcome.eval);
                }
                obs.inc("fleet.late_results");
                return Response::Reassigned { task };
            }
        };
        let lease = lease.expect("current assignee's task holds its lease");
        obs.record("fleet.eval_wall_ms", outcome.wall_ms);
        obs.inc("fleet.tasks_completed");
        self.service.commit_lease(lease, Some(outcome.eval));
        // Pipeline: the reply to Complete carries the next assignment,
        // saving a heartbeat round-trip per evaluation.
        self.next_assignment(worker)
    }

    /// Finds the polling worker its next task. Loops because a queued
    /// task whose outcome is already cached commits locally and never
    /// reaches a worker.
    fn next_assignment(&self, worker: &str) -> Response {
        let obs = self.service.obs().clone();
        loop {
            let dispatch = {
                let mut st = self.state.lock().expect("center state poisoned");
                // Top up the table from the service's ready queue.
                while let Some(lease) = self.service.lease_next() {
                    st.tasks.admit(lease);
                }
                match st.tasks.pop_queued() {
                    None => Dispatch::Idle,
                    Some(id) => {
                        let cached = st
                            .tasks
                            .lease_ref(id)
                            .is_some_and(|lease| self.service.outcome_cached(lease));
                        if cached {
                            let lease = st
                                .tasks
                                .take_for_commit(id)
                                .expect("queued task holds its lease");
                            Dispatch::Commit(lease)
                        } else {
                            let wire = st.tasks.assign(id, worker);
                            st.registry.set_assigned(worker, id);
                            Dispatch::Assign(wire)
                        }
                    }
                }
            };
            match dispatch {
                Dispatch::Commit(lease) => {
                    // Commit outside the center lock: replay may ready
                    // the session's next evaluation, which the top-up
                    // above picks up on the next spin.
                    self.service.commit_lease(lease, None);
                    obs.inc("fleet.cache_commits");
                }
                Dispatch::Assign(task) => {
                    obs.inc("fleet.tasks_assigned");
                    return Response::Assign {
                        task: Box::new(task),
                    };
                }
                Dispatch::Idle => {
                    let st = self.state.lock().expect("center state poisoned");
                    return Response::HeartbeatAck {
                        pending: st.tasks.queued_len(),
                    };
                }
            }
        }
    }
}

impl FleetRouter for Center {
    fn route(&self, request: &Request) -> Response {
        match request {
            Request::Register { worker, capacity } => self.register(worker, *capacity),
            Request::Heartbeat { worker, seq } => self.heartbeat(worker, *seq),
            Request::Ack { worker, task } => self.ack(worker, *task),
            Request::Complete {
                worker,
                task,
                outcome,
            } => self.complete(worker, *task, outcome.clone()),
            other => Response::Error {
                message: format!("not a fleet request: {}", other.endpoint()),
            },
        }
    }

    /// Drain support: runs every task no live worker will take — queued,
    /// or orphaned by deaths mid-drain — dry in this process, and returns
    /// only when no fleet task is outstanding and the service is
    /// quiescent. Tasks on live workers are waited for, not stolen; a
    /// task in reassignment limbo is committed exactly once like any
    /// other. A draining fleet never drops a leased evaluation.
    fn drain_assist(&self) {
        let obs = self.service.obs().clone();
        loop {
            // Claim everything queued (topping up from the service) under
            // one lock grab; commit after releasing it.
            let leases = {
                let mut st = self.state.lock().expect("center state poisoned");
                while let Some(lease) = self.service.lease_next() {
                    st.tasks.admit(lease);
                }
                let mut leases = Vec::new();
                while let Some(id) = st.tasks.pop_queued() {
                    leases.push(
                        st.tasks
                            .take_for_commit(id)
                            .expect("queued task holds its lease"),
                    );
                }
                leases
            };
            let worked = !leases.is_empty();
            for lease in leases {
                // Cache hit replays (reassignment limbo resolved for
                // free); miss runs the evaluation live, right here.
                self.service.commit_lease(lease, None);
                obs.inc("fleet.local_commits");
            }
            if worked {
                continue; // commits may have readied more evaluations
            }
            if self.outstanding() == 0 && self.service.quiesced() {
                return;
            }
            // Tasks are on workers (or a commit is in flight): declare
            // silent workers dead so their tasks requeue, then wait a
            // beat.
            self.sweep_now();
            std::thread::sleep(self.monitor.sweep_interval() / 2);
        }
    }

    fn reassignments(&self) -> usize {
        self.reassignment_count()
    }
}

impl Drop for Center {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}
