//! The fleet center process: an [`relm_serve`] TCP frontend in external
//! execution mode with a [`relm_fleet::Center`] attached.
//!
//! ```text
//! fleet_center [--bind ADDR] [--heartbeat-ms N] [--missed-threshold N]
//!              [--checkpoint-dir PATH]
//! ```
//!
//! Binds the JSON-lines protocol on `--bind` (default `127.0.0.1:7463`,
//! port 0 for ephemeral; the resolved address is printed first). Clients
//! create sessions and step them exactly as against a local server;
//! workers ([`fleet_worker`](../fleet_worker/index.html)) connect to the
//! same port. Type `drain` (or close stdin) for a graceful shutdown:
//! admission stops, reassignment limbo runs dry, every session is
//! checkpointed, and the drain tally is printed.

use std::io::BufRead;
use std::sync::Arc;

use relm_fleet::{Center, MonitorConfig};
use relm_obs::Obs;
use relm_serve::{Execution, Request, Response, ServeConfig, Service, TcpServer};

struct Args {
    bind: String,
    monitor: MonitorConfig,
    checkpoint_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        bind: "127.0.0.1:7463".into(),
        monitor: MonitorConfig::default(),
        checkpoint_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--bind" => args.bind = value(),
            "--heartbeat-ms" => {
                args.monitor.heartbeat_ms = value().parse().expect("--heartbeat-ms")
            }
            "--missed-threshold" => {
                args.monitor.missed_threshold = value().parse().expect("--missed-threshold")
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value().into()),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let obs = Obs::enabled();
    let service = Arc::new(Service::start(
        ServeConfig {
            execution: Execution::External,
            checkpoint_dir: args.checkpoint_dir.clone(),
            ..ServeConfig::default()
        },
        obs.clone(),
    ));
    let center = Center::start(Arc::clone(&service), args.monitor);
    let server = TcpServer::start(Arc::clone(&service), args.bind.as_str()).expect("bind center");
    println!("fleet_center listening on {}", server.addr());
    println!(
        "liveness: heartbeat every {}ms, dead after {} missed",
        args.monitor.heartbeat_ms, args.monitor.missed_threshold
    );
    println!("type `drain` (or close stdin) for graceful shutdown");

    // Block on stdin; `drain` or EOF triggers the graceful path.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(cmd) if cmd.trim() == "drain" => break,
            Ok(cmd) if cmd.trim().is_empty() => continue,
            Ok(cmd) => println!("unknown command `{}` (try `drain`)", cmd.trim()),
            Err(_) => break,
        }
    }

    match service.handle(&Request::Drain) {
        Response::Drained {
            sessions,
            evaluations,
            checkpointed,
            reassignments,
            ..
        } => {
            println!(
                "drained: {sessions} sessions, {evaluations} evaluations, \
                 {checkpointed} checkpointed, {reassignments} reassignments"
            );
            println!(
                "fleet counters: assigned={} completed={} cache_commits={} \
                 local_commits={} late_results={} heartbeats_missed={}",
                obs.counter_value("fleet.tasks_assigned"),
                obs.counter_value("fleet.tasks_completed"),
                obs.counter_value("fleet.cache_commits"),
                obs.counter_value("fleet.local_commits"),
                obs.counter_value("fleet.late_results"),
                obs.counter_value("fleet.heartbeats_missed"),
            );
        }
        other => eprintln!("drain failed: {other:?}"),
    }
    center.stop();
    drop(server);
}
