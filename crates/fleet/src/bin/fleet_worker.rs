//! The fleet worker process: connects to a
//! [`fleet_center`](../fleet_center/index.html), registers, and
//! evaluates leased tasks until the center refuses it or the connection
//! drops.
//!
//! ```text
//! fleet_worker --connect ADDR [--id NAME] [--heartbeat-ms N]
//!              [--fault-seed N] [--kill-rate R] [--heartbeat-loss-rate R]
//!              [--link-drop-rate R]
//! ```
//!
//! The fault flags arm a seeded [`relm_faults::WorkerFaultPlan`] — the
//! same site-addressed injection used by the fleet tests, so a worker
//! can be made to crash mid-evaluation (`--kill-rate 1.0`), drop beats,
//! or lose result frames, deterministically per (seed, site, coords).

use std::sync::atomic::AtomicBool;

use relm_faults::{WorkerFaultConfig, WorkerFaultPlan};
use relm_fleet::{run_worker, WorkerConfig};
use relm_serve::TcpClient;

struct Args {
    connect: String,
    id: String,
    heartbeat_ms: Option<u64>,
    fault_seed: u64,
    fault_config: WorkerFaultConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: String::new(),
        id: format!("worker-{}", std::process::id()),
        heartbeat_ms: None,
        fault_seed: 0,
        fault_config: WorkerFaultConfig::off(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--connect" => args.connect = value(),
            "--id" => args.id = value(),
            "--heartbeat-ms" => args.heartbeat_ms = Some(value().parse().expect("--heartbeat-ms")),
            "--fault-seed" => args.fault_seed = value().parse().expect("--fault-seed"),
            "--kill-rate" => args.fault_config.kill_rate = value().parse().expect("--kill-rate"),
            "--heartbeat-loss-rate" => {
                args.fault_config.heartbeat_loss_rate =
                    value().parse().expect("--heartbeat-loss-rate")
            }
            "--link-drop-rate" => {
                args.fault_config.link_drop_rate = value().parse().expect("--link-drop-rate")
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!args.connect.is_empty(), "--connect ADDR is required");
    args
}

fn main() {
    let args = parse_args();
    let mut config = WorkerConfig::named(&args.id);
    if let Some(ms) = args.heartbeat_ms {
        config = config.with_heartbeat_ms(ms);
    }
    if !args.fault_config.is_off() {
        config = config.with_faults(WorkerFaultPlan::new(args.fault_seed, args.fault_config));
        eprintln!(
            "{}: armed fault plan seed={} {:?}",
            args.id, args.fault_seed, args.fault_config
        );
    }
    let mut client = TcpClient::connect(args.connect.as_str()).expect("connect to center");
    println!("{}: connected to {}", args.id, args.connect);
    let stop = AtomicBool::new(false);
    let report = run_worker(|req| client.request(req), &config, &stop);
    println!(
        "{}: exit={:?} evaluations={} heartbeats={} (lost {}) link_drops={} deposed={}",
        report.id,
        report.exit,
        report.evaluations,
        report.heartbeats,
        report.heartbeats_lost,
        report.link_drops,
        report.deposed,
    );
}
