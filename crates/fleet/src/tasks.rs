//! The center's task table: every evaluation leased from the serving
//! layer, keyed by a fleet-assigned task id, with the state machine that
//! makes reassignment at-most-once.
//!
//! A task moves `Queued → Assigned(worker) → Acked(worker) → committed`
//! (committed tasks leave the table). When a worker dies the task goes
//! back to `Queued` with `attempt + 1`; only the *current* assignee's
//! `Complete` can commit it, so a deposed worker's late result is
//! harmless — the center warms the evaluation cache with it and tells
//! the worker to move on.

use std::collections::BTreeMap;

use relm_serve::{EvalLease, FleetTask, Priority};
use relm_tune::EvalKey;

/// Where a task sits in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for a worker (fresh, or requeued after a death).
    Queued,
    /// Sent to a worker; not yet acknowledged.
    Assigned(String),
    /// Worker confirmed receipt and is evaluating.
    Acked(String),
}

/// One leased evaluation in flight through the fleet.
#[derive(Debug)]
struct TaskEntry {
    /// The serving-layer lease this task will commit. Present until the
    /// task is taken for commit.
    lease: Option<EvalLease>,
    /// Content-addressed dedup key — identical to the evalcache key the
    /// session env will look up on replay.
    key: EvalKey,
    session: String,
    /// The owning session's scheduling class, snapshotted from the lease
    /// so priorities survive external execution: assignment order prefers
    /// higher classes exactly as the in-process pool runs them first.
    priority: Priority,
    /// 0 on first assignment; +1 per reassignment.
    attempt: u32,
    state: TaskState,
}

/// The table of in-flight fleet tasks.
#[derive(Debug, Default)]
pub struct TaskTable {
    tasks: BTreeMap<u64, TaskEntry>,
    next_id: u64,
}

impl TaskTable {
    /// An empty table.
    pub fn new() -> Self {
        TaskTable::default()
    }

    /// Admits a lease from the serving layer as a new queued task and
    /// returns its id.
    pub fn admit(&mut self, lease: EvalLease) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.tasks.insert(
            id,
            TaskEntry {
                key: lease.key,
                session: lease.session.clone(),
                priority: lease.priority,
                lease: Some(lease),
                attempt: 0,
                state: TaskState::Queued,
            },
        );
        id
    }

    /// The next queued task: highest priority class first, then lowest
    /// id (admission order) within a class — so priorities assigned by
    /// the serving layer's deficit-weighted scheduler survive into fleet
    /// assignment order.
    pub fn pop_queued(&self) -> Option<u64> {
        self.tasks
            .iter()
            .filter(|(_, e)| e.state == TaskState::Queued)
            .max_by_key(|(id, e)| (e.priority, std::cmp::Reverse(**id)))
            .map(|(id, _)| *id)
    }

    /// Marks `id` assigned to `worker` and builds the wire-format task.
    /// Panics if the task is not queued — callers route through
    /// [`TaskTable::pop_queued`] under one lock.
    pub fn assign(&mut self, id: u64, worker: &str) -> FleetTask {
        let entry = self.tasks.get_mut(&id).expect("assign: unknown task");
        assert_eq!(entry.state, TaskState::Queued, "assign: task not queued");
        entry.state = TaskState::Assigned(worker.to_string());
        let lease = entry.lease.as_ref().expect("assign: lease already taken");
        FleetTask {
            id,
            attempt: entry.attempt,
            session: lease.session.clone(),
            app: lease.app.clone(),
            cluster: lease.cluster.clone(),
            cost: lease.cost,
            config: lease.config,
            seed: lease.seed,
            retry: lease.retry,
            faults: lease.faults.clone(),
        }
    }

    /// Records the worker's ack. Ignored unless the task is currently
    /// assigned to that worker (a deposed worker's ack is stale).
    pub fn ack(&mut self, id: u64, worker: &str) -> bool {
        match self.tasks.get_mut(&id) {
            Some(entry) if entry.state == TaskState::Assigned(worker.to_string()) => {
                entry.state = TaskState::Acked(worker.to_string());
                true
            }
            _ => false,
        }
    }

    /// The worker the task is currently assigned/acked to.
    pub fn current_assignee(&self, id: u64) -> Option<&str> {
        match self.tasks.get(&id).map(|e| &e.state) {
            Some(TaskState::Assigned(w)) | Some(TaskState::Acked(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    /// Removes the task and hands back its lease for commit. `None` if
    /// the task is unknown (already committed).
    pub fn take_for_commit(&mut self, id: u64) -> Option<EvalLease> {
        self.tasks.remove(&id).and_then(|e| e.lease)
    }

    /// The dedup key of a task, if it is still in the table.
    pub fn key_of(&self, id: u64) -> Option<EvalKey> {
        self.tasks.get(&id).map(|e| e.key)
    }

    /// Borrow of the task's lease (for cache probes before assignment).
    pub fn lease_ref(&self, id: u64) -> Option<&EvalLease> {
        self.tasks.get(&id).and_then(|e| e.lease.as_ref())
    }

    /// Tasks currently waiting for a worker.
    pub fn queued_len(&self) -> usize {
        self.tasks
            .values()
            .filter(|e| e.state == TaskState::Queued)
            .count()
    }

    /// The session a task belongs to, if still in the table.
    pub fn session_of(&self, id: u64) -> Option<&str> {
        self.tasks.get(&id).map(|e| e.session.as_str())
    }

    /// Returns the task to the queue after its assignee died, bumping
    /// the attempt counter. Returns the new attempt number, or `None`
    /// if the task is unknown or already queued.
    pub fn requeue(&mut self, id: u64) -> Option<u32> {
        let entry = self.tasks.get_mut(&id)?;
        if entry.state == TaskState::Queued {
            return None;
        }
        entry.state = TaskState::Queued;
        entry.attempt += 1;
        Some(entry.attempt)
    }

    /// Tasks still in the table (queued or in flight).
    pub fn outstanding(&self) -> usize {
        self.tasks.len()
    }

    /// Current state of a task, for tests and diagnostics.
    pub fn state(&self, id: u64) -> Option<TaskState> {
        self.tasks.get(&id).map(|e| e.state.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_serve::{ServeConfig, Service, SessionSpec};

    /// Builds a real lease by starting an External-execution service and
    /// queueing one evaluation.
    fn lease() -> EvalLease {
        let config = ServeConfig {
            execution: relm_serve::Execution::External,
            ..ServeConfig::default()
        };
        let service = Service::start(config, relm_obs::Obs::disabled());
        let spec = SessionSpec::named("WordCount", 7);
        let session = match service.handle(&relm_serve::Request::CreateSession { spec }) {
            relm_serve::Response::SessionCreated { session } => session,
            other => panic!("create failed: {other:?}"),
        };
        service.handle(&relm_serve::Request::StepAuto { session, evals: 1 });
        service.lease_next().expect("one pending evaluation")
    }

    #[test]
    fn lifecycle_queued_assigned_acked_committed() {
        let mut table = TaskTable::new();
        let id = table.admit(lease());
        assert_eq!(table.state(id), Some(TaskState::Queued));
        assert_eq!(table.pop_queued(), Some(id));

        let wire = table.assign(id, "w-0");
        assert_eq!(wire.id, id);
        assert_eq!(wire.attempt, 0);
        assert_eq!(table.current_assignee(id), Some("w-0"));

        // A stale ack from another worker is refused.
        assert!(!table.ack(id, "w-1"));
        assert!(table.ack(id, "w-0"));
        assert_eq!(table.state(id), Some(TaskState::Acked("w-0".into())));

        assert!(table.take_for_commit(id).is_some());
        assert_eq!(table.outstanding(), 0);
        // Double-commit is impossible: the entry is gone.
        assert!(table.take_for_commit(id).is_none());
    }

    #[test]
    fn queued_tasks_assign_in_priority_order() {
        let config = ServeConfig {
            execution: relm_serve::Execution::External,
            ..ServeConfig::default()
        };
        let service = Service::start(config, relm_obs::Obs::disabled());
        for priority in Priority::ALL {
            let spec = SessionSpec::named("WordCount", 7).with_priority(priority);
            let session = match service.handle(&relm_serve::Request::CreateSession { spec }) {
                relm_serve::Response::SessionCreated { session } => session,
                other => panic!("create failed: {other:?}"),
            };
            service.handle(&relm_serve::Request::StepAuto { session, evals: 1 });
        }
        let mut leases = Vec::new();
        while let Some(lease) = service.lease_next() {
            leases.push(lease);
        }
        assert_eq!(leases.len(), 3);
        // Admit in worst-case order (low first) — assignment must still
        // prefer the high-priority task, then normal, then low.
        leases.sort_by_key(|l| l.priority);
        let mut table = TaskTable::new();
        let ids: Vec<u64> = leases.into_iter().map(|l| table.admit(l)).collect();
        let expected = [ids[2], ids[1], ids[0]];
        for id in expected {
            let next = table.pop_queued().expect("queued task");
            assert_eq!(next, id, "fleet assignment must follow priority");
            table.assign(next, "w-0");
            table.ack(next, "w-0");
            table.take_for_commit(next);
        }
        assert_eq!(table.outstanding(), 0);
    }

    #[test]
    fn requeue_bumps_attempt_and_deposes_the_old_assignee() {
        let mut table = TaskTable::new();
        let id = table.admit(lease());
        table.assign(id, "w-0");
        table.ack(id, "w-0");

        assert_eq!(table.requeue(id), Some(1));
        assert_eq!(table.state(id), Some(TaskState::Queued));
        assert_eq!(table.current_assignee(id), None);
        // Requeueing a queued task is a no-op.
        assert_eq!(table.requeue(id), None);

        let wire = table.assign(id, "w-1");
        assert_eq!(wire.attempt, 1);
        // The deposed worker's ack no longer lands.
        assert!(!table.ack(id, "w-0"));
        assert_eq!(table.current_assignee(id), Some("w-1"));
    }
}
