//! The fleet's acceptance tests: worker death mid-evaluation, at-most-once
//! reassignment, and the standing invariant — per-session histories
//! byte-identical at any fleet size under any injected worker-failure
//! schedule.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use relm_faults::{FaultConfig, WorkerFaultConfig, WorkerFaultPlan};
use relm_fleet::{evaluate_task, run_worker, Center, MonitorConfig, WorkerConfig, WorkerExit};
use relm_obs::Obs;
use relm_serve::{
    Execution, Request, Response, ServeConfig, Service, SessionSpec, TcpClient, TcpServer,
};

/// Session specs used by every run in this file — one clean, one under a
/// seeded engine-level fault plan (so censored evaluations cross the
/// fleet wire too).
fn specs() -> Vec<SessionSpec> {
    vec![
        SessionSpec::named("WordCount", 7),
        SessionSpec::named("PageRank", 11).with_faults(400, FaultConfig::uniform(0.10)),
    ]
}

const STEPS: u32 = 4;

/// Drives the spec set to completion against `service` and returns each
/// session's history serialized to JSON — the byte-comparison currency.
fn drive_sessions(service: &Service) -> Vec<String> {
    let mut names = Vec::new();
    for spec in specs() {
        let session = match service.handle(&Request::CreateSession { spec }) {
            Response::SessionCreated { session } => session,
            other => panic!("create failed: {other:?}"),
        };
        match service.handle(&Request::StepAuto {
            session: session.clone(),
            evals: STEPS,
        }) {
            Response::Accepted { enqueued, .. } => assert_eq!(enqueued, STEPS as usize),
            other => panic!("step failed: {other:?}"),
        }
        names.push(session);
    }
    names
        .into_iter()
        .map(
            |session| match service.handle(&Request::Result { session }) {
                Response::ResultReady { history, .. } => {
                    assert_eq!(history.len(), STEPS as usize, "lost evaluations");
                    serde_json::to_string(&history).expect("history serializes")
                }
                other => panic!("result failed: {other:?}"),
            },
        )
        .collect()
}

/// The 1-worker, no-fleet, no-fault reference run.
fn baseline_histories() -> Vec<String> {
    let service = Service::start(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        Obs::disabled(),
    );
    drive_sessions(&service)
}

/// A fast liveness policy for in-process tests: 10ms beats, dead after 3
/// missed. Only safe where the transport is a function call — over a real
/// socket the worker is necessarily silent for one full frame round-trip
/// while delivering a result, and a 30ms death timeout would depose it.
fn fast_monitor() -> MonitorConfig {
    MonitorConfig {
        heartbeat_ms: 10,
        missed_threshold: 3,
    }
}

/// Liveness policy for the TCP test: still quick beats, but the death
/// timeout (1s) dominates the worst-case serialize/parse time of a large
/// result frame on a debug build, mirroring how the production default
/// (500ms x 4 = 2s) dominates real network delivery.
fn tcp_monitor() -> MonitorConfig {
    MonitorConfig {
        heartbeat_ms: 25,
        missed_threshold: 40,
    }
}

fn external_service(obs: &Obs) -> Arc<Service> {
    Arc::new(Service::start(
        ServeConfig {
            execution: Execution::External,
            ..ServeConfig::default()
        },
        obs.clone(),
    ))
}

/// The tentpole: a 3-worker fleet with one worker armed to die right
/// after acking its first assignment. The killed task must be reassigned
/// (exactly once — one death, one requeue), every session must complete,
/// and the histories must be byte-identical to the 1-worker local run.
#[test]
fn killed_worker_mid_evaluation_reassigns_once_and_history_is_byte_identical() {
    let baseline = baseline_histories();

    let obs = Obs::enabled();
    let service = external_service(&obs);
    let center = Center::start(Arc::clone(&service), fast_monitor());

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    // w-0, armed for certain death on its first acked assignment, starts
    // alone so it is guaranteed to win a task before dying.
    {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let config = WorkerConfig::named("w-0").with_faults(WorkerFaultPlan::new(
                99,
                WorkerFaultConfig {
                    kill_rate: 1.0,
                    ..WorkerFaultConfig::off()
                },
            ));
            run_worker(|req| Ok(service.handle(req)), &config, &stop)
        }));
    }
    // Queue the work, then wait until w-0 has taken (and died on) a task
    // before the survivors join the fleet.
    let session_names = {
        let mut names = Vec::new();
        for spec in specs() {
            let session = match service.handle(&Request::CreateSession { spec }) {
                Response::SessionCreated { session } => session,
                other => panic!("create failed: {other:?}"),
            };
            match service.handle(&Request::StepAuto {
                session: session.clone(),
                evals: STEPS,
            }) {
                Response::Accepted { enqueued, .. } => assert_eq!(enqueued, STEPS as usize),
                other => panic!("step failed: {other:?}"),
            }
            names.push(session);
        }
        names
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while obs.counter_value("fleet.tasks_assigned") < 1.0 {
        assert!(
            std::time::Instant::now() < deadline,
            "w-0 never took a task"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    for i in 1..3 {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            run_worker(
                |req| Ok(service.handle(req)),
                &WorkerConfig::named(format!("w-{i}")),
                &stop,
            )
        }));
    }

    let histories: Vec<String> = session_names
        .into_iter()
        .map(
            |session| match service.handle(&Request::Result { session }) {
                Response::ResultReady { history, .. } => {
                    assert_eq!(history.len(), STEPS as usize, "lost evaluations");
                    serde_json::to_string(&history).expect("history serializes")
                }
                other => panic!("result failed: {other:?}"),
            },
        )
        .collect();

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let reports: Vec<_> = workers
        .into_iter()
        .map(|t| t.join().expect("worker thread"))
        .collect();
    center.stop();

    // The invariant: distribution and mid-run death are invisible to the
    // deterministic state.
    assert_eq!(histories, baseline, "fleet history diverged from local run");

    // The armed worker died exactly once, on its first task.
    let killed = reports.iter().find(|r| r.id == "w-0").expect("w-0 report");
    assert_eq!(killed.exit, WorkerExit::Killed);
    assert_eq!(killed.evaluations, 0, "kill fires before the evaluation");

    // ... and its task was reassigned exactly once.
    assert_eq!(center.reassignment_count(), 1, "exactly one reassignment");
    assert_eq!(obs.counter_value("fleet.reassignments"), 1.0);

    // At-most-once commit: every admitted evaluation committed through
    // exactly one door, and the books balance.
    let total = specs().len() * STEPS as usize;
    assert_eq!(obs.counter_value("serve.evaluations"), total as f64);
    let commits = obs.counter_value("fleet.tasks_completed")
        + obs.counter_value("fleet.cache_commits")
        + obs.counter_value("fleet.local_commits");
    assert_eq!(commits, total as f64, "commit doors don't sum to the total");
    // The survivors did all the work.
    let executed: usize = reports.iter().map(|r| r.evaluations).sum();
    assert_eq!(executed, total, "workers executed a different number");
}

/// At-most-once under deposition: a worker is declared dead mid-task and
/// delivers late. The late result must NOT commit — it only warms the
/// cache, and the reassigned attempt replays it for free (no second
/// evaluation is ever paid for).
#[test]
fn deposed_workers_late_result_warms_cache_but_never_commits() {
    let obs = Obs::enabled();
    let service = external_service(&obs);
    let center = Center::start(Arc::clone(&service), fast_monitor());

    let session = match service.handle(&Request::CreateSession {
        spec: SessionSpec::named("WordCount", 7),
    }) {
        Response::SessionCreated { session } => session,
        other => panic!("create failed: {other:?}"),
    };
    service.handle(&Request::StepAuto {
        session: session.clone(),
        evals: 1,
    });

    // Play worker w-0 by hand: register, poll, ack.
    match service.handle(&Request::Register {
        worker: "w-0".into(),
        capacity: 1,
    }) {
        Response::Registered { .. } => {}
        other => panic!("register failed: {other:?}"),
    }
    let task = match service.handle(&Request::Heartbeat {
        worker: "w-0".into(),
        seq: 1,
    }) {
        Response::Assign { task } => *task,
        other => panic!("expected assignment: {other:?}"),
    };
    match service.handle(&Request::Ack {
        worker: "w-0".into(),
        task: task.id,
    }) {
        Response::HeartbeatAck { .. } => {}
        other => panic!("ack failed: {other:?}"),
    }

    // The monitor (here: the deterministic test hook) declares w-0 dead;
    // its task is requeued.
    center.force_dead("w-0");
    assert_eq!(center.reassignment_count(), 1);

    // w-0, unaware, finishes the evaluation and delivers — late.
    let outcome = evaluate_task(&task);
    match service.handle(&Request::Complete {
        worker: "w-0".into(),
        task: task.id,
        outcome: outcome.clone(),
    }) {
        Response::Reassigned { task: id } => assert_eq!(id, task.id),
        other => panic!("late delivery must be refused: {other:?}"),
    }
    assert_eq!(obs.counter_value("fleet.late_results"), 1.0);
    assert_eq!(
        obs.counter_value("serve.evaluations"),
        0.0,
        "a deposed result must not commit"
    );

    // A dead worker's next heartbeat is refused (it must re-register).
    match service.handle(&Request::Heartbeat {
        worker: "w-0".into(),
        seq: 2,
    }) {
        Response::Error { .. } => {}
        other => panic!("dead worker's beat must be refused: {other:?}"),
    }

    // A fresh worker polls. The requeued task's outcome is already in
    // the cache (warmed by the late delivery), so the center commits it
    // locally — no second evaluation — and the worker stays idle.
    match service.handle(&Request::Register {
        worker: "w-1".into(),
        capacity: 1,
    }) {
        Response::Registered { .. } => {}
        other => panic!("register failed: {other:?}"),
    }
    match service.handle(&Request::Heartbeat {
        worker: "w-1".into(),
        seq: 1,
    }) {
        Response::HeartbeatAck { pending } => assert_eq!(pending, 0),
        other => panic!("expected idle ack: {other:?}"),
    }
    assert_eq!(obs.counter_value("fleet.cache_commits"), 1.0);
    assert_eq!(obs.counter_value("serve.evaluations"), 1.0);
    assert_eq!(
        obs.counter_value("evalcache.hits"),
        1.0,
        "the reassigned attempt replays the warmed cell"
    );

    match service.handle(&Request::Result { session }) {
        Response::ResultReady { history, .. } => assert_eq!(history.len(), 1),
        other => panic!("result failed: {other:?}"),
    }
    center.stop();
}

/// Warm-start meets the fleet: sessions seeded from a cross-session
/// memory store, evaluated by remote workers with one armed to die, must
/// produce histories byte-identical to a 1-worker local warm run against
/// the same store — and the fleet's drain must ingest the warm sessions'
/// digests back into the store.
#[test]
fn warm_started_fleet_run_with_kill_matches_local_warm_run() {
    let dir = std::env::temp_dir().join(format!("relm_fleet_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("memory.jsonl");

    // Phase 1: a cold local run builds the store (drain extracts and
    // persists the digests).
    {
        let service = Service::start(
            ServeConfig {
                workers: 2,
                memory_store: Some(store.clone()),
                ..ServeConfig::default()
            },
            Obs::disabled(),
        );
        drive_sessions(&service);
        match service.handle(&Request::Drain) {
            Response::Drained { sessions, .. } => assert_eq!(sessions, 2),
            other => panic!("drain failed: {other:?}"),
        }
    }

    // Fresh seeds of the same workloads, warm-started from the store.
    let warm_specs = || -> Vec<SessionSpec> {
        specs()
            .into_iter()
            .map(|mut s| {
                s.base_seed += 5000;
                s.with_warm_start()
            })
            .collect()
    };
    // Guided from evaluation zero when the prior clears the fit minimum;
    // a warm miss (workload with no usable fingerprint) degrades to auto
    // sampling. Either way the choice is a pure function of the store.
    let enqueue_warm = |service: &Service| -> Vec<String> {
        let mut names = Vec::new();
        for spec in warm_specs() {
            let session = match service.handle(&Request::CreateSession { spec }) {
                Response::SessionCreated { session } => session,
                other => panic!("create failed: {other:?}"),
            };
            let guided = service.handle(&Request::StepGuided {
                session: session.clone(),
                evals: STEPS,
            });
            match guided {
                Response::Accepted { .. } => {}
                Response::Error { .. } => {
                    match service.handle(&Request::StepAuto {
                        session: session.clone(),
                        evals: STEPS,
                    }) {
                        Response::Accepted { .. } => {}
                        other => panic!("auto fallback failed: {other:?}"),
                    }
                }
                other => panic!("guided step failed: {other:?}"),
            }
            names.push(session);
        }
        names
    };
    let collect = |service: &Service, names: Vec<String>| -> Vec<String> {
        names
            .into_iter()
            .map(
                |session| match service.handle(&Request::Result { session }) {
                    Response::ResultReady { history, .. } => {
                        assert_eq!(history.len(), STEPS as usize, "lost evaluations");
                        serde_json::to_string(&history).expect("history serializes")
                    }
                    other => panic!("result failed: {other:?}"),
                },
            )
            .collect()
    };

    // Local warm reference (1 worker, same store, no drain — the
    // reference must not mutate the store the fleet run reads).
    let local = {
        let service = Service::start(
            ServeConfig {
                workers: 1,
                memory_store: Some(store.clone()),
                ..ServeConfig::default()
            },
            Obs::disabled(),
        );
        let names = enqueue_warm(&service);
        collect(&service, names)
    };

    // Fleet warm run: external execution, 3 workers, w-0 armed to die on
    // its first acked assignment.
    let obs = Obs::enabled();
    let service = Arc::new(Service::start(
        ServeConfig {
            execution: Execution::External,
            memory_store: Some(store.clone()),
            ..ServeConfig::default()
        },
        obs.clone(),
    ));
    let center = Center::start(Arc::clone(&service), fast_monitor());
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let config = WorkerConfig::named("w-0").with_faults(WorkerFaultPlan::new(
                17,
                WorkerFaultConfig {
                    kill_rate: 1.0,
                    ..WorkerFaultConfig::off()
                },
            ));
            run_worker(|req| Ok(service.handle(req)), &config, &stop)
        }));
    }
    let names = enqueue_warm(&service);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while obs.counter_value("fleet.tasks_assigned") < 1.0 {
        assert!(
            std::time::Instant::now() < deadline,
            "w-0 never took a task"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    for i in 1..3 {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            run_worker(
                |req| Ok(service.handle(req)),
                &WorkerConfig::named(format!("w-{i}")),
                &stop,
            )
        }));
    }
    let fleet = collect(&service, names);
    assert_eq!(
        fleet, local,
        "warm fleet histories diverged from the local warm run"
    );
    assert!(
        obs.counter_value("memory.retrievals") >= 1.0,
        "no prior was ever retrieved"
    );

    // Drain the fleet service: the warm sessions' digests flow back into
    // the store through the same path a local drain takes.
    match service.handle(&Request::Drain) {
        Response::Drained { sessions, .. } => assert_eq!(sessions, 2),
        other => panic!("drain failed: {other:?}"),
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for t in workers {
        t.join().expect("worker thread");
    }
    center.stop();

    let merged = relm_memory::MemoryStore::load(&store, Obs::disabled()).unwrap();
    assert_eq!(
        merged.len(),
        4,
        "store must hold the 2 cold and 2 warm session digests"
    );
    assert_eq!(merged.skipped(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Drain-report reconciliation: tasks stranded in reassignment limbo by
/// dead workers are run dry locally by the drain — zero lost sessions,
/// and the drain tally's `reassignments` agrees with the counter.
#[test]
fn drain_runs_reassignment_limbo_dry_and_reconciles() {
    let obs = Obs::enabled();
    let service = external_service(&obs);
    let center = Center::start(Arc::clone(&service), fast_monitor());

    let session = match service.handle(&Request::CreateSession {
        spec: SessionSpec::named("SortByKey", 13),
    }) {
        Response::SessionCreated { session } => session,
        other => panic!("create failed: {other:?}"),
    };
    service.handle(&Request::StepAuto {
        session: session.clone(),
        evals: 3,
    });

    // A worker takes the first task into flight, then dies without a
    // word. The task is now in reassignment limbo with no live worker
    // anywhere to take it.
    match service.handle(&Request::Register {
        worker: "w-0".into(),
        capacity: 1,
    }) {
        Response::Registered { .. } => {}
        other => panic!("register failed: {other:?}"),
    }
    let task = match service.handle(&Request::Heartbeat {
        worker: "w-0".into(),
        seq: 1,
    }) {
        Response::Assign { task } => *task,
        other => panic!("expected assignment: {other:?}"),
    };
    service.handle(&Request::Ack {
        worker: "w-0".into(),
        task: task.id,
    });
    center.force_dead("w-0");

    // Drain must run the limbo task AND the still-queued backlog dry.
    match service.handle(&Request::Drain) {
        Response::Drained {
            sessions,
            evaluations,
            reassignments,
            ..
        } => {
            assert_eq!(sessions, 1, "lost a session in drain");
            assert_eq!(evaluations, 3, "lost evaluations in drain");
            assert_eq!(reassignments, 1, "limbo task reassigned once");
        }
        other => panic!("drain failed: {other:?}"),
    }
    assert_eq!(
        obs.counter_value("fleet.reassignments"),
        1.0,
        "drain tally and counter must agree"
    );
    assert_eq!(obs.counter_value("fleet.local_commits"), 3.0);
    assert_eq!(obs.counter_value("serve.evaluations"), 3.0);
    assert_eq!(center.outstanding(), 0, "nothing left in the task table");
    center.stop();
}

/// Heartbeat-loss accounting is deterministic: sequence gaps tally the
/// missed beats no matter when they arrive.
#[test]
fn heartbeat_sequence_gaps_are_counted() {
    let obs = Obs::enabled();
    let service = external_service(&obs);
    let center = Center::start(Arc::clone(&service), fast_monitor());

    service.handle(&Request::Register {
        worker: "w-0".into(),
        capacity: 1,
    });
    for seq in [1u64, 2, 5, 6, 9] {
        match service.handle(&Request::Heartbeat {
            worker: "w-0".into(),
            seq,
        }) {
            Response::HeartbeatAck { .. } => {}
            other => panic!("beat refused: {other:?}"),
        }
    }
    // Gaps: 3,4 lost (2) + 7,8 lost (2).
    assert_eq!(obs.counter_value("fleet.heartbeats_missed"), 4.0);
    assert_eq!(obs.counter_value("fleet.heartbeats"), 5.0);
    center.stop();
}

/// The whole stack over real sockets: center behind the TCP frontend,
/// one clean TCP worker, histories byte-identical to the local run.
#[test]
fn tcp_fleet_round_trip_matches_local_run() {
    let baseline = baseline_histories();

    let obs = Obs::enabled();
    let service = external_service(&obs);
    let center = Center::start(Arc::clone(&service), tcp_monitor());
    let server = TcpServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = TcpClient::connect(addr).expect("worker connect");
            run_worker(
                |req| client.request(req),
                &WorkerConfig::named("w-tcp"),
                &stop,
            )
        })
    };

    let mut client = TcpClient::connect(addr).expect("driver connect");
    let mut names = Vec::new();
    for spec in specs() {
        let session = match client
            .request(&Request::CreateSession { spec })
            .expect("create")
        {
            Response::SessionCreated { session } => session,
            other => panic!("create failed: {other:?}"),
        };
        client
            .request(&Request::StepAuto {
                session: session.clone(),
                evals: STEPS,
            })
            .expect("step");
        names.push(session);
    }
    let histories: Vec<String> = names
        .into_iter()
        .map(|session| {
            match client
                .request(&Request::Result { session })
                .expect("result")
            {
                Response::ResultReady { history, .. } => {
                    serde_json::to_string(&history).expect("history serializes")
                }
                other => panic!("result failed: {other:?}"),
            }
        })
        .collect();
    assert_eq!(histories, baseline, "TCP fleet diverged from local run");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let report = worker.join().expect("worker thread");
    assert_eq!(report.evaluations, specs().len() * STEPS as usize);
    assert_eq!(report.exit, WorkerExit::Stopped);
    center.stop();
    drop(server);
}
