//! TPC-H (DBGen scale factor 50, 128 MB partitions) expressed as 22 query
//! applications for Cluster B (§6.4, Figure 21).
//!
//! Each query is modelled as a scan stage over its driving tables followed
//! by one or two shuffle (join/aggregation) stages. The per-query weights
//! are loosely proportioned to the queries' relative costs on Spark SQL:
//! Q1/Q6 are scan-dominated, Q9/Q21 are the heaviest multi-join queries,
//! and so on. The absolute numbers only need to produce a realistic spread
//! of shuffle/scan ratios for the tuners to work against.

use relm_app::{AppSpec, InputSource, StageSpec};
use relm_common::Mem;

/// Per-query shape parameters: (scan GB, CPU ms/MB, shuffle GB, join depth).
const QUERY_SHAPES: [(f64, f64, f64, u32); 22] = [
    (37.0, 14.0, 2.0, 1),  // Q1: lineitem scan + aggregation
    (6.0, 10.0, 3.0, 2),   // Q2: part/supplier joins
    (45.0, 8.0, 9.0, 2),   // Q3: customer/orders/lineitem
    (42.0, 7.0, 6.0, 1),   // Q4: semi-join
    (48.0, 9.0, 11.0, 2),  // Q5: 6-way join
    (37.0, 5.0, 0.5, 1),   // Q6: selective scan
    (46.0, 9.0, 10.0, 2),  // Q7: volume shipping
    (49.0, 9.0, 12.0, 2),  // Q8: national market share
    (50.0, 12.0, 16.0, 2), // Q9: heaviest multi-join
    (45.0, 8.0, 10.0, 2),  // Q10: returned items
    (5.0, 8.0, 2.0, 1),    // Q11: partsupp only
    (40.0, 7.0, 5.0, 1),   // Q12: shipping modes
    (12.0, 9.0, 6.0, 1),   // Q13: customer distribution
    (38.0, 7.0, 4.0, 1),   // Q14: promo effect
    (38.0, 7.0, 4.0, 1),   // Q15: top supplier
    (7.0, 8.0, 3.0, 1),    // Q16: parts/supplier relationship
    (39.0, 10.0, 5.0, 2),  // Q17: small-quantity orders
    (47.0, 10.0, 13.0, 2), // Q18: large volume customers
    (38.0, 9.0, 3.0, 1),   // Q19: discounted revenue
    (40.0, 9.0, 6.0, 2),   // Q20: potential part promotion
    (50.0, 11.0, 14.0, 2), // Q21: suppliers who kept orders waiting
    (10.0, 7.0, 2.0, 1),   // Q22: global sales opportunity
];

/// Builds one TPC-H query application. `query` is 1-based (1..=22).
pub fn tpch_query(query: u32) -> AppSpec {
    assert!((1..=22).contains(&query), "TPC-H defines queries 1..=22");
    let (scan_gb, cpu_w, shuffle_gb, joins) = QUERY_SHAPES[(query - 1) as usize];

    let partition = Mem::mb(128.0);
    let scan_tasks = ((scan_gb * 1024.0) / 128.0).round().max(1.0) as u32;
    let shuffle_total = Mem::gb(shuffle_gb);

    let mut scan = StageSpec::new(&format!("q{query}-scan"), scan_tasks, partition);
    scan.cpu_ms_per_mb = cpu_w;
    scan.shuffle_write_per_task = shuffle_total / scan_tasks as f64;
    scan.unmanaged_per_task = Mem::mb(220.0);
    scan.churn_factor = 2.4;

    let mut stages = vec![scan];
    let mut remaining = shuffle_total;
    for j in 0..joins {
        let join_tasks = 64;
        let mut join = StageSpec::new(
            &format!("q{query}-join{}", j + 1),
            join_tasks,
            remaining / 64.0,
        );
        join.input = InputSource::ShuffleRead;
        join.uses_shuffle_memory = true;
        join.cpu_ms_per_mb = cpu_w * 0.8;
        join.unmanaged_per_task = (remaining / 64.0 * 0.6).max(Mem::mb(96.0));
        join.churn_factor = 2.0;
        join.shuffle_write_per_task = if j + 1 < joins {
            remaining / 64.0 * 0.4
        } else {
            Mem::ZERO
        };
        remaining = remaining * 0.4;
        stages.push(join);
    }

    AppSpec::new(&format!("TPC-H Q{query}"), stages)
}

/// All 22 queries.
pub fn tpch_queries() -> Vec<AppSpec> {
    (1..=22).map(tpch_query).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_22_queries() {
        let qs = tpch_queries();
        assert_eq!(qs.len(), 22);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.name, format!("TPC-H Q{}", i + 1));
            assert!(q.uses_shuffle_memory());
            assert!(!q.uses_cache());
        }
    }

    #[test]
    fn query_shapes_vary() {
        let q6 = tpch_query(6);
        let q9 = tpch_query(9);
        assert!(
            q9.stages.len() > q6.stages.len() || {
                let s9: f64 = q9
                    .stages
                    .iter()
                    .map(|s| s.shuffle_write_per_task.as_mb())
                    .sum();
                let s6: f64 = q6
                    .stages
                    .iter()
                    .map(|s| s.shuffle_write_per_task.as_mb())
                    .sum();
                s9 > s6
            }
        );
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn rejects_query_zero() {
        tpch_query(0);
    }

    #[test]
    fn scan_tasks_match_partition_size() {
        let q1 = tpch_query(1);
        // 37 GB at 128 MB partitions = 296 tasks.
        assert_eq!(q1.stages[0].tasks, 296);
    }
}
