//! The five core benchmark applications (Table 2).

use relm_app::{AppSpec, InputSource, StageSpec};
use relm_common::Mem;

/// WordCount: Hadoop RandomTextWriter, 50 GB input, 128 MB partitions.
///
/// Map-and-reduce with map-side aggregation: the shuffle is tiny, no cache is
/// used, and performance is bound by CPU and disk — which is why it scales
/// with thin containers (Figure 4).
pub fn wordcount() -> AppSpec {
    let mut map = StageSpec::new("wc-map", 400, Mem::mb(128.0));
    map.cpu_ms_per_mb = 18.0;
    map.shuffle_write_per_task = Mem::mb(8.0);
    map.unmanaged_per_task = Mem::mb(160.0);
    map.churn_factor = 3.0;

    let mut reduce = StageSpec::new("wc-reduce", 64, Mem::mb(50.0));
    reduce.input = InputSource::ShuffleRead;
    reduce.uses_shuffle_memory = true;
    reduce.cpu_ms_per_mb = 10.0;
    reduce.unmanaged_per_task = Mem::mb(80.0);
    reduce.churn_factor = 2.0;

    AppSpec::new("WordCount", vec![map, reduce])
}

/// SortByKey: Hadoop RandomTextWriter, 30 GB input, **512 MB** partitions.
///
/// The reduce stage sorts the full data volume through the Task Shuffle
/// pool; undersized pools spill to disk, oversized pools create
/// promotion-driven GC storms (Observation 7 / Figure 10).
pub fn sortbykey() -> AppSpec {
    let mut map = StageSpec::new("sbk-map", 60, Mem::mb(512.0));
    map.cpu_ms_per_mb = 6.0;
    map.shuffle_write_per_task = Mem::mb(512.0);
    map.unmanaged_per_task = Mem::mb(150.0);
    map.churn_factor = 2.2;

    let mut reduce = StageSpec::new("sbk-reduce", 60, Mem::mb(512.0));
    reduce.input = InputSource::ShuffleRead;
    reduce.uses_shuffle_memory = true;
    reduce.shuffle_expansion = 3.5;
    reduce.cpu_ms_per_mb = 8.0;
    reduce.unmanaged_per_task = Mem::mb(90.0);
    reduce.churn_factor = 2.0;

    AppSpec::new("SortByKey", vec![map, reduce])
}

/// K-means: HiBench huge (100 M samples), 128 MB partitions.
///
/// Caches ~33 GB of deserialized training vectors — more than Cluster A can
/// hold — so the cache hit ratio tracks the Cache Capacity knob and the
/// application "hits the memory bottleneck before it can fit all the
/// partitions" (§3.3).
pub fn kmeans() -> AppSpec {
    let mut load = StageSpec::new("km-load", 240, Mem::mb(128.0));
    load.cpu_ms_per_mb = 22.0;
    // Unrolling a 128 MB partition into cache plus the deserialization
    // working set: the dominant per-task footprint.
    load.unmanaged_per_task = Mem::mb(450.0);
    load.churn_factor = 3.0;
    load.cache_block_per_task = Mem::mb(140.0); // 33.6 GB total demand

    let mut iterate = StageSpec::new("km-iterate", 240, Mem::mb(140.0));
    iterate.input = InputSource::Cached {
        miss_penalty_ms_per_mb: 30.0,
    };
    iterate.cpu_ms_per_mb = 18.0;
    iterate.unmanaged_per_task = Mem::mb(200.0);
    iterate.churn_factor = 1.6;
    iterate.in_iteration = true;

    let mut app = AppSpec::new("K-means", vec![load, iterate]);
    app.iterations = 8;
    app
}

/// SVM: HiBench huge (100 M examples), **32 MB** partitions.
///
/// Small partitions mean small per-task memory (profiles often contain no
/// full-GC events — the §6.4 sensitivity study), and the ~16 GB cache fits
/// entirely once Cache Capacity exceeds 0.5 (Figure 7d).
pub fn svm() -> AppSpec {
    svm_scaled(1.0)
}

/// SVM with its input scaled by `scale` (Figure 27 re-tests DDPG after
/// changing the data scale factor).
pub fn svm_scaled(scale: f64) -> AppSpec {
    let tasks = (500.0 * scale).round() as u32;
    let mut load = StageSpec::new("svm-load", tasks, Mem::mb(32.0));
    load.cpu_ms_per_mb = 25.0;
    load.unmanaged_per_task = Mem::mb(200.0);
    load.churn_factor = 3.0;
    load.cache_block_per_task = Mem::mb(32.0); // 16 GB total at scale 1

    let mut iterate = StageSpec::new("svm-iterate", tasks, Mem::mb(32.0));
    iterate.input = InputSource::Cached {
        miss_penalty_ms_per_mb: 35.0,
    };
    iterate.cpu_ms_per_mb = 20.0;
    iterate.unmanaged_per_task = Mem::mb(120.0);
    iterate.churn_factor = 1.5;
    iterate.in_iteration = true;

    let mut app = AppSpec::new("SVM", vec![load, iterate]);
    app.iterations = 8;
    app
}

/// PageRank: LiveJournal (69 M edges) via GraphX's LiveJournalPageRank.
///
/// The coalesce stage fetches partitions over the network into large
/// off-heap buffers while unrolling coalesced edge partitions — the highest
/// Task Unmanaged footprint in the suite (Table 6 reports 770 MB/task) —
/// and caches ~61 GB, of which the default setup fits only ~30%
/// (Table 6: H = 0.3). Under the default configuration the application
/// fails (Figure 5, Table 5).
pub fn pagerank() -> AppSpec {
    let mut read = StageSpec::new("pr-read", 480, Mem::mb(128.0));
    read.cpu_ms_per_mb = 8.0;
    read.shuffle_write_per_task = Mem::mb(128.0);
    read.unmanaged_per_task = Mem::mb(250.0);
    read.churn_factor = 2.0;

    let mut coalesce = StageSpec::new("pr-coalesce", 48, Mem::mb(1280.0));
    coalesce.input = InputSource::ShuffleRead;
    coalesce.cpu_ms_per_mb = 10.0;
    coalesce.unmanaged_per_task = Mem::mb(770.0);
    coalesce.churn_factor = 1.6;
    coalesce.off_heap_per_task = Mem::mb(250.0);
    coalesce.cache_block_per_task = Mem::mb(1280.0); // 61.4 GB total demand

    let mut iterate = StageSpec::new("pr-iterate", 48, Mem::mb(1280.0));
    iterate.input = InputSource::Cached {
        miss_penalty_ms_per_mb: 12.0,
    };
    iterate.cpu_ms_per_mb = 8.0;
    iterate.unmanaged_per_task = Mem::mb(400.0);
    iterate.churn_factor = 1.2;
    iterate.off_heap_per_task = Mem::mb(120.0);
    iterate.in_iteration = true;

    let mut app = AppSpec::new("PageRank", vec![read, coalesce, iterate]);
    app.iterations = 8;
    app.code_overhead = Mem::mb(115.0); // Table 6's example M_i
    app
}

/// The five applications evaluated throughout §3 and §6 (TPC-H is separate;
/// it runs on Cluster B).
pub fn benchmark_suite() -> Vec<AppSpec> {
    vec![wordcount(), sortbykey(), kmeans(), svm(), pagerank()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_applications() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["WordCount", "SortByKey", "K-means", "SVM", "PageRank"]
        );
    }

    #[test]
    fn cache_usage_split_matches_table_2() {
        assert!(!wordcount().uses_cache());
        assert!(!sortbykey().uses_cache());
        assert!(kmeans().uses_cache());
        assert!(svm().uses_cache());
        assert!(pagerank().uses_cache());
    }

    #[test]
    fn shuffle_usage() {
        assert!(wordcount().uses_shuffle());
        assert!(sortbykey().uses_shuffle());
        assert!(!kmeans().uses_shuffle());
        assert!(!svm().uses_shuffle());
    }

    #[test]
    fn iterative_apps_repeat_body() {
        for app in [kmeans(), svm(), pagerank()] {
            assert!(app.iterations > 1, "{} should be iterative", app.name);
            assert!(app.schedule().len() > app.stages.len());
        }
    }

    #[test]
    fn svm_scaling_scales_tasks() {
        let s1 = svm_scaled(1.0);
        let s2 = svm_scaled(2.0);
        assert_eq!(s2.stages[0].tasks, 2 * s1.stages[0].tasks);
        assert_eq!(s2.cache_demand(), s1.cache_demand() * 2.0);
    }

    #[test]
    fn pagerank_matches_table_6_footprints() {
        let pr = pagerank();
        let coalesce = &pr.stages[1];
        assert_eq!(coalesce.unmanaged_per_task, Mem::mb(770.0));
        assert_eq!(pr.code_overhead, Mem::mb(115.0));
    }
}
