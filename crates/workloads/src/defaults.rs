//! The default configuration policy: Amazon EMR's `MaxResourceAllocation`
//! plus the framework defaults (Table 4).

use relm_app::AppSpec;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;

/// The configuration `MaxResourceAllocation` and the framework defaults
/// produce for an application on a cluster (Table 4): one fat container per
/// node with the entire heap budget, Task Concurrency 2, a unified memory
/// pool of 0.6 of the heap, `NewRatio` 2 and `SurvivorRatio` 8.
///
/// The unified pool is assigned to the application's dominant requirement:
/// Spark's unified memory manager lets cache and execution share the pool,
/// so a cache-only application effectively has the whole 0.6 available as
/// Cache Capacity and a shuffle-only application as Shuffle Capacity. Mixed
/// applications get the conventional storage/execution split.
pub fn max_resource_allocation(cluster: &ClusterSpec, app: &AppSpec) -> MemoryConfig {
    let (cache_fraction, shuffle_fraction) = match (app.uses_cache(), app.uses_shuffle_memory()) {
        (true, false) => (0.6, 0.0),
        (false, true) => (0.0, 0.6),
        (true, true) => (0.5, 0.1),
        (false, false) => (0.3, 0.3),
    };
    MemoryConfig {
        containers_per_node: 1,
        heap: cluster.heap_for(1),
        task_concurrency: 2,
        cache_fraction,
        shuffle_fraction,
        new_ratio: 2,
        survivor_ratio: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{pagerank, sortbykey, wordcount};
    use relm_common::Mem;

    #[test]
    fn matches_table_4_on_cluster_a() {
        let cfg = max_resource_allocation(&ClusterSpec::cluster_a(), &wordcount());
        assert_eq!(cfg.containers_per_node, 1);
        assert_eq!(cfg.heap, Mem::mb(4404.0));
        assert_eq!(cfg.task_concurrency, 2);
        assert!((cfg.unified_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(cfg.new_ratio, 2);
        assert_eq!(cfg.survivor_ratio, 8);
    }

    #[test]
    fn unified_pool_goes_to_dominant_requirement() {
        let cluster = ClusterSpec::cluster_a();
        let shuffle_cfg = max_resource_allocation(&cluster, &sortbykey());
        assert_eq!(shuffle_cfg.cache_fraction, 0.0);
        assert_eq!(shuffle_cfg.shuffle_fraction, 0.6);

        // PageRank caches and shuffles (the read stage writes shuffle data)
        // but its dominant pool is cache.
        let pr_cfg = max_resource_allocation(&cluster, &pagerank());
        assert!(pr_cfg.cache_fraction >= 0.5);
    }

    #[test]
    fn default_is_valid() {
        let cluster = ClusterSpec::cluster_a();
        for app in crate::suite::benchmark_suite() {
            assert!(max_resource_allocation(&cluster, &app).validate().is_ok());
        }
    }
}
