//! # relm-workloads
//!
//! The benchmark test suite of Table 2, expressed as [`relm_app::AppSpec`]s for the
//! execution simulator, plus the default configuration policy
//! (`MaxResourceAllocation`, Table 4).
//!
//! The six applications cover the computational spectrum the paper uses:
//!
//! | Application | Category         | Character |
//! |-------------|------------------|-----------|
//! | WordCount   | Map and Reduce   | CPU/disk bound, tiny shuffle, no cache |
//! | SortByKey   | Map and Reduce   | full-data shuffle, 512 MB partitions → large task memory |
//! | K-means     | Machine Learning | iterative, cache-hungry (does not fully fit on Cluster A) |
//! | SVM         | Machine Learning | iterative, 32 MB partitions → small task memory, cache fits at ½ heap |
//! | PageRank    | Graph            | coalesce with huge task-unmanaged + off-heap fetch buffers |
//! | TPC-H       | SQL              | 22 scan/join/aggregate queries (Cluster B) |
//!
//! Input sizes and partition sizes follow Table 2; memory footprints are
//! calibrated so the Section-3 observations (container sizing, concurrency
//! plateaus, cache/shuffle pool interactions, GC interplay, PageRank's
//! default-configuration failures) emerge from the simulator.

pub mod defaults;
pub mod suite;
pub mod tpch;

pub use defaults::max_resource_allocation;
pub use suite::{benchmark_suite, kmeans, pagerank, sortbykey, svm, svm_scaled, wordcount};
pub use tpch::{tpch_queries, tpch_query};
