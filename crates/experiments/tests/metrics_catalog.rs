//! Metrics-catalog drift test: the "Metrics catalog" table in
//! `OPERATIONS.md` must stay in lockstep with what the code actually
//! emits. The test collects the union of metrics from reference runs —
//! three `serve_load` smokes (plain+guided, fleet with a kill, soak with
//! eviction and autoscaling), every tuner policy driven in-process, a
//! memory-store build/warm-start cycle, and an in-process overload +
//! session-lifecycle pass (admission pushback, cancel, cache probes) —
//! then fails on any mismatch in either direction:
//!
//! - an emitted counter/gauge/histogram with no catalog row is an
//!   **undocumented metric** (the failure prints a ready-to-paste row);
//! - a catalog row marked `always` that no reference run emitted is a
//!   **stale catalog entry** (rows marked `rare` are exempt from this
//!   direction: they cover error paths and optional subsystems the
//!   reference runs don't trigger).

use relm_app::Engine;
use relm_bo::{BayesOpt, BoConfig};
use relm_cluster::ClusterSpec;
use relm_core::RelmTuner;
use relm_ddpg::DdpgTuner;
use relm_obs::{MetricsSnapshot, Obs};
use relm_serve::{Priority, Request, Response, ServeConfig, Service, SessionSpec};
use relm_tune::{
    DefaultPolicy, ExhaustiveSearch, RandomSearch, RecursiveRandomSearch, Tuner, TuningEnv,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One parsed catalog row: a (possibly `<placeholder>`-wildcarded) name,
/// its kind, and whether the reference runs are required to emit it.
struct CatalogRow {
    pattern: String,
    kind: Kind,
    always: bool,
}

/// Matches a concrete metric name against a catalog pattern. Patterns
/// are dot-separated; a segment may embed one `<placeholder>` that
/// matches any non-empty run of characters within the segment.
fn pattern_matches(pattern: &str, name: &str) -> bool {
    let ps: Vec<&str> = pattern.split('.').collect();
    let ns: Vec<&str> = name.split('.').collect();
    if ps.len() != ns.len() {
        return false;
    }
    ps.iter().zip(&ns).all(|(p, n)| match p.find('<') {
        Some(start) => {
            let end = p.rfind('>').expect("unclosed placeholder in catalog");
            let (prefix, suffix) = (&p[..start], &p[end + 1..]);
            n.len() > prefix.len() + suffix.len() && n.starts_with(prefix) && n.ends_with(suffix)
        }
        None => p == n,
    })
}

/// Parses the `## Metrics catalog` table out of OPERATIONS.md.
fn parse_catalog(path: &Path) -> Vec<CatalogRow> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let section = text
        .split("## Metrics catalog")
        .nth(1)
        .expect("OPERATIONS.md has a `## Metrics catalog` section");
    let mut rows = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        if !line.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim())
            .collect();
        assert!(
            cells.len() >= 4,
            "catalog row needs name|kind|presence|description: {line}"
        );
        let pattern = cells[0].trim_matches('`').to_string();
        let kind = match cells[1] {
            "counter" => Kind::Counter,
            "gauge" => Kind::Gauge,
            "histogram" => Kind::Histogram,
            other => panic!("unknown kind `{other}` in catalog row: {line}"),
        };
        let always = match cells[2] {
            "always" => true,
            "rare" => false,
            other => panic!("unknown presence `{other}` in catalog row: {line}"),
        };
        rows.push(CatalogRow {
            pattern,
            kind,
            always,
        });
    }
    assert!(
        rows.len() > 50,
        "catalog suspiciously small: {}",
        rows.len()
    );
    rows
}

/// Folds a snapshot's metric names into the emitted set, keyed by kind.
fn fold(emitted: &mut BTreeSet<(Kind, String)>, snapshot: &MetricsSnapshot) {
    for (name, _) in &snapshot.counters {
        emitted.insert((Kind::Counter, name.clone()));
    }
    for (name, _) in &snapshot.gauges {
        emitted.insert((Kind::Gauge, name.clone()));
    }
    for h in &snapshot.histograms {
        emitted.insert((Kind::Histogram, h.name.clone()));
    }
}

/// Runs the serve_load binary with the given flags plus `--metrics-out`,
/// returning its final post-drain snapshot.
fn serve_load_smoke(tmp: &Path, tag: &str, flags: &[&str]) -> MetricsSnapshot {
    let out = tmp.join(format!("{tag}.metrics.json"));
    let status = Command::new(env!("CARGO_BIN_EXE_serve_load"))
        .args(flags)
        .arg("--out")
        .arg(tmp.join(format!("{tag}.jsonl")))
        .arg("--metrics-out")
        .arg(&out)
        .status()
        .expect("spawn serve_load");
    assert!(status.success(), "serve_load {tag} smoke failed");
    let json = std::fs::read_to_string(&out).expect("metrics-out written");
    serde_json::from_str(&json).expect("metrics-out parses as MetricsSnapshot")
}

/// Drives every tuner policy through a short in-process session on one
/// enabled Obs handle, so the policy-side metric families all emit.
fn tuner_policy_snapshot() -> MetricsSnapshot {
    let obs = Obs::enabled();
    let cluster = ClusterSpec::cluster_a();
    let app = relm_workloads::svm();
    let short_bo = BoConfig {
        max_iterations: 4,
        min_adaptive_samples: 2,
        ..BoConfig::default()
    };
    let policies: Vec<Box<dyn Tuner>> = vec![
        Box::new(DefaultPolicy),
        Box::new(ExhaustiveSearch),
        Box::new(RandomSearch::new(6, 11)),
        Box::new(RecursiveRandomSearch::new(8, 12)),
        Box::new(BayesOpt::new(3).with_config(short_bo)),
        Box::new(BayesOpt::guided(3).with_config(short_bo)),
        Box::new(DdpgTuner::new(3).with_budget(3)),
        Box::new(RelmTuner::default()),
    ];
    for (i, mut tuner) in policies.into_iter().enumerate() {
        let engine = Engine::new(cluster.clone()).with_obs(obs.clone());
        let mut env = TuningEnv::new(engine, app.clone(), 7000 + i as u64);
        tuner.tune(&mut env).expect("policy session failed");
    }
    obs.metrics_snapshot()
}

/// Builds a memory store through a drain, then warm-starts new sessions
/// against it, so the `memory.*` family emits end to end.
fn memory_snapshot(tmp: &Path) -> MetricsSnapshot {
    let store = tmp.join("memory.jsonl");
    let obs = Obs::enabled();
    let spec = |i: u64| SessionSpec::named("WordCount", 4400 + i);
    {
        let service = Service::start(
            ServeConfig {
                workers: 2,
                memory_store: Some(store.clone()),
                ..ServeConfig::default()
            },
            obs.clone(),
        );
        for i in 0..2 {
            let name = match service.handle(&Request::CreateSession { spec: spec(i) }) {
                Response::SessionCreated { session } => session,
                other => panic!("create failed: {other:?}"),
            };
            service.handle(&Request::StepAuto {
                session: name,
                evals: 6,
            });
        }
        match service.handle(&Request::Drain) {
            Response::Drained { .. } => {}
            other => panic!("drain failed: {other:?}"),
        }
    }
    let service = Service::start(
        ServeConfig {
            workers: 2,
            memory_store: Some(store),
            ..ServeConfig::default()
        },
        obs.clone(),
    );
    for i in 0..2 {
        let mut warm = spec(i).with_warm_start();
        warm.base_seed += 777;
        let name = match service.handle(&Request::CreateSession { spec: warm }) {
            Response::SessionCreated { session } => session,
            other => panic!("create failed: {other:?}"),
        };
        service.handle(&Request::StepGuided {
            session: name.clone(),
            evals: 2,
        });
        service.handle(&Request::Join { session: name });
    }
    obs.metrics_snapshot()
}

/// Deterministically triggers the admission/lifecycle counters the load
/// smokes don't: per-class pushback (a batch larger than the low and
/// normal class shares of a tiny global queue is always rejected),
/// session cancellation, and eval-cache probes (first probes always
/// miss).
fn overload_and_lifecycle_snapshot() -> MetricsSnapshot {
    let obs = Obs::enabled();
    let service = Service::start(
        ServeConfig {
            workers: 1,
            global_queue_limit: 2,
            session_queue_limit: 4,
            ..ServeConfig::default()
        },
        obs.clone(),
    );
    let create = |priority: Priority, seed: u64, cache: bool| {
        let mut spec = SessionSpec::named("WordCount", seed).with_priority(priority);
        if cache {
            spec = spec.with_cache();
        }
        match service.handle(&Request::CreateSession { spec }) {
            Response::SessionCreated { session } => session,
            other => panic!("create failed: {other:?}"),
        }
    };
    // Low share = floor(2 * 0.5) = 1 and normal share = floor(2 * 0.75)
    // = 1, so a 2-eval batch is pushed back regardless of queue state.
    for (priority, seed) in [(Priority::Low, 300), (Priority::Normal, 301)] {
        let name = create(priority, seed, false);
        match service.handle(&Request::StepAuto {
            session: name,
            evals: 2,
        }) {
            Response::Overloaded { .. } => {}
            other => panic!("expected class pushback, got {other:?}"),
        }
    }
    // The high class gets the full queue: its batch admits, probes the
    // eval cache (cold, so every probe misses), and a post-join cancel
    // registers the cancellation counters.
    let high = create(Priority::High, 302, true);
    match service.handle(&Request::StepAuto {
        session: high.clone(),
        evals: 2,
    }) {
        Response::Accepted { .. } => {}
        other => panic!("high-priority step rejected: {other:?}"),
    }
    service.handle(&Request::Join {
        session: high.clone(),
    });
    match service.handle(&Request::Cancel { session: high }) {
        Response::Cancelled { .. } => {}
        other => panic!("cancel failed: {other:?}"),
    }
    obs.metrics_snapshot()
}

#[test]
fn catalog_matches_emitted_metrics_exactly() {
    let tmp = std::env::temp_dir().join(format!("relm_metrics_catalog_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();

    let mut emitted: BTreeSet<(Kind, String)> = BTreeSet::new();
    let flightrec = tmp.join("flightrec");
    let ckpt = tmp.join("ckpt");
    fold(
        &mut emitted,
        &serve_load_smoke(
            &tmp,
            "plain",
            &[
                // 6 sessions x (10 + 2) evals crosses the 64-evaluation
                // SLO window so a rotation is observed.
                "--sessions",
                "6",
                "--steps",
                "10",
                "--guided",
                "2",
                "--clients",
                "2",
                "--workers",
                "2",
                "--scrape",
                "--checkpoint-dir",
                ckpt.to_str().unwrap(),
                "--flightrec-dir",
                flightrec.to_str().unwrap(),
            ],
        ),
    );
    fold(
        &mut emitted,
        &serve_load_smoke(
            &tmp,
            "fleet",
            &[
                "--fleet",
                "2",
                "--fleet-kill",
                "1",
                "--sessions",
                "4",
                "--steps",
                "3",
                "--clients",
                "2",
            ],
        ),
    );
    let evict = tmp.join("evict");
    fold(
        &mut emitted,
        &serve_load_smoke(
            &tmp,
            "soak",
            &[
                "--soak",
                "--sessions",
                "6",
                "--steps",
                "3",
                "--clients",
                "3",
                "--workers",
                "1",
                "--min-workers",
                "1",
                "--max-workers",
                "3",
                "--evict-after",
                "4",
                "--slo-p99-ms",
                "60000",
                "--evict-dir",
                evict.to_str().unwrap(),
            ],
        ),
    );
    fold(&mut emitted, &tuner_policy_snapshot());
    fold(&mut emitted, &memory_snapshot(&tmp));
    fold(&mut emitted, &overload_and_lifecycle_snapshot());

    let catalog_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../OPERATIONS.md");
    let catalog = parse_catalog(&catalog_path);

    // Direction 1: everything emitted is documented (name AND kind).
    let undocumented: Vec<&(Kind, String)> = emitted
        .iter()
        .filter(|(kind, name)| {
            !catalog
                .iter()
                .any(|row| row.kind == *kind && pattern_matches(&row.pattern, name))
        })
        .collect();
    if !undocumented.is_empty() {
        let rows: Vec<String> = undocumented
            .iter()
            .map(|(kind, name)| format!("| `{name}` | {} | always | TODO |", kind.as_str()))
            .collect();
        panic!(
            "{} emitted metrics missing from the OPERATIONS.md catalog:\n{}",
            undocumented.len(),
            rows.join("\n")
        );
    }

    // Direction 2: every `always` row was emitted by the reference runs.
    let stale: Vec<String> = catalog
        .iter()
        .filter(|row| {
            row.always
                && !emitted
                    .iter()
                    .any(|(kind, name)| row.kind == *kind && pattern_matches(&row.pattern, name))
        })
        .map(|row| format!("{} ({})", row.pattern, row.kind.as_str()))
        .collect();
    assert!(
        stale.is_empty(),
        "{} catalog rows are marked `always` but no reference run emitted them — \
         stale entries, or the smokes lost coverage:\n{}",
        stale.len(),
        stale.join("\n")
    );

    // The catalog must not document the same (kind, name) twice.
    for (kind, name) in &emitted {
        let rows = catalog
            .iter()
            .filter(|row| row.kind == *kind && pattern_matches(&row.pattern, name))
            .count();
        assert!(
            rows == 1,
            "{name} ({}) matches {rows} catalog rows; wildcards must not overlap literals",
            kind.as_str()
        );
    }

    std::fs::remove_dir_all(&tmp).ok();
}
