//! Acceptance tests for the fault-injection + retry/recovery pipeline:
//! every tuning policy must complete on a faulty substrate without
//! panicking, retries must stay within the policy bound, and the whole
//! injection machinery must be deterministic end to end.

use relm_app::Engine;
use relm_bo::{BayesOpt, BoConfig};
use relm_cluster::ClusterSpec;
use relm_ddpg::DdpgTuner;
use relm_faults::{FaultConfig, FaultPlan};
use relm_tune::{DefaultPolicy, RandomSearch, RecursiveRandomSearch, Tuner, TuningEnv};
use relm_workloads::wordcount;

fn faulty_engine(rate: f64) -> Engine {
    Engine::new(ClusterSpec::cluster_a())
        .with_faults(FaultPlan::new(77, FaultConfig::uniform(rate)))
}

fn all_policies(seed: u64) -> Vec<(&'static str, Box<dyn Tuner>)> {
    let short_bo = BoConfig {
        max_iterations: 4,
        min_adaptive_samples: 3,
        ..BoConfig::default()
    };
    vec![
        ("Default", Box::new(DefaultPolicy)),
        ("Random", Box::new(RandomSearch::new(5, seed))),
        ("RRS", Box::new(RecursiveRandomSearch::new(6, seed))),
        ("RelM", Box::<relm_core::RelmTuner>::default()),
        ("BO", Box::new(BayesOpt::new(seed).with_config(short_bo))),
        (
            "GBO",
            Box::new(BayesOpt::guided(seed).with_config(short_bo)),
        ),
        ("DDPG", Box::new(DdpgTuner::new(seed).with_budget(4))),
    ]
}

#[test]
fn every_policy_survives_a_ten_percent_fault_rate() {
    for (name, mut tuner) in all_policies(3) {
        let mut env = TuningEnv::new(faulty_engine(0.10), wordcount(), 11);
        let rec = tuner.tune(&mut env);
        assert!(
            rec.is_ok(),
            "{name} failed to produce a recommendation under faults: {rec:?}"
        );
        let bound = env.retry_policy().max_retries;
        for obs in env.history() {
            assert!(
                obs.retries <= bound,
                "{name}: observation used {} retries (bound {bound})",
                obs.retries
            );
        }
    }
}

#[test]
fn tuning_under_faults_is_deterministic() {
    let run = || {
        let mut env = TuningEnv::new(faulty_engine(0.10), wordcount(), 5);
        let mut tuner = RandomSearch::new(6, 2);
        let rec = tuner.tune(&mut env).expect("random search succeeds");
        let history: Vec<_> = env
            .history()
            .iter()
            .map(|o| (o.score_mins, o.retries, o.result.injected_faults))
            .collect();
        (rec.config, history)
    };
    let (cfg_a, hist_a) = run();
    let (cfg_b, hist_b) = run();
    assert_eq!(cfg_a, cfg_b);
    assert_eq!(hist_a, hist_b);
}

#[test]
fn higher_fault_rates_cost_more_stress_time() {
    let stress = |rate: f64| {
        let mut env = TuningEnv::new(faulty_engine(rate), wordcount(), 9);
        let mut tuner = RandomSearch::new(6, 4);
        tuner.tune(&mut env).expect("random search succeeds");
        env.stress_time()
    };
    let calm = stress(0.0);
    let stormy = stress(0.25);
    assert!(
        stormy > calm,
        "faults must cost time: calm {calm} vs stormy {stormy}"
    );
}
