//! Regenerates the small tables: Table 2 (test suite), Table 3 (clusters),
//! Table 4 (defaults), Table 5 (manual PageRank tuning), Table 6 (derived
//! statistics example), Table 7 (LHS bootstrap samples), and Table 9
//! (a BO run log for SVM).

use relm_app::Engine;
use relm_bo::BayesOpt;
use relm_cluster::ClusterSpec;
use relm_common::{MemoryConfig, Rng};
use relm_profile::derive_stats;
use relm_surrogate::latin_hypercube;
use relm_tune::{ConfigSpace, Tuner, TuningEnv};
use relm_workloads::{benchmark_suite, max_resource_allocation, pagerank, svm};

fn table2() {
    println!("== Table 2: test suite ==");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>6}",
        "app", "stages", "total input", "cache", "iters"
    );
    for app in benchmark_suite() {
        let input: f64 = app.stages.iter().map(|s| s.total_input().as_gb()).sum();
        println!(
            "{:<10} {:>10} {:>10.0}GB {:>9.0}GB {:>6}",
            app.name,
            app.stages.len(),
            input,
            app.cache_demand().as_gb(),
            app.iterations
        );
    }
    println!();
}

fn table3() {
    println!("== Table 3: evaluation clusters ==");
    for c in [ClusterSpec::cluster_a(), ClusterSpec::cluster_b()] {
        println!(
            "{:<10} nodes={} mem/node={} cores/node={} disk={}MB/s net={}MB/s heap-budget={}",
            c.name,
            c.nodes,
            c.mem_per_node,
            c.cores_per_node,
            c.disk_mb_per_s,
            c.net_mb_per_s,
            c.heap_budget_per_node
        );
    }
    println!();
}

fn table4() {
    println!("== Table 4: MaxResourceAllocation + framework defaults (Cluster A) ==");
    let cluster = ClusterSpec::cluster_a();
    let cfg = max_resource_allocation(&cluster, &svm());
    println!("Containers per Node              1");
    println!("Heap Size                        {}", cfg.heap);
    println!("Task Concurrency                 {}", cfg.task_concurrency);
    println!(
        "Cache + Shuffle Capacity         {:.1}",
        cfg.unified_fraction()
    );
    println!("NewRatio                         {}", cfg.new_ratio);
    println!("SurvivorRatio                    {}", cfg.survivor_ratio);
    println!();
}

fn table5() {
    println!("== Table 5: manual tuning of PageRank ==");
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = pagerank();
    let default = max_resource_allocation(engine.cluster(), &app);
    let rows: [(&str, MemoryConfig); 4] = [
        ("default", default),
        (
            "p=1",
            MemoryConfig {
                task_concurrency: 1,
                ..default
            },
        ),
        (
            "cc=0.4",
            MemoryConfig {
                cache_fraction: 0.4,
                ..default
            },
        ),
        (
            "NR=5",
            MemoryConfig {
                new_ratio: 5,
                ..default
            },
        ),
    ];
    println!(
        "{:<8} {:>3} {:>6} {:>4} {:>10} {:>6} {:>6} {:>6} {:>10}",
        "row", "p", "cache", "NR", "runtime", "H", "gc", "fails", "status"
    );
    for (label, cfg) in rows {
        let mut mins = Vec::new();
        let mut aborts = 0;
        let mut fails = 0;
        let mut h = 0.0;
        let mut gc = 0.0;
        for seed in 0..5u64 {
            let (r, _) = engine.run(&app, &cfg, 7_000 + seed * 31);
            mins.push(r.runtime_mins());
            aborts += u32::from(r.aborted);
            fails += r.container_failures;
            h = r.cache_hit_ratio;
            gc += r.gc_overhead / 5.0;
        }
        let status = if aborts > 0 {
            format!("{aborts}/5 abort")
        } else if fails > 0 {
            "flaky".into()
        } else {
            "reliable".into()
        };
        println!(
            "{:<8} {:>3} {:>6.1} {:>4} {:>9.1}m {:>6.2} {:>6.2} {:>6} {:>10}",
            label,
            cfg.task_concurrency,
            cfg.cache_fraction,
            cfg.new_ratio,
            mins.iter().sum::<f64>() / mins.len() as f64,
            h,
            gc,
            fails,
            status
        );
    }
    println!();
}

fn table6() {
    println!("== Table 6: statistics derived from a PageRank profile ==");
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = pagerank();
    let cfg = max_resource_allocation(engine.cluster(), &app);
    let (_, profile) = engine.run(&app, &cfg, 42);
    let s = derive_stats(&profile);
    println!("N (containers per node)    {}", s.containers_per_node);
    println!("M_h (heap)                 {}", s.heap);
    println!("CPU_avg                    {:.0}%", s.cpu_avg);
    println!("Disk_avg                   {:.0}%", s.disk_avg);
    println!("M_i (code overhead)        {}", s.m_i);
    println!("M_c (cache storage)        {}", s.m_c);
    println!("M_s (task shuffle)         {}", s.m_s);
    println!(
        "M_u (task unmanaged)       {}   (from full GC events: {})",
        s.m_u, s.m_u_from_full_gc
    );
    println!("P (task concurrency)       {}", s.p);
    println!("H (cache hit ratio)        {:.2}", s.h);
    println!("S (spillage fraction)      {:.2}", s.s);
    println!("paper example: N=1, M_h=4404MB, CPU=35%, M_i=115MB, M_c=2300MB, M_u=770MB, H=0.3");
    println!();
}

fn table7() {
    println!("== Table 7: LHS bootstrap samples (4 samples over 4 dimensions) ==");
    let cluster = ClusterSpec::cluster_a();
    let space = ConfigSpace::for_app(&cluster, &svm());
    let mut rng = Rng::new(7);
    println!(
        "{:>3} {:>4} {:>3} {:>9} {:>4}",
        "#", "N", "p", "capacity", "NR"
    );
    for x in latin_hypercube(4, 4, &mut rng) {
        let cfg = space.decode(&x);
        println!(
            "{:>3} {:>4} {:>3} {:>9.2} {:>4}",
            "-", cfg.containers_per_node, cfg.task_concurrency, cfg.cache_fraction, cfg.new_ratio
        );
    }
    println!();
}

fn table9() {
    println!("== Table 9: a BO run log for SVM ==");
    let engine = Engine::new(ClusterSpec::cluster_a());
    let mut env = TuningEnv::new(engine, svm(), 21);
    let mut bo = BayesOpt::new(21);
    let _ = bo.tune(&mut env).expect("BO run");
    println!(
        "{:>6} {:>3} {:>3} {:>9} {:>4} {:>9}",
        "sample", "N", "p", "capacity", "NR", "runtime"
    );
    for (i, step) in bo.trace().iter().enumerate() {
        println!(
            "{:>6} {:>3} {:>3} {:>9.2} {:>4} {:>8.1}m",
            if step.bootstrap {
                "0".to_owned()
            } else {
                format!("{}", i - 3)
            },
            step.config.containers_per_node,
            step.config.task_concurrency,
            step.config.cache_fraction.max(step.config.shuffle_fraction),
            step.config.new_ratio,
            step.score_mins,
        );
    }
    println!("(sample 0 rows are the LHS bootstrap, as in the paper)");
    println!();
}

fn main() {
    table2();
    table3();
    table4();
    table5();
    table6();
    table7();
    table9();
}
