//! Figure 25: accuracy of the surrogate model on a validation set
//! (~10% of the exhaustive grid) as training samples accumulate, comparing
//! BO against GBO. GBO's white-box features (q1..q3) let it fit a usable
//! model several samples earlier.

use relm_app::Engine;
use relm_bo::BayesOpt;
use relm_cluster::ClusterSpec;
use relm_common::stats;
use relm_core::QModel;
use relm_experiments::{exhaustive_baseline, long_bo};
use relm_profile::derive_stats;
use relm_surrogate::Gp;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::{max_resource_allocation, svm};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = svm();

    // Validation set: every 8th *successful* grid observation — aborted
    // runs carry the 2x-worst penalty, which is an exploration device, not
    // a regression target.
    let baseline = exhaustive_baseline(&engine, &app, 42);
    let validation: Vec<_> = baseline
        .observations
        .iter()
        .filter(|o| !o.result.aborted)
        .step_by(8)
        .collect();
    println!(
        "Figure 25: surrogate R^2 on a {}-point validation set (SVM)\n",
        validation.len()
    );

    // A profile for the Q model (GBO's white-box features).
    let default = max_resource_allocation(engine.cluster(), &app);
    let (_, profile) = engine.run(&app, &default, 77);
    let qmodel = QModel::new(derive_stats(&profile), relm_core::DEFAULT_SAFETY);

    println!("{:>8} {:>10} {:>10}", "samples", "BO R^2", "GBO R^2");

    // Long BO runs provide sample sequences; we refit surrogates on growing
    // prefixes, with and without the Q features, averaging over 3 runs.
    let seeds = [55u64, 56, 57];
    let mut sample_sets = Vec::new();
    let mut space_opt = None;
    for &seed in &seeds {
        let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
        let _ = long_bo(seed, false).tune(&mut env);
        let space = env.space().clone();
        let samples: Vec<(Vec<f64>, f64)> = env
            .history()
            .iter()
            .map(|o| (space.encode(&o.config).to_vec(), o.score_mins))
            .collect();
        sample_sets.push(samples);
        space_opt = Some(space);
    }
    let space = space_opt.expect("at least one run");

    for k in [4usize, 6, 8, 10, 12, 14, 16, 18, 20] {
        let mut bo_r2 = Vec::new();
        let mut gbo_r2 = Vec::new();
        for samples in &sample_sets {
            if k > samples.len() {
                continue;
            }
            let ys: Vec<f64> = samples[..k].iter().map(|(_, y)| *y).collect();
            let r2 = |xs: Vec<Vec<f64>>, guided: bool| -> f64 {
                let Ok(gp) = Gp::fit(xs, &ys, 9) else {
                    return f64::NAN;
                };
                let mut observed = Vec::new();
                let mut predicted = Vec::new();
                for obs in &validation {
                    let x = space.encode(&obs.config).to_vec();
                    let f = if guided {
                        BayesOpt::features(&space, Some(&qmodel), &x)
                    } else {
                        x
                    };
                    observed.push(obs.score_mins);
                    predicted.push(gp.predict(&f).0);
                }
                stats::r_squared(&observed, &predicted)
            };
            bo_r2.push(r2(
                samples[..k].iter().map(|(x, _)| x.clone()).collect(),
                false,
            ));
            gbo_r2.push(r2(
                samples[..k]
                    .iter()
                    .map(|(x, _)| BayesOpt::features(&space, Some(&qmodel), x))
                    .collect(),
                true,
            ));
        }
        println!(
            "{:>8} {:>10.2} {:>10.2}",
            k,
            stats::mean(&bo_r2),
            stats::mean(&gbo_r2)
        );
    }

    let samples = &sample_sets[0];
    println!("\npaper shape: BO's model is poor until ~10 samples; GBO fits a decent");
    println!("model much earlier thanks to the q1/q2 features, which correlate with the");
    println!("objective more strongly than any raw knob.");

    // Feature-correlation analysis (§6.5's Pearson study).
    let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
    let names = [
        "containers",
        "concurrency",
        "capacity",
        "new_ratio",
        "q1",
        "q2",
        "q3",
    ];
    println!("\nPearson correlation of each surrogate feature with the objective:");
    for (d, name) in names.iter().enumerate() {
        let xs: Vec<f64> = samples
            .iter()
            .map(|(x, _)| BayesOpt::features(&space, Some(&qmodel), x)[d])
            .collect();
        println!("  {:<12} {:+.2}", name, stats::pearson(&xs, &ys));
    }
}
