//! Figure 27: generality of the DDPG model. A model trained on Cluster A is
//! re-used on Cluster B with only 5 test samples (DDPG_A^B) and compared to
//! a model trained on Cluster B from scratch (DDPG_B^B); a second experiment
//! changes the SVM input scale on Cluster B.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_ddpg::DdpgTuner;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::{svm, svm_scaled};

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn main() {
    println!("Figure 27: DDPG adaptability to environment changes (SVM, mean of 3 seeds)\n");
    let engine_a = Engine::new(ClusterSpec::cluster_a());
    let engine_b = Engine::new(ClusterSpec::cluster_b());

    let seeds = [1u64, 2, 3];
    let mut full = Vec::new();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for &seed in &seeds {
        // DDPG trained from scratch on Cluster B — once with a full budget
        // and once with only the 5 samples the transferred model gets.
        let mut scratch = DdpgTuner::new(seed).with_budget(12);
        let mut env_b = TuningEnv::new(engine_b.clone(), svm(), seed);
        let rec = scratch.tune(&mut env_b).expect("scratch tuning");
        full.push(
            engine_b
                .run(&svm(), &rec.config, 600 + seed)
                .0
                .runtime_mins(),
        );

        let mut cold5 = DdpgTuner::new(seed).with_budget(5);
        let mut env_b5 = TuningEnv::new(engine_b.clone(), svm(), seed);
        let rec = cold5.tune(&mut env_b5).expect("cold 5-sample tuning");
        cold.push(
            engine_b
                .run(&svm(), &rec.config, 600 + seed)
                .0
                .runtime_mins(),
        );

        // DDPG pre-trained on Cluster A, then 5 samples on Cluster B.
        let mut transfer = DdpgTuner::new(seed).with_budget(20);
        let mut env_a = TuningEnv::new(engine_a.clone(), svm(), seed + 50);
        let _ = transfer.tune(&mut env_a).expect("pre-training on A");
        let mut transfer = transfer.with_budget(5);
        let mut env_b2 = TuningEnv::new(engine_b.clone(), svm(), seed + 100);
        let rec = transfer.tune(&mut env_b2).expect("transfer tuning");
        warm.push(
            engine_b
                .run(&svm(), &rec.config, 600 + seed)
                .0
                .runtime_mins(),
        );
    }

    println!("cross-cluster (train A -> test B):");
    println!(
        "  DDPG_B^B (full budget): {:>5.1} min after 13 samples on B",
        mean(&full)
    );
    println!(
        "  DDPG_B^B (5 samples):   {:>5.1} min, cold start",
        mean(&cold)
    );
    println!(
        "  DDPG_A^B (5 samples):   {:>5.1} min, pre-trained on A",
        mean(&warm)
    );

    // Data-scale change on Cluster B: s1 -> s2.
    let big = svm_scaled(2.0);
    let mut scratch2 = DdpgTuner::new(4).with_budget(12);
    let mut env_s2 = TuningEnv::new(engine_b.clone(), big.clone(), 4);
    let rec_s2_scratch = scratch2.tune(&mut env_s2).expect("scratch s2");
    let (run_s2_scratch, _) = engine_b.run(&big, &rec_s2_scratch.config, 601);

    let mut transfer2 = DdpgTuner::new(4).with_budget(12);
    let mut env_s1 = TuningEnv::new(engine_b.clone(), svm(), 5);
    let _ = transfer2.tune(&mut env_s1).expect("pre-training on s1");
    let mut transfer2 = transfer2.with_budget(5);
    let mut env_s2b = TuningEnv::new(engine_b.clone(), big.clone(), 6);
    let rec_s2_transfer = transfer2.tune(&mut env_s2b).expect("transfer s2");
    let (run_s2_transfer, _) = engine_b.run(&big, &rec_s2_transfer.config, 601);

    println!("\ndata-scale change on Cluster B (s1 -> s2):");
    println!(
        "  scratch:  {:>5.1} min after {:>2} samples",
        run_s2_scratch.runtime_mins(),
        rec_s2_scratch.evaluations
    );
    println!(
        "  transfer: {:>5.1} min after {:>2} samples",
        run_s2_transfer.runtime_mins(),
        rec_s2_transfer.evaluations
    );
    println!("\npaper shape: the pre-trained model reaches comparable quality with far");
    println!("fewer test samples — reward-feedback models adapt where saved regression");
    println!("models cannot.");
}
