//! Figure 10: interaction between NewRatio and Shuffle Capacity for
//! SortByKey. Raising NewRatio shrinks Eden, so shuffle buffers cross the
//! half-Eden threshold sooner and every spill drags a full collection
//! behind it (Observation 7).

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_experiments::{mean_runtime_mins, repeat_runs};
use relm_workloads::{max_resource_allocation, sortbykey};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = sortbykey();
    let default = max_resource_allocation(engine.cluster(), &app);

    println!("Figure 10: NewRatio x ShuffleCapacity for SortByKey (runtime / GC overhead)\n");
    print!("{:>9}", "shuffle");
    for nr in [1u32, 2, 3] {
        print!(" {:>16}", format!("NR={nr}"));
    }
    println!();
    for sc in [0.05, 0.1, 0.15, 0.2, 0.25, 0.3] {
        print!("{sc:>9.2}");
        for nr in [1u32, 2, 3] {
            let cfg = MemoryConfig {
                shuffle_fraction: sc,
                cache_fraction: 0.0,
                new_ratio: nr,
                ..default
            };
            let runs = repeat_runs(&engine, &app, &cfg, 3, (sc * 1000.0) as u64 + nr as u64);
            let ok: Vec<_> = runs.iter().filter(|r| !r.aborted).cloned().collect();
            if ok.is_empty() {
                print!(" {:>16}", "FAILED");
                continue;
            }
            let gc = ok.iter().map(|r| r.gc_overhead).sum::<f64>() / ok.len() as f64;
            print!(" {:>10.2}m/{:<4.2}", mean_runtime_mins(&ok), gc);
        }
        println!();
    }
    println!("\npaper shape: GC overheads grow with both Shuffle Capacity and NewRatio;");
    println!("a good heuristic is to keep shuffle memory under 50% of Eden.");
}
