//! Calibration sweep: prints the Section-3 sweeps so the simulator's shapes
//! can be checked against the paper during development. Not one of the
//! figure binaries, but kept as a diagnostic.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_workloads::{benchmark_suite, max_resource_allocation};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let suite = benchmark_suite();

    println!("== Containers per node sweep (Figure 4) ==");
    println!(
        "{:<10} {:>2} {:>9} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>6}",
        "app", "N", "runtime", "norm", "heap", "cpu", "disk", "gc%", "fail", "abort"
    );
    for app in &suite {
        let default = max_resource_allocation(engine.cluster(), app);
        let mut base = f64::NAN;
        for n in 1..=4u32 {
            let mut cfg = default;
            cfg.containers_per_node = n;
            cfg.heap = engine.cluster().heap_for(n);
            let (r, _) = engine.run(app, &cfg, 42);
            if n == 1 {
                base = r.runtime_mins();
            }
            println!(
                "{:<10} {:>2} {:>8.1}m {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>5.2} {:>5} {:>6}",
                app.name,
                n,
                r.runtime_mins(),
                r.runtime_mins() / base,
                r.max_heap_util,
                r.avg_cpu_util,
                r.avg_disk_util,
                r.gc_overhead,
                r.container_failures,
                r.aborted
            );
        }
    }

    println!("\n== Task concurrency sweep (Figure 6) ==");
    for app in &suite {
        let default = max_resource_allocation(engine.cluster(), app);
        let mut base = f64::NAN;
        for p in [1u32, 2, 4, 6, 8] {
            let mut cfg = default;
            cfg.task_concurrency = p;
            let (r, _) = engine.run(app, &cfg, 42);
            if p == 1 {
                base = r.runtime_mins();
            }
            println!(
                "{:<10} p={} {:>8.1}m {:>6.2} heap={:.2} cpu={:.2} disk={:.2} gc={:.2} fail={} abort={}",
                app.name, p, r.runtime_mins(), r.runtime_mins() / base,
                r.max_heap_util, r.avg_cpu_util, r.avg_disk_util, r.gc_overhead,
                r.container_failures, r.aborted
            );
        }
    }

    println!("\n== Cache/shuffle capacity sweep (Figure 7) ==");
    for app in &suite {
        let default = max_resource_allocation(engine.cluster(), app);
        let cache_app = app.uses_cache();
        for f in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] {
            let mut cfg = default;
            if cache_app {
                cfg.cache_fraction = f;
                cfg.shuffle_fraction = 0.0;
            } else {
                cfg.shuffle_fraction = f;
                cfg.cache_fraction = 0.0;
            }
            if app.name == "PageRank" {
                cfg.task_concurrency = 1; // §3.3 note
            }
            let (r, _) = engine.run(app, &cfg, 42);
            println!(
                "{:<10} {}={:.2} {:>7.1}m heap={:.2} gc={:.2} H={:.2} S={:.2} fail={} abort={}",
                app.name,
                if cache_app { "cc" } else { "sc" },
                f,
                r.runtime_mins(),
                r.max_heap_util,
                r.gc_overhead,
                r.cache_hit_ratio,
                r.spill_fraction,
                r.container_failures,
                r.aborted
            );
        }
    }

    println!("\n== NewRatio x CacheCapacity for K-means (Figure 8) ==");
    let km = relm_workloads::kmeans();
    for cc in [0.4, 0.5, 0.6, 0.7, 0.8] {
        for nr in [1u32, 2, 3, 5, 7] {
            let cfg = MemoryConfig {
                containers_per_node: 1,
                heap: engine.cluster().heap_for(1),
                task_concurrency: 2,
                cache_fraction: cc,
                shuffle_fraction: 0.0,
                new_ratio: nr,
                survivor_ratio: 8,
            };
            let (r, _) = engine.run(&km, &cfg, 42);
            print!(
                "cc={cc:.1} NR={nr}: {:>5.1}m/gc={:.2}  ",
                r.runtime_mins(),
                r.gc_overhead
            );
        }
        println!();
    }

    println!("\n== NewRatio x ShuffleCapacity for SortByKey (Figure 10) ==");
    let sbk = relm_workloads::sortbykey();
    for sc in [0.05, 0.1, 0.2, 0.3, 0.5, 0.7] {
        for nr in [1u32, 2, 3] {
            let cfg = MemoryConfig {
                containers_per_node: 1,
                heap: engine.cluster().heap_for(1),
                task_concurrency: 2,
                cache_fraction: 0.0,
                shuffle_fraction: sc,
                new_ratio: nr,
                survivor_ratio: 8,
            };
            let (r, _) = engine.run(&sbk, &cfg, 42);
            print!(
                "sc={sc:.2} NR={nr}: {:>5.1}m/gc={:.2}/S={:.2}  ",
                r.runtime_mins(),
                r.gc_overhead,
                r.spill_fraction
            );
        }
        println!();
    }

    println!("\n== PageRank manual tuning (Table 5) ==");
    let pr = relm_workloads::pagerank();
    let rows = [
        (2u32, 0.6, 2u32, "default"),
        (1, 0.6, 2, "p=1"),
        (2, 0.4, 2, "cc=0.4"),
        (2, 0.6, 5, "NR=5"),
    ];
    for (p, cc, nr, label) in rows {
        let cfg = MemoryConfig {
            containers_per_node: 1,
            heap: engine.cluster().heap_for(1),
            task_concurrency: p,
            cache_fraction: cc,
            shuffle_fraction: 0.0,
            new_ratio: nr,
            survivor_ratio: 8,
        };
        for seed in [1u64, 2, 3] {
            let (r, _) = engine.run(&pr, &cfg, seed);
            println!(
                "{label:<8} seed={seed} {:>6.1}m H={:.2} gc={:.2} fail={} (oom={} rss={}) abort={}",
                r.runtime_mins(),
                r.cache_hit_ratio,
                r.gc_overhead,
                r.container_failures,
                r.oom_failures,
                r.rss_kills,
                r.aborted
            );
        }
    }
}
