//! Ablation of GBO's white-box features: how much of the guidance comes
//! from each of q1 (heap occupancy), q2 (long-term memory efficiency), and
//! q3 (shuffle efficiency)? §5.2 notes the feature set "could be expanded"
//! provided the features stay independent and ranked by importance — this
//! binary measures that importance by surrogate accuracy.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::stats;
use relm_core::QModel;
use relm_experiments::{exhaustive_baseline, long_bo};
use relm_profile::derive_stats;
use relm_surrogate::Gp;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::{max_resource_allocation, sortbykey, svm};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("GBO feature ablation: validation R^2 of the surrogate at 8 samples\n");
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "none", "+q1", "+q2", "+q3", "+all"
    );
    for app in [svm(), sortbykey()] {
        let baseline = exhaustive_baseline(&engine, &app, 42);
        let validation: Vec<_> = baseline
            .observations
            .iter()
            .filter(|o| !o.result.aborted)
            .step_by(8)
            .collect();

        let default = max_resource_allocation(engine.cluster(), &app);
        let (_, profile) = engine.run(&app, &default, 77);
        let qmodel = QModel::new(derive_stats(&profile), relm_core::DEFAULT_SAFETY);

        // Sample sequences from three BO runs.
        let mut r2_sets: Vec<Vec<f64>> = vec![Vec::new(); 5];
        for seed in [60u64, 61, 62] {
            let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
            let _ = long_bo(seed, false).tune(&mut env);
            let space = env.space().clone();
            let k = 8.min(env.evaluations());
            let raw: Vec<(Vec<f64>, f64)> = env.history()[..k]
                .iter()
                .map(|o| (space.encode(&o.config).to_vec(), o.score_mins))
                .collect();
            let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();

            // Feature subsets: none, q1 only, q2 only, q3 only -> grouped as
            // none/+q1/+q2/+q3/+all.
            let subsets: [&[usize]; 5] = [&[], &[0], &[1], &[2], &[0, 1, 2]];
            for (si, subset) in subsets.iter().enumerate() {
                let featurize = |x: &[f64]| -> Vec<f64> {
                    let mut f = x.to_vec();
                    let q = qmodel.q(&space.decode(x));
                    for &qi in subset.iter() {
                        f.push(q[qi]);
                    }
                    f
                };
                let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| featurize(x)).collect();
                let Ok(gp) = Gp::fit(xs, &ys, seed) else {
                    continue;
                };
                let mut observed = Vec::new();
                let mut predicted = Vec::new();
                for obs in &validation {
                    let x = space.encode(&obs.config);
                    observed.push(obs.score_mins);
                    predicted.push(gp.predict(&featurize(&x)).0);
                }
                r2_sets[si].push(stats::r_squared(&observed, &predicted));
            }
        }
        println!(
            "{:<10} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            app.name,
            stats::mean(&r2_sets[0]),
            stats::mean(&r2_sets[1]),
            stats::mean(&r2_sets[2]),
            stats::mean(&r2_sets[3]),
            stats::mean(&r2_sets[4]),
        );
    }
    println!("\nexpected: the memory-occupancy features (q1, q2) carry most of the");
    println!("guidance for cache applications; q3 matters for the shuffle application.");
}
