//! §6.6's BO model-reuse discussion: replicate OtterTune's strategy by
//! matching the present workload to a previously tuned one via the Table-6
//! statistics and warm-starting the Gaussian process with its observations.
//! Also demonstrates the caveat: "the saved regression models cannot be
//! adapted to the changes in hardware configuration and input data."

use relm_app::Engine;
use relm_bo::{BayesOpt, BoConfig, ModelRepository};
use relm_cluster::ClusterSpec;
use relm_profile::derive_stats;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::{kmeans, max_resource_allocation, svm, svm_scaled};

fn short_bo(seed: u64, warm: Option<Vec<(Vec<f64>, f64)>>) -> BayesOpt {
    let bo = BayesOpt::new(seed).with_config(BoConfig {
        min_adaptive_samples: 4,
        max_iterations: 6,
        ..BoConfig::default()
    });
    match warm {
        Some(w) => bo.with_warm_start(w),
        None => bo,
    }
}

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let mut repo = ModelRepository::new();

    // 1. Tune K-means and SVM fully; store their models.
    for app in [kmeans(), svm()] {
        let default = max_resource_allocation(engine.cluster(), &app);
        let (_, profile) = engine.run(&app, &default, 42);
        let stats = derive_stats(&profile);
        let mut env = TuningEnv::new(engine.clone(), app.clone(), 7);
        let _ = BayesOpt::new(7).tune(&mut env).expect("tuning");
        let space = env.space().clone();
        let observations = env
            .history()
            .iter()
            .map(|o| (space.encode(&o.config).to_vec(), o.score_mins))
            .collect();
        repo.store(&app.name, &stats, observations);
    }
    println!("repository holds {} tuned workloads\n", repo.len());

    // 2. A "new" workload arrives: SVM at a slightly different scale.
    // Fingerprint it from one default run and map it to the repository.
    let new_app = svm_scaled(1.2);
    let default = max_resource_allocation(engine.cluster(), &new_app);
    let (_, profile) = engine.run(&new_app, &default, 77);
    let stats = derive_stats(&profile);
    let mapped = repo.nearest(&stats).expect("repository non-empty");
    println!(
        "new workload (SVM @1.2x) mapped to stored workload: {}",
        mapped.workload
    );

    // 3. Warm-started BO vs cold BO under the same small budget.
    let mut cold_env = TuningEnv::new(engine.clone(), new_app.clone(), 31);
    let cold = short_bo(31, None).tune(&mut cold_env).expect("cold BO");
    let (cold_run, _) = engine.run(&new_app, &cold.config, 900);

    let mut warm_env = TuningEnv::new(engine.clone(), new_app.clone(), 31);
    let warm = short_bo(31, Some(mapped.observations.clone()))
        .tune(&mut warm_env)
        .expect("warm BO");
    let (warm_run, _) = engine.run(&new_app, &warm.config, 900);

    println!(
        "  cold BO:  {:>5.1} min after {:>2} stress tests",
        cold_run.runtime_mins(),
        cold.evaluations
    );
    println!(
        "  warm BO:  {:>5.1} min after {:>2} stress tests (reused model)",
        warm_run.runtime_mins(),
        warm.evaluations
    );

    // 4. The caveat: reuse the same SVM model on Cluster B — a hardware
    // change the regression model cannot express.
    let engine_b = Engine::new(ClusterSpec::cluster_b());
    let mut wrong_env = TuningEnv::new(engine_b.clone(), svm(), 33);
    let wrong = short_bo(33, Some(mapped.observations.clone()))
        .tune(&mut wrong_env)
        .expect("cross-hardware BO");
    let (wrong_run, _) = engine_b.run(&svm(), &wrong.config, 901);
    let mut fresh_env = TuningEnv::new(engine_b.clone(), svm(), 33);
    let fresh = short_bo(33, None).tune(&mut fresh_env).expect("fresh BO");
    let (fresh_run, _) = engine_b.run(&svm(), &fresh.config, 901);
    println!("\ncross-hardware reuse (Cluster A model on Cluster B):");
    println!(
        "  reused model: {:>5.1} min   fresh model: {:>5.1} min",
        wrong_run.runtime_mins(),
        fresh_run.runtime_mins()
    );
    println!("\npaper shape: statistics-based mapping picks the right prior workload and");
    println!("speeds same-cluster tuning; hardware changes defeat saved regression models");
    println!("(which is DDPG's comparative advantage, Figure 27).");
}
