//! Warm-start study: how many evaluations each tuner family needs to get
//! within 5% of its cold run's best score, cold versus warm-started from
//! the cross-session memory store (`relm-memory`).
//!
//! ```text
//! fig_warmstart              # full study, writes BENCH_warmstart.json
//! fig_warmstart --smoke      # serve-based end-to-end smoke for check.sh
//! ```
//!
//! Full mode builds a store from *source* tuning sessions, round-trips it
//! through disk (asserting zero skipped records), then tunes a *target*
//! session cold and warm for each family:
//!
//! * **BO** — the prior's similarity-allocated observations replace the
//!   LHS bootstrap (`BayesOpt::with_memory_prior`).
//! * **DDPG** — the prior replays into transitions that pre-fill the
//!   experience buffer (`transitions_from_prior` + `seed_replay`).
//! * **RelM** — the prior's similarity-weighted Table-6 statistics feed
//!   `recommend_from_stats`, skipping the profiling runs entirely.
//!
//! Retrieval mirrors the serving layer: a same-workload pair resolves the
//! query fingerprint from the store by label (no extra evaluation); a
//! cross-workload pair must first profile the default configuration (one
//! evaluation, counted against the warm run) to fingerprint the target.
//!
//! The numbers in `BENCH_warmstart.json` are evaluation *counts* of the
//! deterministic simulation — no wall clock — so the file is reproducible
//! byte-for-byte and the cold baselines it carries are frozen alongside
//! the warm results they gate.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_core::RelmTuner;
use relm_ddpg::{transitions_from_prior, DdpgTuner};
use relm_memory::{
    build_prior, normalize_label, Fingerprint, MemoryStore, PriorBundle, SessionDigest,
    DEFAULT_PRIOR_CAP,
};
use relm_obs::Obs;
use relm_serve::{Request, Response, ServeConfig, Service, SessionSpec};
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::{kmeans, max_resource_allocation, sortbykey};
use serde_json::{Map, Number, Value};
use std::path::PathBuf;

const BO_BUDGET: usize = 20;
const DDPG_BUDGET: usize = 24;
const SOURCE_SEEDS: [u64; 2] = [21, 22];
const TARGET_SEED: u64 = 7;
const RETRIEVE_K: usize = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}

/// First 1-based evaluation index at or under `threshold`, if reached.
fn evals_to(env: &TuningEnv, threshold: f64) -> Option<usize> {
    env.history()
        .iter()
        .position(|o| o.score_mins <= threshold)
        .map(|i| i + 1)
}

fn best(env: &TuningEnv) -> f64 {
    env.history()
        .iter()
        .map(|o| o.score_mins)
        .fold(f64::INFINITY, f64::min)
}

/// A long-budget BO with no early stop: the cold trajectory is the frozen
/// baseline, so it must not depend on the stopping rule.
fn bo(seed: u64) -> relm_bo::BayesOpt {
    relm_bo::BayesOpt::new(seed).with_config(relm_bo::BoConfig {
        max_iterations: BO_BUDGET,
        min_adaptive_samples: BO_BUDGET,
        ..relm_bo::BoConfig::default()
    })
}

/// Builds a memory store from BO source sessions on `app`, then proves
/// the persistence round trip (save → load, zero skipped records).
fn build_source_store(engine: &Engine, app: &relm_app::AppSpec) -> MemoryStore {
    let mut store = MemoryStore::new();
    for seed in SOURCE_SEEDS {
        let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
        let _ = bo(seed).tune(&mut env);
        store.ingest(SessionDigest::from_env(&app.name, seed, &env));
    }
    let path = std::env::temp_dir().join(format!(
        "relm-warmstart-{}-{}.jsonl",
        std::process::id(),
        normalize_label(&app.name)
    ));
    store.save(&path).expect("store saves");
    let loaded = MemoryStore::load(&path, Obs::disabled()).expect("store loads");
    assert_eq!(loaded.skipped(), 0, "round trip must skip nothing");
    assert_eq!(loaded.len(), store.len());
    std::fs::remove_file(&path).ok();
    loaded
}

/// Retrieves the warm-start prior the way the serving layer would: by
/// stored label when the store has seen the workload, else by profiling
/// the default configuration (one evaluation, charged to `env`).
fn retrieve_prior(store: &MemoryStore, env: &mut TuningEnv) -> PriorBundle {
    let label = normalize_label(&env.app().name);
    let query = match store.fingerprint_for_workload(&label) {
        Some(query) => Some(query),
        None => {
            let default = max_resource_allocation(env.engine().cluster(), env.app());
            env.evaluate(&default);
            env.mean_stats().map(|s| Fingerprint::from_stats(&s))
        }
    };
    match query {
        Some(query) => build_prior(
            &store.retrieve(&query, RETRIEVE_K),
            env.space(),
            DEFAULT_PRIOR_CAP,
        ),
        None => PriorBundle::empty(),
    }
}

struct PairResult {
    cold_evals: usize,
    warm_evals: Option<usize>,
    cold_best: f64,
    warm_best: f64,
}

impl PairResult {
    fn ratio(&self) -> Option<f64> {
        self.warm_evals.map(|w| w as f64 / self.cold_evals as f64)
    }
}

/// Cold-vs-warm for one tuner family on one (store, target) pair. `cold`
/// and `warm` drive their own environments; the threshold is 5% above the
/// *cold* run's best — the warm run is measured against the frozen
/// baseline, never against itself.
fn run_pair(
    engine: &Engine,
    app: &relm_app::AppSpec,
    store: &MemoryStore,
    seed: u64,
    cold: impl FnOnce(&mut TuningEnv),
    warm: impl FnOnce(&mut TuningEnv, &PriorBundle),
) -> PairResult {
    let mut cold_env = TuningEnv::new(engine.clone(), app.clone(), seed);
    cold(&mut cold_env);
    let cold_best = best(&cold_env);
    let threshold = cold_best * 1.05;
    let cold_evals = evals_to(&cold_env, threshold).expect("cold run reaches its own best");

    let mut warm_env = TuningEnv::new(engine.clone(), app.clone(), seed);
    let prior = retrieve_prior(store, &mut warm_env);
    warm(&mut warm_env, &prior);
    PairResult {
        cold_evals,
        warm_evals: evals_to(&warm_env, threshold),
        cold_best,
        warm_best: best(&warm_env),
    }
}

fn run_family(
    engine: &Engine,
    app: &relm_app::AppSpec,
    store: &MemoryStore,
    family: &str,
    seed: u64,
) -> PairResult {
    match family {
        "bo" => run_pair(
            engine,
            app,
            store,
            seed,
            |env| {
                let _ = bo(seed).tune(env);
            },
            |env, prior| {
                let _ = bo(seed).with_memory_prior(prior).tune(env);
            },
        ),
        "ddpg" => run_pair(
            engine,
            app,
            store,
            seed,
            |env| {
                let _ = DdpgTuner::new(seed).with_budget(DDPG_BUDGET).tune(env);
            },
            |env, prior| {
                let mut tuner = DdpgTuner::new(seed).with_budget(DDPG_BUDGET);
                tuner.seed_replay(transitions_from_prior(prior, env.space()));
                let _ = tuner.tune(env);
            },
        ),
        "relm" => run_pair(
            engine,
            app,
            store,
            seed,
            |env| {
                // Cold RelM profiles, recommends, and pays to verify the
                // recommendation — its evaluations-to-threshold.
                let rec = RelmTuner::default().tune(env).expect("relm recommends");
                env.evaluate(&rec.config);
            },
            |env, prior| {
                // Warm RelM recommends straight from the prior's
                // similarity-weighted statistics: no profiling run at all
                // on a same-workload hit.
                let cluster = env.engine().cluster().clone();
                match prior.stats {
                    Some(stats) => {
                        let config = RelmTuner::default()
                            .recommend_from_stats(&cluster, stats)
                            .expect("relm recommends from prior");
                        env.evaluate(&config);
                    }
                    None => {
                        let rec = RelmTuner::default().tune(env).expect("relm recommends");
                        env.evaluate(&rec.config);
                    }
                }
            },
        ),
        other => panic!("unknown family {other}"),
    }
}

fn full() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let pairs: [(&str, relm_app::AppSpec, relm_app::AppSpec); 2] = [
        ("sortbykey->sortbykey", sortbykey(), sortbykey()),
        ("kmeans->sortbykey", kmeans(), sortbykey()),
    ];
    let families = ["bo", "ddpg", "relm"];

    println!("Warm-start study: evaluations to within 5% of the cold run's best\n");
    println!(
        "{:<16} {:<6} {:>10} {:>10} {:>7} {:>12} {:>12}",
        "pair", "tuner", "cold", "warm", "ratio", "cold_best", "warm_best"
    );

    let mut out = Map::new();
    out.insert(
        "description".to_string(),
        Value::String(
            "Evaluations each tuner needs to reach within 5% of its cold run's best \
             score, cold vs warm-started from the relm-memory store. Warm counts \
             include any probe evaluation spent fingerprinting the target. Cold \
             columns are the frozen baselines."
                .into(),
        ),
    );
    out.insert(
        "units".to_string(),
        Value::String("evaluations (deterministic simulation)".into()),
    );
    out.insert(
        "source_seeds".to_string(),
        Value::Array(
            SOURCE_SEEDS
                .iter()
                .map(|s| Value::Number(Number::U64(*s)))
                .collect(),
        ),
    );
    out.insert(
        "target_seed".to_string(),
        Value::Number(Number::U64(TARGET_SEED)),
    );

    let mut pair_values = Map::new();
    for (pair_name, source, target) in pairs {
        let store = build_source_store(&engine, &source);
        let mut family_values = Map::new();
        for family in families {
            let r = run_family(&engine, &target, &store, family, TARGET_SEED);
            let warm_str = r
                .warm_evals
                .map(|w| w.to_string())
                .unwrap_or_else(|| "-".into());
            let ratio_str = r
                .ratio()
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<16} {:<6} {:>10} {:>10} {:>7} {:>12.3} {:>12.3}",
                pair_name, family, r.cold_evals, warm_str, ratio_str, r.cold_best, r.warm_best
            );
            family_values.insert(
                format!("{family}_cold_evals"),
                Value::Number(Number::U64(r.cold_evals as u64)),
            );
            family_values.insert(
                format!("{family}_warm_evals"),
                match r.warm_evals {
                    Some(w) => Value::Number(Number::U64(w as u64)),
                    None => Value::Null,
                },
            );
            family_values.insert(
                format!("{family}_ratio"),
                match r.ratio() {
                    Some(x) => Value::Number(Number::F64((x * 1000.0).round() / 1000.0)),
                    None => Value::Null,
                },
            );

            if pair_name == "sortbykey->sortbykey" && (family == "bo" || family == "relm") {
                let ratio = r.ratio().expect("warm run reaches the cold threshold");
                assert!(
                    ratio <= 0.5,
                    "{family} warm start must halve the evaluations on {pair_name}, got {ratio:.2}"
                );
            }
        }
        pair_values.insert(pair_name.to_string(), Value::Object(family_values));
    }
    out.insert("pairs".to_string(), Value::Object(pair_values));
    out.insert(
        "note".to_string(),
        Value::String(
            "Same-workload pairs retrieve by stored label (no probe); the cross pair \
             pays one probe evaluation to fingerprint the target. RelM's warm path \
             recommends from the prior's similarity-weighted Table-6 statistics and \
             skips profiling entirely."
                .into(),
        ),
    );

    // `CARGO_MANIFEST_DIR` is crates/experiments; the file lives at the root.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = root.join("BENCH_warmstart.json");
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("bench serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_warmstart.json");
    println!("\nwrote {}", path.display());
}

/// Serve-based smoke for `scripts/check.sh`: a cold session builds the
/// store through `Drain`, a warm session on a fresh seed retrieves from
/// it and must reach the cold threshold in fewer evaluations. Prints one
/// deterministic counter line (no wall clock, no paths) so the caller can
/// diff two runs byte-for-byte.
fn smoke() {
    let store =
        std::env::temp_dir().join(format!("relm-warmstart-smoke-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&store);

    // Phase A: cold session, drained into the store.
    let obs_a = Obs::enabled();
    let cold_history = {
        let service = Service::start(
            ServeConfig {
                workers: 2,
                memory_store: Some(store.clone()),
                ..ServeConfig::default()
            },
            obs_a.clone(),
        );
        let session = match service.handle(&Request::CreateSession {
            spec: SessionSpec::named("SortByKey", 42),
        }) {
            Response::SessionCreated { session } => session,
            other => panic!("create failed: {other:?}"),
        };
        service.handle(&Request::StepAuto {
            session: session.clone(),
            evals: 4,
        });
        service.handle(&Request::Join {
            session: session.clone(),
        });
        match service.handle(&Request::StepGuided {
            session: session.clone(),
            evals: 4,
        }) {
            Response::Accepted { .. } => {}
            other => panic!("cold guided step failed: {other:?}"),
        }
        let history = match service.handle(&Request::Result { session }) {
            Response::ResultReady { history, .. } => history,
            other => panic!("result failed: {other:?}"),
        };
        match service.handle(&Request::Drain) {
            Response::Drained { sessions, .. } => assert_eq!(sessions, 1),
            other => panic!("drain failed: {other:?}"),
        }
        history
    };

    // Phase B: warm session on a fresh seed, guided from evaluation zero.
    let obs_b = Obs::enabled();
    let warm_history = {
        let service = Service::start(
            ServeConfig {
                workers: 2,
                memory_store: Some(store.clone()),
                ..ServeConfig::default()
            },
            obs_b.clone(),
        );
        let session = match service.handle(&Request::CreateSession {
            spec: SessionSpec::named("SortByKey", 43).with_warm_start(),
        }) {
            Response::SessionCreated { session } => session,
            other => panic!("create failed: {other:?}"),
        };
        match service.handle(&Request::StepGuided {
            session: session.clone(),
            evals: 4,
        }) {
            Response::Accepted { .. } => {}
            other => panic!("warm guided step failed: {other:?}"),
        }
        match service.handle(&Request::Result { session }) {
            Response::ResultReady { history, .. } => history,
            other => panic!("result failed: {other:?}"),
        }
    };
    std::fs::remove_file(&store).ok();

    let cold_best = cold_history
        .iter()
        .map(|o| o.score_mins)
        .fold(f64::INFINITY, f64::min);
    let threshold = cold_best * 1.05;
    let cold_evals = cold_history
        .iter()
        .position(|o| o.score_mins <= threshold)
        .expect("cold run reaches its own best")
        + 1;
    let warm_evals = warm_history
        .iter()
        .position(|o| o.score_mins <= threshold)
        .map(|i| i + 1)
        .expect("warm run must reach the cold threshold");

    let ingested = obs_a.counter_value("memory.ingested") as u64;
    let retrievals = obs_b.counter_value("memory.retrievals") as u64;
    let prior_obs = obs_b.counter_value("memory.prior_obs") as u64;
    assert_eq!(ingested, 1, "exactly the cold session's digest is ingested");
    assert_eq!(retrievals, 1, "exactly the warm session retrieves");
    assert!(
        prior_obs >= 4,
        "prior must carry enough observations to fit"
    );
    assert!(
        warm_evals < cold_evals,
        "warm start must need fewer evaluations ({warm_evals} vs {cold_evals})"
    );
    println!(
        "warmstart: ingested={ingested} retrievals={retrievals} prior_obs={prior_obs} \
         cold_evals={cold_evals} warm_evals={warm_evals}"
    );
}
