//! Figure 9: impact of NewRatio (1..8) on per-task GC overheads for K-means
//! with Cache Capacity 0.6. NewRatio 2 "just fits" the cache; lower values
//! thrash (Observation 5), higher values add young-collection overheads.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::{stats, MemoryConfig};
use relm_workloads::{kmeans, max_resource_allocation};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = kmeans();
    let default = max_resource_allocation(engine.cluster(), &app);

    println!("Figure 9: NewRatio sweep for K-means at Cache Capacity 0.6\n");
    println!(
        "{:>3} {:>10} {:>12} {:>10} {:>9}",
        "NR", "gc-mean", "gc-stddev", "runtime", "old-fit?"
    );
    for nr in 1..=8u32 {
        let cfg = MemoryConfig {
            cache_fraction: 0.6,
            shuffle_fraction: 0.0,
            new_ratio: nr,
            ..default
        };
        let mut gcs = Vec::new();
        let mut mins = Vec::new();
        for seed in 0..5u64 {
            let (r, _) = engine.run(&app, &cfg, 900 + seed * 13);
            if !r.aborted {
                gcs.push(r.gc_overhead);
                mins.push(r.runtime_mins());
            }
        }
        let fits = cfg.old_capacity() >= cfg.cache_capacity();
        println!(
            "{:>3} {:>10.3} {:>12.3} {:>9.1}m {:>9}",
            nr,
            stats::mean(&gcs),
            stats::std_dev(&gcs),
            stats::mean(&mins),
            if fits { "yes" } else { "NO" }
        );
    }
    println!("\npaper shape: NR=1 (Old < cache) has the worst overheads; NR=2 is the");
    println!("sweet spot; higher values add increasingly many young collections.");
}
