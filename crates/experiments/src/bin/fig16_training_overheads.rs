//! Figure 16: training overheads of the tuning policies, as a percentage of
//! the Exhaustive Search effort. Black-box policies are trained until they
//! find a configuration within the top 5 percentile of the exhaustive
//! baseline; RelM needs a single profiled run.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::stats;
use relm_core::RelmTuner;
use relm_experiments::{exhaustive_baseline, long_bo, long_ddpg, train_until};
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::benchmark_suite;

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let reps = 5u64;
    println!("Figure 16: training overheads vs Exhaustive Search (mean of {reps} repetitions)\n");
    println!(
        "{:<10} {:<6} {:>7} {:>12} {:>10} {:>10}",
        "app", "policy", "iters", "stress-time", "% of exh.", "converged"
    );
    for app in benchmark_suite() {
        let baseline = exhaustive_baseline(&engine, &app, 42);
        let threshold = baseline.top5_mins;
        let exh_time = baseline.stress_time;

        for policy_name in ["RelM", "GBO", "BO", "DDPG"] {
            let mut iters = Vec::new();
            let mut times = Vec::new();
            let mut converged = 0u32;
            for rep in 0..reps {
                let seed = 100 + rep * 17;
                let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
                let cost = match policy_name {
                    "RelM" => {
                        // RelM does not stress-test toward a threshold; its
                        // cost is the profiling run(s).
                        let mut relm = RelmTuner::default();
                        let _ = relm.tune(&mut env);
                        relm_experiments::TrainingCost {
                            iterations: env.evaluations(),
                            stress_time: env.stress_time(),
                            converged: true,
                        }
                    }
                    "GBO" => train_until(&mut long_bo(seed, true), &mut env, threshold),
                    "BO" => train_until(&mut long_bo(seed, false), &mut env, threshold),
                    _ => train_until(&mut long_ddpg(seed), &mut env, threshold),
                };
                iters.push(cost.iterations as f64);
                times.push(cost.stress_time.as_mins());
                converged += u32::from(cost.converged);
            }
            println!(
                "{:<10} {:<6} {:>7.1} {:>9.0}min {:>9.1}% {:>8}/{}",
                app.name,
                policy_name,
                stats::mean(&iters),
                stats::mean(&times),
                stats::mean(&times) / exh_time.as_mins() * 100.0,
                converged,
                reps
            );
        }
        println!(
            "{:<10} {:<6} {:>7} {:>9.0}min {:>10}",
            app.name,
            "Exh.",
            192,
            exh_time.as_mins(),
            "100.0%"
        );
        println!();
    }
    println!("paper shape: RelM needs one run; BO/GBO < 4% of exhaustive effort with GBO");
    println!("~2x faster than BO; DDPG takes the longest but still < 10%.");
}
