//! Figures 12 & 13: the RelM pipeline on PageRank — statistics generation,
//! the Initializer's Equation-5 output, and the step-by-step Arbitrator
//! walkthrough for every candidate container size.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_core::{Arbitrator, Initializer, RelmTuner, DEFAULT_SAFETY};
use relm_profile::derive_stats;
use relm_workloads::{max_resource_allocation, pagerank};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let cluster = engine.cluster().clone();
    let app = pagerank();

    // Step 1: profile under the default (Figure 12's "application profile").
    let cfg = max_resource_allocation(&cluster, &app);
    let (_, profile) = engine.run(&app, &cfg, 42);
    let stats = derive_stats(&profile);
    println!("Statistics Generator output (Table 6):");
    println!(
        "  M_i={} M_c={} M_s={} M_u={} P={} H={:.2} S={:.2}\n",
        stats.m_i, stats.m_c, stats.m_s, stats.m_u, stats.p, stats.h, stats.s
    );

    // Step 2–4: Initializer + Arbitrator per container size.
    let init = Initializer::new(stats, DEFAULT_SAFETY);
    let arb = Arbitrator::new(DEFAULT_SAFETY);
    for (n, heap) in cluster.container_options() {
        let max_p = cluster.max_task_concurrency(n);
        let initial = init.initialize(n, heap, max_p);
        println!(
            "candidate N={n} (heap {heap}): Initializer -> p={} m_c={} NR={} (Equation 5 style)",
            initial.task_concurrency, initial.cache, initial.new_ratio
        );
        match arb.arbitrate(&init, &initial) {
            Ok(outcome) => {
                for (i, step) in outcome.trace.iter().enumerate() {
                    println!(
                        "  step {:>2}: {:?}{} -> p={} cache={} old={}",
                        i + 1,
                        step.action,
                        if step.applied { "" } else { " (skipped)" },
                        step.p,
                        step.cache,
                        step.old
                    );
                }
                println!(
                    "  => {} with utility U={:.3}\n",
                    outcome.config, outcome.utility
                );
            }
            Err(e) => println!("  => infeasible: {e:?}\n"),
        }
    }

    // Step 5: the Selector's pick.
    let mut relm = RelmTuner::default();
    if let Ok(config) = relm.recommend_from_stats(&cluster, stats) {
        println!("Selector's recommendation: {config}");
    }
    println!("\npaper shape: the N=1 walkthrough lowers concurrency and cache in a");
    println!("round-robin until Old covers the long-lived and task memory (9 steps in");
    println!("the paper); a different container size ends up winning on utility.");
}
