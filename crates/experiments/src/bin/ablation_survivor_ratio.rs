//! SurvivorRatio ablation. Table 1 lists `SurvivorRatio` as a tuning knob
//! (it sizes Eden within Young), but the paper "keeps the SurvivorRatio to
//! its default value" (§6.1). This sweep justifies that choice: the knob's
//! effect is second-order next to `NewRatio` unless the survivor space is
//! made pathologically small.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_experiments::{mean_runtime_mins, repeat_runs};
use relm_workloads::{kmeans, max_resource_allocation, sortbykey};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("SurvivorRatio ablation (paper fixes SR = 8)\n");
    println!(
        "{:<10} {:>3} {:>9} {:>6} {:>8}",
        "app", "SR", "runtime", "gc", "fails"
    );
    for app in [kmeans(), sortbykey()] {
        let default = max_resource_allocation(engine.cluster(), &app);
        for sr in [2u32, 4, 8, 16, 32] {
            let cfg = MemoryConfig {
                survivor_ratio: sr,
                ..default
            };
            let runs = repeat_runs(&engine, &app, &cfg, 3, 90_000 + sr as u64);
            let ok: Vec<_> = runs.iter().filter(|r| !r.aborted).cloned().collect();
            if ok.is_empty() {
                println!(
                    "{:<10} {:>3} {:>9} {:>6} {:>8}",
                    app.name, sr, "-", "-", "FAILED"
                );
                continue;
            }
            println!(
                "{:<10} {:>3} {:>8.1}m {:>6.2} {:>8}",
                app.name,
                sr,
                mean_runtime_mins(&ok),
                ok.iter().map(|r| r.gc_overhead).sum::<f64>() / ok.len() as f64,
                runs.iter().map(|r| r.container_failures).sum::<u32>(),
            );
        }
        println!();
    }
    println!("expected: a flat response compared to the NewRatio sweeps of Figures 8-10 —");
    println!("which is why both the paper and RelM leave SurvivorRatio at its default.");
}
