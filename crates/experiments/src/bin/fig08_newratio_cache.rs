//! Figure 8: interaction between NewRatio and Cache Capacity for K-means.
//! With high cache capacities, low NewRatio (Old smaller than the cache)
//! causes ~50% GC overheads; sizing Old to just fit the cache performs up
//! to 3x better (Observation 5).

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_experiments::{mean_runtime_mins, repeat_runs};
use relm_workloads::{kmeans, max_resource_allocation};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = kmeans();
    let default = max_resource_allocation(engine.cluster(), &app);

    println!("Figure 8: NewRatio x CacheCapacity for K-means (runtime / GC overhead)\n");
    print!("{:>8}", "cache");
    for nr in [1u32, 2, 3, 5, 7] {
        print!(" {:>15}", format!("NR={nr}"));
    }
    println!();
    for cc in [0.4, 0.5, 0.6, 0.7, 0.8] {
        print!("{cc:>8.1}");
        for nr in [1u32, 2, 3, 5, 7] {
            let cfg = MemoryConfig {
                cache_fraction: cc,
                shuffle_fraction: 0.0,
                new_ratio: nr,
                ..default
            };
            let runs = repeat_runs(&engine, &app, &cfg, 2, (cc * 100.0) as u64 + nr as u64);
            let ok: Vec<_> = runs.iter().filter(|r| !r.aborted).cloned().collect();
            if ok.is_empty() {
                print!(" {:>15}", "FAILED");
                continue;
            }
            let gc = ok.iter().map(|r| r.gc_overhead).sum::<f64>() / ok.len() as f64;
            print!(" {:>9.1}m/{:<4.2}", mean_runtime_mins(&ok), gc);
        }
        println!();
    }
    println!("\npaper shape: at cache >= 0.7 the low-NewRatio cells (Old < Mi + cache)");
    println!("thrash with full collections; NewRatio sized to fit the cache is ~2-3x faster.");
}
