//! Figure 7: impact of Cache Capacity (K-means, SVM, PageRank) and Shuffle
//! Capacity (WordCount, SortByKey) on runtime, heap utilization, per-task GC
//! overheads, and the cache hit ratio.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_experiments::{aborted_count, mean_runtime_mins, repeat_runs, total_failures};
use relm_workloads::{benchmark_suite, max_resource_allocation};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("Figure 7: cache/shuffle capacity sweep\n");
    println!(
        "{:<10} {:>8} {:>9} {:>9} {:>6} {:>5} {:>5} {:>7}",
        "app", "capacity", "runtime", "max-heap", "gc", "H", "S", "status"
    );
    for app in benchmark_suite() {
        let mut default = max_resource_allocation(engine.cluster(), &app);
        let cache_app = app.uses_cache();
        // §3.3: PageRank uses p=1 here to avoid OOM at higher concurrency.
        if app.name == "PageRank" {
            default.task_concurrency = 1;
        }
        for f in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] {
            let cfg = if cache_app {
                MemoryConfig {
                    cache_fraction: f,
                    shuffle_fraction: 0.0,
                    ..default
                }
            } else {
                MemoryConfig {
                    shuffle_fraction: f,
                    cache_fraction: 0.0,
                    ..default
                }
            };
            let runs = repeat_runs(&engine, &app, &cfg, 3, (f * 1000.0) as u64);
            let ok: Vec<_> = runs.iter().filter(|r| !r.aborted).cloned().collect();
            let aborted = aborted_count(&runs);
            let label = format!("{}={f:.1}", if cache_app { "cc" } else { "sc" });
            if ok.is_empty() {
                println!(
                    "{:<10} {:>8} {:>9} {:>9} {:>6} {:>5} {:>5} {:>7}",
                    app.name, label, "-", "-", "-", "-", "-", "FAILED"
                );
                continue;
            }
            println!(
                "{:<10} {:>8} {:>8.1}m {:>9.2} {:>6.2} {:>5.2} {:>5.2} {:>7}",
                app.name,
                label,
                mean_runtime_mins(&ok),
                ok.iter().map(|r| r.max_heap_util).fold(0.0, f64::max),
                ok.iter().map(|r| r.gc_overhead).sum::<f64>() / ok.len() as f64,
                ok.iter().map(|r| r.cache_hit_ratio).sum::<f64>() / ok.len() as f64,
                ok.iter().map(|r| r.spill_fraction).sum::<f64>() / ok.len() as f64,
                if aborted > 0 {
                    format!("{aborted}/3fail")
                } else if total_failures(&ok) > 0 {
                    format!("{}flky", total_failures(&ok))
                } else {
                    "ok".into()
                }
            );
        }
        println!();
    }
    println!("paper shape: cache apps improve with capacity until memory pressure (K-means");
    println!("cannot fit all partitions; SVM fits at 0.5); SortByKey *degrades* with more");
    println!("shuffle memory — spills get fewer but GC overheads explode (60% at 0.6+).");
}
