//! Figure 26: swapping the surrogate — Gaussian Process vs Random Forest —
//! inside both BO and GBO, on K-means and SVM. Neither model is strictly
//! superior; the GBO guidance helps regardless of the surrogate.

use relm_app::Engine;
use relm_bo::{BayesOpt, BoConfig, SurrogateKind};
use relm_cluster::ClusterSpec;
use relm_common::stats;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::{kmeans, max_resource_allocation, svm};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let reps = 4u64;
    println!("Figure 26: Gaussian Process vs Random Forest surrogates\n");
    println!(
        "{:<10} {:<10} {:>10} {:>8} {:>9}",
        "app", "variant", "rec. time", "norm", "iters"
    );
    for app in [kmeans(), svm()] {
        let default = max_resource_allocation(engine.cluster(), &app);
        let (def_run, _) = engine.run(&app, &default, 999);
        let def_mins = def_run.runtime_mins();

        for (kind, guided, label) in [
            (SurrogateKind::GaussianProcess, false, "BO-GP"),
            (SurrogateKind::RandomForest, false, "BO-RF"),
            (SurrogateKind::GaussianProcess, true, "GBO-GP"),
            (SurrogateKind::RandomForest, true, "GBO-RF"),
        ] {
            let mut mins = Vec::new();
            let mut iters = Vec::new();
            for rep in 0..reps {
                let seed = 500 + rep * 23;
                let base = if guided {
                    BayesOpt::guided(seed)
                } else {
                    BayesOpt::new(seed)
                };
                let mut bo = base.with_config(BoConfig {
                    surrogate: kind,
                    ..BoConfig::default()
                });
                let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
                if let Ok(rec) = bo.tune(&mut env) {
                    let (r, _) = engine.run(&app, &rec.config, 40_000 + rep);
                    mins.push(r.runtime_mins());
                    iters.push(rec.evaluations as f64);
                }
            }
            println!(
                "{:<10} {:<10} {:>9.1}m {:>8.2} {:>9.1}",
                app.name,
                label,
                stats::mean(&mins),
                stats::mean(&mins) / def_mins,
                stats::mean(&iters)
            );
        }
        println!();
    }
    println!("paper shape: no clear winner between GP and RF; the white-box guidance");
    println!("helps under either surrogate.");
}
