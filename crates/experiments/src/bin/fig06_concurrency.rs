//! Figure 6: impact of Task Concurrency (1..8) on runtime and resource
//! utilization. Performance improves with concurrency until a CPU, disk, or
//! memory bottleneck flattens (or reverses) the curve; PageRank runs out of
//! memory for concurrency ≥ 2.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_experiments::{aborted_count, mean_runtime_mins, repeat_runs};
use relm_workloads::{benchmark_suite, max_resource_allocation};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("Figure 6: task concurrency sweep (runtime normalized to p=1)\n");
    println!(
        "{:<10} {:>2} {:>9} {:>6} {:>9} {:>8} {:>8} {:>6} {:>7}",
        "app", "p", "runtime", "norm", "max-heap", "avg-cpu", "avg-disk", "gc", "status"
    );
    for app in benchmark_suite() {
        let default = max_resource_allocation(engine.cluster(), &app);
        let mut base = f64::NAN;
        for p in [1u32, 2, 4, 6, 8] {
            let cfg = MemoryConfig {
                task_concurrency: p,
                ..default
            };
            let runs = repeat_runs(&engine, &app, &cfg, 3, 600 + p as u64);
            let aborted = aborted_count(&runs);
            let ok: Vec<_> = runs.iter().filter(|r| !r.aborted).cloned().collect();
            if ok.is_empty() {
                println!(
                    "{:<10} {:>2} {:>9} {:>6} {:>9} {:>8} {:>8} {:>6} {:>7}",
                    app.name, p, "-", "-", "-", "-", "-", "-", "FAILED"
                );
                continue;
            }
            let runtime = mean_runtime_mins(&ok);
            if p == 1 {
                base = runtime;
            }
            println!(
                "{:<10} {:>2} {:>8.1}m {:>6.2} {:>9.2} {:>8.2} {:>8.2} {:>6.2} {:>7}",
                app.name,
                p,
                runtime,
                runtime / base,
                ok.iter().map(|r| r.max_heap_util).fold(0.0, f64::max),
                ok.iter().map(|r| r.avg_cpu_util).sum::<f64>() / ok.len() as f64,
                ok.iter().map(|r| r.avg_disk_util).sum::<f64>() / ok.len() as f64,
                ok.iter().map(|r| r.gc_overhead).sum::<f64>() / ok.len() as f64,
                if aborted > 0 {
                    format!("{aborted}/3fail")
                } else {
                    "ok".into()
                }
            );
        }
        println!();
    }
    println!("paper shape: each application improves until a bottleneck, then plateaus;");
    println!("GC overheads grow with concurrency under memory pressure; PageRank fails for p>=2.");
}
