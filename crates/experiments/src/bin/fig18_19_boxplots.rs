//! Figures 18 & 19: box-whisker summaries of absolute training time and
//! iteration counts for K-means and SVM, across repeated executions of each
//! policy (quantiles over 8 repetitions).

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::stats::five_number;
use relm_experiments::{exhaustive_baseline, long_bo, long_ddpg, train_until};
use relm_tune::TuningEnv;
use relm_workloads::{kmeans, svm};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let reps = 8u64;
    for app in [kmeans(), svm()] {
        let baseline = exhaustive_baseline(&engine, &app, 42);
        let threshold = baseline.top5_mins;
        println!(
            "{} (top-5% threshold: {:.2} min)\n{:<6} {:>32} {:>26}",
            app.name,
            threshold,
            "policy",
            "training time (min) [5-number]",
            "iterations [5-number]"
        );
        for policy_name in ["BO", "GBO", "DDPG"] {
            let mut times = Vec::new();
            let mut iters = Vec::new();
            for rep in 0..reps {
                let seed = 300 + rep * 13;
                let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
                let cost = match policy_name {
                    "BO" => train_until(&mut long_bo(seed, false), &mut env, threshold),
                    "GBO" => train_until(&mut long_bo(seed, true), &mut env, threshold),
                    _ => train_until(&mut long_ddpg(seed), &mut env, threshold),
                };
                times.push(cost.stress_time.as_mins());
                iters.push(cost.iterations as f64);
            }
            let t = five_number(&times);
            let i = five_number(&iters);
            println!(
                "{:<6} [{:>5.0} {:>5.0} {:>5.0} {:>5.0} {:>5.0}] [{:>4.0} {:>4.0} {:>4.0} {:>4.0} {:>4.0}]",
                policy_name, t.min, t.q25, t.median, t.q75, t.max, i.min, i.q25, i.median, i.q75,
                i.max
            );
        }
        println!();
    }
    println!("paper shape: considerable variation across runs (local-minima tails,");
    println!("especially for SVM); DDPG takes the longest among the black-box policies.");
}
