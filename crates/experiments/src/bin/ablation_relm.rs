//! Ablation of RelM's design choices (beyond the paper's evaluation):
//! what each stage of the Figure-12 pipeline contributes.
//!
//! * **Initializer-only** — skip the Arbitrator: take Equation 1–4's
//!   per-pool optima directly (on the profiled container size).
//! * **No safety margin** — δ = 0 instead of 0.1.
//! * **Selector-by-first** — skip the utility ranking: take the first
//!   feasible candidate instead of the best-U one.
//! * **Full RelM** — the paper's pipeline.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_core::{Initializer, RelmTuner, DEFAULT_SAFETY};
use relm_profile::derive_stats;
use relm_workloads::{benchmark_suite, max_resource_allocation};

fn evaluate(engine: &Engine, app: &relm_app::AppSpec, cfg: &MemoryConfig) -> (f64, u32, u32) {
    let mut mins = 0.0;
    let mut fails = 0;
    let mut aborts = 0;
    for seed in 0..4u64 {
        let (r, _) = engine.run(app, cfg, 80_000 + seed * 3);
        mins += r.runtime_mins() / 4.0;
        fails += r.container_failures;
        aborts += u32::from(r.aborted);
    }
    (mins, fails, aborts)
}

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let cluster = engine.cluster().clone();
    println!("RelM ablation (4 runs per cell)\n");
    println!(
        "{:<10} {:<18} {:>9} {:>7} {:>7}  config",
        "app", "variant", "runtime", "fails", "aborts"
    );
    for app in benchmark_suite() {
        let default = max_resource_allocation(&cluster, &app);
        let (_, profile) = engine.run(&app, &default, 42);
        let stats = derive_stats(&profile);

        // Initializer-only on the profiled container size.
        let init = Initializer::new(stats, DEFAULT_SAFETY);
        let raw = init.initialize(1, cluster.heap_for(1), cluster.max_task_concurrency(1));
        let initializer_only = MemoryConfig {
            containers_per_node: 1,
            heap: raw.heap,
            task_concurrency: raw.task_concurrency,
            cache_fraction: (raw.cache / raw.heap).clamp(0.0, 0.9),
            shuffle_fraction: (raw.shuffle_per_task * raw.task_concurrency as f64 / raw.heap)
                .clamp(0.0, 0.9 - (raw.cache / raw.heap).clamp(0.0, 0.9)),
            new_ratio: raw.new_ratio,
            survivor_ratio: 8,
        };

        // δ = 0 variant.
        let mut no_margin = RelmTuner::new(0.0);
        let no_margin_cfg = no_margin.recommend_from_stats(&cluster, stats).ok();

        // Selector ablation: first feasible candidate (enumeration order)
        // instead of best utility.
        let mut full = RelmTuner::default();
        let full_cfg = full.recommend_from_stats(&cluster, stats).ok();
        let first_cfg = full.last_outcomes().first().map(|(_, o)| o.config);

        let mut rows: Vec<(&str, Option<MemoryConfig>)> = vec![
            ("initializer-only", Some(initializer_only)),
            ("no-safety (δ=0)", no_margin_cfg),
            ("first-feasible", first_cfg),
            ("full RelM", full_cfg),
        ];
        for (label, cfg) in rows.drain(..) {
            match cfg {
                Some(cfg) if cfg.validate().is_ok() => {
                    let (mins, fails, aborts) = evaluate(&engine, &app, &cfg);
                    println!(
                        "{:<10} {:<18} {:>8.1}m {:>7} {:>7}  {}",
                        app.name, label, mins, fails, aborts, cfg
                    );
                }
                _ => println!("{:<10} {:<18} {:>9}", app.name, label, "infeasible"),
            }
        }
        println!();
    }
    println!("expected: the Initializer alone over-packs memory (failures); dropping the");
    println!("safety margin risks OOMs on tight workloads; the utility-based Selector");
    println!("improves on an arbitrary feasible candidate.");
}
