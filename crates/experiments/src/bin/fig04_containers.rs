//! Figure 4: impact of the number of containers per node on runtime,
//! maximum heap utilization, average CPU utilization, and average disk
//! utilization for the benchmark suite. Missing points in the paper's plot
//! correspond to failures; aborted runs are marked here.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_experiments::{aborted_count, mean_runtime_mins, repeat_runs};
use relm_workloads::{benchmark_suite, max_resource_allocation};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("Figure 4: containers per node (runtime normalized to N=1 / the default)\n");
    println!(
        "{:<10} {:>2} {:>9} {:>6} {:>9} {:>8} {:>8} {:>7}",
        "app", "N", "runtime", "norm", "max-heap", "avg-cpu", "avg-disk", "status"
    );
    for app in benchmark_suite() {
        let default = max_resource_allocation(engine.cluster(), &app);
        let mut base = f64::NAN;
        for n in 1..=4u32 {
            let cfg = MemoryConfig {
                containers_per_node: n,
                heap: engine.cluster().heap_for(n),
                ..default
            };
            let runs = repeat_runs(&engine, &app, &cfg, 3, 40 + n as u64);
            let aborted = aborted_count(&runs);
            let ok: Vec<_> = runs.iter().filter(|r| !r.aborted).cloned().collect();
            let status = match aborted {
                0 => "ok".to_owned(),
                a if a == runs.len() => "FAILED".to_owned(),
                a => format!("{a}/3 fail"),
            };
            if ok.is_empty() {
                println!(
                    "{:<10} {:>2} {:>9} {:>6} {:>9} {:>8} {:>8} {:>7}",
                    app.name, n, "-", "-", "-", "-", "-", status
                );
                continue;
            }
            let runtime = mean_runtime_mins(&ok);
            if n == 1 {
                base = runtime;
            }
            let heap = ok.iter().map(|r| r.max_heap_util).fold(0.0, f64::max);
            let cpu = ok.iter().map(|r| r.avg_cpu_util).sum::<f64>() / ok.len() as f64;
            let disk = ok.iter().map(|r| r.avg_disk_util).sum::<f64>() / ok.len() as f64;
            println!(
                "{:<10} {:>2} {:>8.1}m {:>6.2} {:>9.2} {:>8.2} {:>8.2} {:>7}",
                app.name,
                n,
                runtime,
                runtime / base,
                heap,
                cpu,
                disk,
                status
            );
        }
        println!();
    }
    println!("paper shape: WordCount/SortByKey favor thin containers; K-means and");
    println!("SVM hit memory pressure (K-means fails at N=4); PageRank fails everywhere.");
}
