//! Figure 11: memory-usage timelines of a PageRank container with
//! NewRatio=2 versus NewRatio=5. The lower NewRatio collects less often, so
//! on-heap references to off-heap buffers linger and the resident set size
//! grows toward (and past) the physical-memory cap (Observation 6).

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_workloads::{max_resource_allocation, pagerank};

fn print_timeline(engine: &Engine, cfg: &MemoryConfig, label: &str) {
    let app = pagerank();
    // Pick the run with the most physical-memory kills among a few seeds for
    // the low-NewRatio side, and the cleanest run for the high-NewRatio side
    // (the paper contrasts a failing container with a surviving one).
    let seeds = [77u64, 78, 79, 80, 81];
    let pick = if cfg.new_ratio <= 2 {
        seeds
            .iter()
            .max_by_key(|&&s| engine.run(&app, cfg, s).0.rss_kills)
            .copied()
            .unwrap_or(77)
    } else {
        seeds
            .iter()
            .min_by_key(|&&s| engine.run(&app, cfg, s).0.rss_kills)
            .copied()
            .unwrap_or(77)
    };
    let (result, profile) = engine.run(&app, cfg, pick);
    let cap = engine.cluster().container(cfg.containers_per_node).phys_cap;
    println!("--- {label} (max physical = {cap}) ---");
    // Plot the container that came closest to (or past) the cap.
    let trace = profile
        .containers
        .iter()
        .max_by(|a, b| {
            let pa = a.rss.values().fold(0.0, |m: f64, v| m.max(v.as_mb()));
            let pb = b.rss.values().fold(0.0, |m: f64, v| m.max(v.as_mb()));
            pa.partial_cmp(&pb).expect("NaN rss")
        })
        .expect("at least one container");
    let samples = trace.rss.samples();
    let step = (samples.len() / 18).max(1);
    let peak_idx = (0..samples.len())
        .max_by(|&a, &b| {
            samples[a]
                .1
                .as_mb()
                .partial_cmp(&samples[b].1.as_mb())
                .expect("NaN")
        })
        .unwrap_or(0);
    let mut shown: Vec<usize> = (0..samples.len()).step_by(step).collect();
    if !shown.contains(&peak_idx) {
        shown.push(peak_idx);
        shown.sort_unstable();
    }
    for (t, rss) in shown.into_iter().map(|i| &samples[i]) {
        let frac = (rss.as_mb() / cap.as_mb()).min(1.2);
        let bar = "#".repeat((frac * 50.0) as usize);
        let marker = if *rss > cap { " <-- OVER CAP" } else { "" };
        println!(
            "{:>7.1}s {:>9} |{bar}{marker}",
            t.as_secs(),
            rss.to_string()
        );
    }
    println!(
        "run: {:.1} min, {} RSS kills, {} OOM failures, aborted: {}\n",
        result.runtime_mins(),
        result.rss_kills,
        result.oom_failures,
        result.aborted
    );
}

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = pagerank();
    let default = max_resource_allocation(engine.cluster(), &app);

    println!("Figure 11: container RSS timeline, NewRatio=2 vs NewRatio=5\n");
    print_timeline(&engine, &default, "NewRatio = 2 (default)");
    let nr5 = MemoryConfig {
        new_ratio: 5,
        ..default
    };
    print_timeline(&engine, &nr5, "NewRatio = 5");

    println!("paper shape: the NR=2 container's physical memory climbs past the cap");
    println!("(killed by the resource manager); NR=5 collects often enough to arrest it.");
}
