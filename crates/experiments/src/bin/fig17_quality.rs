//! Figure 17: quality of results. The runtime of every policy's
//! recommendation, scaled to the runtime of `MaxResourceAllocation`; the
//! number of failed containers is annotated. RelM should sit within ~10% of
//! the exhaustive-search winner with zero failures.

use relm_app::Engine;
use relm_bo::BayesOpt;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_core::RelmTuner;
use relm_ddpg::DdpgTuner;
use relm_experiments::exhaustive_baseline;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::{benchmark_suite, max_resource_allocation};

fn evaluate(engine: &Engine, app: &relm_app::AppSpec, cfg: &MemoryConfig) -> (f64, u32, u32) {
    let mut mins = 0.0;
    let mut fails = 0;
    let mut aborts = 0;
    for seed in 0..3u64 {
        let (r, _) = engine.run(app, cfg, 12_000 + seed * 101);
        mins += r.runtime_mins() / 3.0;
        fails += r.container_failures;
        aborts += u32::from(r.aborted);
    }
    (mins, fails, aborts)
}

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("Figure 17: recommendation runtime normalized to the default policy\n");
    println!(
        "{:<10} {:<10} {:>9} {:>7} {:>9} {:>8}",
        "app", "policy", "runtime", "norm", "failures", "vs-best"
    );
    for app in benchmark_suite() {
        let default = max_resource_allocation(engine.cluster(), &app);
        let (def_mins, def_fails, def_aborts) = evaluate(&engine, &app, &default);
        let baseline = exhaustive_baseline(&engine, &app, 42);
        let best_cfg = baseline
            .observations
            .iter()
            .min_by(|a, b| a.score_mins.partial_cmp(&b.score_mins).expect("NaN"))
            .expect("grid")
            .config;

        let mut rows: Vec<(String, MemoryConfig)> =
            vec![("Default".into(), default), ("Exhaustive".into(), best_cfg)];
        let mut policies: Vec<Box<dyn Tuner>> = vec![
            Box::new(DdpgTuner::new(5)),
            Box::new(BayesOpt::new(5)),
            Box::new(BayesOpt::guided(5)),
            Box::new(RelmTuner::default()),
        ];
        for policy in policies.iter_mut() {
            let mut env = TuningEnv::new(engine.clone(), app.clone(), 23);
            if let Ok(rec) = policy.tune(&mut env) {
                rows.push((rec.policy, rec.config));
            }
        }

        let (best_mins, _, _) = evaluate(&engine, &app, &best_cfg);
        for (name, cfg) in rows {
            let (mins, fails, aborts) = if name == "Default" {
                (def_mins, def_fails, def_aborts)
            } else {
                evaluate(&engine, &app, &cfg)
            };
            let status = if aborts > 0 {
                format!("{fails} (+{aborts} aborts)")
            } else {
                fails.to_string()
            };
            println!(
                "{:<10} {:<10} {:>8.1}m {:>7.2} {:>9} {:>7.0}%",
                app.name,
                name,
                mins,
                mins / def_mins,
                status,
                (mins / best_mins - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("paper shape: tuned configurations improve 50-70% over the default in most");
    println!("cases; RelM stays failure-free while black-box winners may pack memory so");
    println!("tightly that containers fail.");
}
