//! Figure 23: variability of the Code Overhead (M_i) and Task Unmanaged
//! (M_u) estimates across 16 distinct initial profiles per application.
//! The estimates should be stable — which is why RelM recommends (almost)
//! the same configuration regardless of the profiled starting point.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::{stats, MemoryConfig};
use relm_profile::derive_stats;
use relm_workloads::benchmark_suite;

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let cluster = engine.cluster().clone();
    println!("Figure 23: M_i and M_u estimates across 16 profiles (mean ± std. error)\n");
    println!(
        "{:<10} {:>9} {:>22} {:>22}",
        "app", "profiles", "M_i (MB)", "M_u (MB)"
    );
    for app in benchmark_suite() {
        let mut mi = Vec::new();
        let mut mu = Vec::new();
        let mut idx = 0u64;
        'outer: for n in [1u32, 2] {
            for p in [1u32, 2] {
                for cc in [0.3, 0.5] {
                    for nr in [2u32, 6] {
                        idx += 1;
                        let (cf, sf) = if app.uses_cache() {
                            (cc, 0.0)
                        } else {
                            (0.0, cc)
                        };
                        let cfg = MemoryConfig {
                            containers_per_node: n,
                            heap: cluster.heap_for(n),
                            task_concurrency: p,
                            cache_fraction: cf,
                            shuffle_fraction: sf,
                            new_ratio: nr,
                            survivor_ratio: 8,
                        };
                        let (r, profile) = engine.run(&app, &cfg, 20_000 + idx * 7);
                        if r.aborted {
                            continue;
                        }
                        let s = derive_stats(&profile);
                        // Only full-GC profiles contribute, as in §6.4.
                        if s.m_u_from_full_gc {
                            mi.push(s.m_i.as_mb());
                            mu.push(s.m_u.as_mb());
                        }
                        if mi.len() >= 16 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        println!(
            "{:<10} {:>9} {:>13.0} ± {:>5.1} {:>13.0} ± {:>5.1}",
            app.name,
            mi.len(),
            stats::mean(&mi),
            stats::std_error(&mi),
            stats::mean(&mu),
            stats::std_error(&mu),
        );
    }
    println!("\npaper shape: little variance within an application; across applications");
    println!("the task memory differs by up to two orders of magnitude (log scale).");
}
