//! Table 8: the configurations recommended by every tuning policy for every
//! application, side by side with Exhaustive Search's winner.

use relm_app::Engine;
use relm_bo::BayesOpt;
use relm_cluster::ClusterSpec;
use relm_core::RelmTuner;
use relm_ddpg::DdpgTuner;
use relm_experiments::exhaustive_baseline;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::benchmark_suite;

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("Table 8: recommendations by policy\n");
    println!(
        "{:<10} {:<10} {:>3} {:>3} {:>6} {:>8} {:>4}",
        "app", "policy", "N", "p", "cache", "shuffle", "NR"
    );
    for app in benchmark_suite() {
        // Exhaustive winner.
        let baseline = exhaustive_baseline(&engine, &app, 42);
        let best = baseline
            .observations
            .iter()
            .min_by(|a, b| a.score_mins.partial_cmp(&b.score_mins).expect("NaN"))
            .expect("non-empty grid")
            .config;
        let mut rows = vec![("Exhaustive".to_owned(), best)];

        let mut policies: Vec<Box<dyn Tuner>> = vec![
            Box::new(DdpgTuner::new(3)),
            Box::new(BayesOpt::new(3)),
            Box::new(BayesOpt::guided(3)),
            Box::new(RelmTuner::default()),
        ];
        for policy in policies.iter_mut() {
            let mut env = TuningEnv::new(engine.clone(), app.clone(), 17);
            if let Ok(rec) = policy.tune(&mut env) {
                rows.push((rec.policy, rec.config));
            }
        }

        for (name, cfg) in rows {
            println!(
                "{:<10} {:<10} {:>3} {:>3} {:>6.2} {:>8.2} {:>4}",
                app.name,
                name,
                cfg.containers_per_node,
                cfg.task_concurrency,
                cfg.cache_fraction,
                cfg.shuffle_fraction,
                cfg.new_ratio
            );
        }
        println!();
    }
}
