//! Figure 22: sensitivity of RelM's recommendations to the initial profile,
//! studied on SVM. Profiles without full-GC events force the fallback `M_u`
//! estimate (maximum Old occupancy), which over-estimates task memory by up
//! to two orders of magnitude and yields sub-optimal (though reliable)
//! recommendations. Profiles *with* full-GC events cluster tightly.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::MemoryConfig;
use relm_core::RelmTuner;
use relm_profile::derive_stats;
use relm_workloads::svm;

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = svm();
    let cluster = engine.cluster().clone();

    println!("Figure 22: RelM sensitivity to the initial SVM profile\n");
    println!(
        "{:<34} {:>8} {:>9} {:>10} {:>10}",
        "profiling configuration", "full-GC?", "M_u est.", "rec. time", "rec"
    );

    // Profile SVM under a spread of configurations; low-pressure ones
    // produce no full GC.
    let mut grid = Vec::new();
    for n in [1u32, 2, 4] {
        for p in [1u32, 2, 4] {
            for nr in [1u32, 4, 8] {
                let max_p = cluster.max_task_concurrency(n);
                if p > max_p {
                    continue;
                }
                grid.push(MemoryConfig {
                    containers_per_node: n,
                    heap: cluster.heap_for(n),
                    task_concurrency: p,
                    cache_fraction: 0.4,
                    shuffle_fraction: 0.0,
                    new_ratio: nr,
                    survivor_ratio: 8,
                });
            }
        }
    }

    let mut with_fgc: Vec<f64> = Vec::new();
    let mut without_fgc: Vec<f64> = Vec::new();
    for (i, prof_cfg) in grid.iter().enumerate() {
        let (r, profile) = engine.run(&app, prof_cfg, 9_000 + i as u64);
        if r.aborted {
            continue;
        }
        let stats = derive_stats(&profile);
        let mut relm = RelmTuner::default();
        let Ok(rec) = relm.recommend_from_stats(&cluster, stats) else {
            continue;
        };
        let (rec_run, _) = engine.run(&app, &rec, 15_000 + i as u64);
        let label = format!(
            "N={} p={} NR={}",
            prof_cfg.containers_per_node, prof_cfg.task_concurrency, prof_cfg.new_ratio
        );
        println!(
            "{:<34} {:>8} {:>9} {:>9.1}m {:>10}",
            label,
            if stats.m_u_from_full_gc { "yes" } else { "NO" },
            stats.m_u.to_string(),
            rec_run.runtime_mins(),
            format!("N={},p={}", rec.containers_per_node, rec.task_concurrency)
        );
        if stats.m_u_from_full_gc {
            with_fgc.push(rec_run.runtime_mins());
        } else {
            without_fgc.push(rec_run.runtime_mins());
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean recommended-config runtime: with full-GC profiles {:.1} min ({}), without {:.1} min ({})",
        mean(&with_fgc),
        with_fgc.len(),
        mean(&without_fgc),
        without_fgc.len()
    );
    println!("paper shape: full-GC profiles cluster at good runtimes; the fallback");
    println!("over-estimates M_u and recommends lower concurrency (reliable but slower).");
}
