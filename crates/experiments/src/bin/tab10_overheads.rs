//! Table 10: per-iteration algorithm overheads — statistics collection,
//! model fitting, model probing — plus the model's storage footprint.
//! These are actual wall-clock measurements of this implementation
//! (the Criterion benches in `crates/bench` measure the same quantities
//! with statistical rigor).
//!
//! ```text
//! tab10_overheads [--workers N]
//! ```
//!
//! `--workers` shards the four telemetry-validation sessions over a
//! bounded worker pool; it only affects wall-clock, never the measured
//! counters (they are exact atomic sums).

use relm_app::Engine;
use relm_bo::{BayesOpt, BoConfig};
use relm_cluster::ClusterSpec;
use relm_common::Rng;
use relm_core::{QModel, RelmTuner};
use relm_ddpg::{state_vector, AgentConfig, DdpgAgent, DdpgTuner, Transition, STATE_DIMS};
use relm_experiments::{parse_workers, run_sharded, write_run_telemetry};
use relm_obs::{Event, Obs};
use relm_profile::derive_stats;
use relm_surrogate::{latin_hypercube, maximize_ei, Gp};
use relm_tune::{ConfigSpace, Tuner, TuningEnv};
use relm_workloads::{max_resource_allocation, svm};
use std::time::Instant;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1000.0
}

/// Runs short instrumented tuning sessions — sharded over `workers`
/// threads, since each session owns an isolated environment and the
/// shared counters are exact atomics — and validates the emitted
/// telemetry: the JSONL file must be non-empty and parse, and the
/// cumulative stress-time counter must agree with the environments'
/// `stress_time()` accounting to within 1%.
fn measured_telemetry(obs: &Obs, workers: usize) {
    let cluster = ClusterSpec::cluster_a();
    let app = svm();
    let short_bo = BoConfig {
        max_iterations: 4,
        min_adaptive_samples: 2,
        ..BoConfig::default()
    };
    let cells: Vec<(&str, u64)> = vec![("BO", 21), ("GBO", 22), ("DDPG", 23), ("RelM", 24)];
    let stress_ms = run_sharded(cells, workers, |_, &(policy, seed)| {
        let mut tuner: Box<dyn Tuner> = match policy {
            "BO" => Box::new(BayesOpt::new(3).with_config(short_bo)),
            "GBO" => Box::new(BayesOpt::guided(3).with_config(short_bo)),
            "DDPG" => Box::new(DdpgTuner::new(3).with_budget(3)),
            _ => Box::new(RelmTuner::default()),
        };
        let engine = Engine::new(cluster.clone()).with_obs(obs.clone());
        let mut env = TuningEnv::new(engine, app.clone(), seed);
        tuner.tune(&mut env).expect("tuning session failed");
        env.stress_time().as_ms()
    });
    let expected_stress_ms: f64 = stress_ms.iter().sum();

    let path = write_run_telemetry(obs, "tab10_overheads")
        .expect("telemetry write failed")
        .expect("observability handle should be enabled here");
    let text = std::fs::read_to_string(&path).expect("telemetry file unreadable");
    assert!(
        !text.trim().is_empty(),
        "telemetry file is empty: {}",
        path.display()
    );
    let events = relm_obs::read_jsonl(&text).expect("telemetry JSONL is invalid");
    assert!(!events.is_empty(), "telemetry stream parsed to zero events");

    let recorded_stress_ms = events
        .iter()
        .find_map(|e| match e {
            Event::Counter { name, value } if name == "env.stress_time_ms" => Some(*value),
            _ => None,
        })
        .expect("env.stress_time_ms counter missing from telemetry");
    let rel_err = (recorded_stress_ms - expected_stress_ms).abs() / expected_stress_ms.max(1e-9);
    assert!(
        rel_err < 0.01,
        "stress-time counter ({recorded_stress_ms:.1}ms) disagrees with \
         TuningEnv::stress_time ({expected_stress_ms:.1}ms) by {:.2}%",
        rel_err * 100.0
    );

    println!("\nmeasured decision latencies (from {}):", path.display());
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10}",
        "phase", "count", "p50", "p95", "p99"
    );
    let mut histograms: Vec<&relm_obs::HistogramSummary> = events
        .iter()
        .filter_map(|e| match e {
            Event::Histogram(h)
                if h.name.ends_with("_ms")
                    && !h.name.starts_with("engine.")
                    && !h.name.starts_with("env.") =>
            {
                Some(h)
            }
            _ => None,
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(
        !histograms.is_empty(),
        "telemetry contains no decision-latency histograms"
    );
    for h in histograms {
        println!(
            "{:<22} {:>8} {:>8.3}ms {:>8.3}ms {:>8.3}ms",
            h.name, h.count, h.p50, h.p95, h.p99
        );
    }
    println!(
        "stress-time check: counter {recorded_stress_ms:.1}ms vs env accounting \
         {expected_stress_ms:.1}ms ({:.3}% off) — OK",
        rel_err * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = parse_workers(&args, 1);
    let obs = {
        let from_env = relm_experiments::obs_from_env();
        if from_env.is_enabled() {
            from_env
        } else {
            println!("RELM_OBS not set; enabling observability anyway so the");
            println!("telemetry self-check below can run against real data.\n");
            Obs::enabled()
        }
    };

    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = svm();
    let cluster = engine.cluster().clone();
    let cfg = max_resource_allocation(&cluster, &app);
    let (_, profile) = engine.run(&app, &cfg, 42);
    let space = ConfigSpace::for_app(&cluster, &app);

    // Shared: 12 observations to fit models on.
    let mut rng = Rng::new(7);
    let xs = latin_hypercube(12, 4, &mut rng);
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 5.0 + x[0] * 3.0 - x[2] * 2.0 + x[1])
        .collect();

    println!("Table 10: per-iteration algorithm overheads (this implementation)\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "component", "DDPG", "BO", "GBO", "RelM"
    );

    // --- Statistics collection ---
    let stats_ms = time_ms(|| {
        let _ = derive_stats(&profile);
    });
    println!(
        "{:<22} {:>8.2}ms {:>10} {:>8.2}ms {:>8.2}ms",
        "statistics collection", stats_ms, "-", stats_ms, stats_ms
    );

    // --- Model fitting ---
    let stats = derive_stats(&profile);
    let qmodel = QModel::new(stats, 0.1);
    let mut agent = DdpgAgent::new(AgentConfig::for_dims(STATE_DIMS, 4), 3);
    let s = state_vector(&profile);
    for i in 0..20 {
        agent.observe(Transition {
            state: s.clone(),
            action: vec![0.2, 0.4, 0.6, 0.8],
            reward: i as f64 * 0.1,
            next_state: s.clone(),
        });
    }
    let ddpg_fit = time_ms(|| agent.train_step());
    let bo_fit = time_ms(|| {
        let _ = Gp::fit(xs.clone(), &ys, 1);
    });
    let xs_guided: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| BayesOpt::features(&space, Some(&qmodel), x))
        .collect();
    let gbo_fit = time_ms(|| {
        let _ = Gp::fit(xs_guided.clone(), &ys, 1);
    });
    let mut relm = RelmTuner::default();
    let relm_fit = time_ms(|| {
        let _ = relm.recommend_from_stats(&cluster, stats);
    });
    println!(
        "{:<22} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.3}ms",
        "model fitting", ddpg_fit, bo_fit, gbo_fit, relm_fit
    );

    // --- Model probing ---
    let gp_plain = Gp::fit(xs.clone(), &ys, 1).expect("gp");
    let gp_guided = Gp::fit(xs_guided, &ys, 1).expect("gp");
    let ddpg_probe = time_ms(|| {
        let _ = agent.act(&s);
    });
    let bo_probe = time_ms(|| {
        let _ = maximize_ei(&gp_plain, 4, 5.0, &mut rng);
    });
    struct Wrapped<'a> {
        gp: &'a Gp,
        space: &'a ConfigSpace,
        q: &'a QModel,
    }
    impl relm_surrogate::Surrogate for Wrapped<'_> {
        fn predict(&self, x: &[f64]) -> (f64, f64) {
            self.gp
                .predict(&BayesOpt::features(self.space, Some(self.q), x))
        }
    }
    let wrapped = Wrapped {
        gp: &gp_guided,
        space: &space,
        q: &qmodel,
    };
    let gbo_probe = time_ms(|| {
        let _ = maximize_ei(&wrapped, 4, 5.0, &mut rng);
    });
    let relm_probe = time_ms(|| {
        let _ = relm.candidates_from_stats(&cluster, stats);
    });
    println!(
        "{:<22} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.3}ms",
        "model probing", ddpg_probe, bo_probe, gbo_probe, relm_probe
    );

    // --- Model size ---
    let ddpg_size = agent.parameter_count() * 8;
    let bo_size = xs.len() * (4 + 1) * 8;
    let gbo_size = xs.len() * (7 + 1) * 8;
    println!(
        "{:<22} {:>9}B {:>9}B {:>9}B {:>10}",
        "model size", ddpg_size, bo_size, gbo_size, "-"
    );

    println!("\npaper shape: RelM's analytical evaluation is orders of magnitude cheaper");
    println!("than fitting/probing a GP; GBO pays extra for the added dimensions; DDPG");
    println!("stores fixed-size network weights while BO's model grows with the data.");
    println!("\nScalability note (§6.3): probing RelM over 100 artificial container");
    println!("configurations stays in the ~10ms range:");
    let mut big_cluster = cluster.clone();
    big_cluster.cores_per_node = 400;
    big_cluster.heap_budget_per_node = relm_common::Mem::gb(400.0);
    let t = time_ms(|| {
        let _ = relm.candidates_from_stats(&big_cluster, stats);
    });
    println!("  4-candidate probe above vs large-cluster probe: {t:.3}ms");

    measured_telemetry(&obs, workers);
}
