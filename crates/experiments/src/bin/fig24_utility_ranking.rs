//! Figure 24: accuracy of RelM's configuration ranking. The Selector ranks
//! the per-container-size candidates by the utility score U; this binary
//! compares that ranking to the candidates' measured performance (Spearman
//! rank correlation).

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_common::stats;
use relm_core::RelmTuner;
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::benchmark_suite;

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    println!("Figure 24: utility score U vs measured runtime of RelM candidates\n");
    let mut all_corr = Vec::new();
    for app in benchmark_suite() {
        let mut env = TuningEnv::new(engine.clone(), app.clone(), 31);
        let mut relm = RelmTuner::default();
        if relm.tune(&mut env).is_err() {
            continue;
        }
        let mut utilities = Vec::new();
        let mut runtimes = Vec::new();
        println!("{}:", app.name);
        for (n, outcome) in relm.last_outcomes() {
            let mut mins = 0.0;
            let mut ok = 0;
            for seed in 0..3u64 {
                let (r, _) = engine.run(&app, &outcome.config, 30_000 + seed * 11);
                if !r.aborted {
                    mins += r.runtime_mins();
                    ok += 1;
                }
            }
            if ok == 0 {
                println!("  n={n}: U={:.3} -> aborted", outcome.utility);
                continue;
            }
            let mean = mins / ok as f64;
            println!("  n={n}: U={:.3} -> {:.1} min", outcome.utility, mean);
            utilities.push(outcome.utility);
            runtimes.push(mean);
        }
        if utilities.len() >= 2 {
            // Higher U should mean lower runtime: expect a negative rank
            // correlation between U and runtime.
            let rho = stats::spearman(&utilities, &runtimes);
            println!("  Spearman(U, runtime) = {rho:.2} (negative = ranking works)\n");
            all_corr.push(rho);
        } else {
            println!();
        }
    }
    println!(
        "mean correlation across applications: {:.2}",
        stats::mean(&all_corr)
    );
    println!("paper shape: a strong correlation between the utility ranking and the");
    println!("performance ranking of the candidates.");
}
