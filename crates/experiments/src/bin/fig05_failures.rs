//! Figure 5: exploring failures on one unsafe configuration each for
//! SortByKey (70% heap for shuffle), K-means (4 containers per node), and
//! PageRank (the default settings). Each setup is executed 5 times; the
//! label is the number of container failures, `*` marks aborted runs.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_workloads::{kmeans, max_resource_allocation, pagerank, sortbykey};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());

    let sbk = sortbykey();
    let mut sbk_cfg = max_resource_allocation(engine.cluster(), &sbk);
    sbk_cfg.shuffle_fraction = 0.7;

    let km = kmeans();
    let mut km_cfg = max_resource_allocation(engine.cluster(), &km);
    km_cfg.containers_per_node = 4;
    km_cfg.heap = engine.cluster().heap_for(4);

    let pr = pagerank();
    let pr_cfg = max_resource_allocation(engine.cluster(), &pr);

    println!("Figure 5: failures on unsafe configurations (5 runs each)\n");
    println!(
        "{:<26} {:>5} {:>9} {:>6} {:>6} {:>7}",
        "setup", "run", "runtime", "fails", "kind", "status"
    );
    for (label, app, cfg) in [
        ("SortByKey shuffle=0.7", &sbk, &sbk_cfg),
        ("K-means 4 containers", &km, &km_cfg),
        ("PageRank default", &pr, &pr_cfg),
    ] {
        for run in 0..5u64 {
            let (r, _) = engine.run(app, cfg, 7_000 + run * 31);
            println!(
                "{:<26} {:>5} {:>8.1}m {:>6} {:>6} {:>7}",
                label,
                run + 1,
                r.runtime_mins(),
                r.container_failures,
                format!("{}o/{}k", r.oom_failures, r.rss_kills),
                if r.aborted { "*abort" } else { "ok" }
            );
        }
        println!();
    }
    println!("paper shape: huge variability in failure counts and runtimes; some runs abort.");
    println!("Failures stem from (a) out-of-memory errors and (b) the resource manager");
    println!("killing containers over the physical-memory cap (o = OOM, k = RSS kill).");
}
