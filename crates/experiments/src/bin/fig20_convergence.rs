//! Figure 20: convergence of the tuning policies on K-means. Each tuner
//! runs 5 times; the mean, min, and max of the best-runtime-so-far are
//! reported per iteration.
//!
//! ```text
//! fig20_convergence [--scoring-threads N] [--workers N] [--out PATH] [--sparse]
//! ```
//!
//! Besides the stdout table, the per-run trajectories go to a JSONL file
//! (default `results/fig20_convergence.jsonl`) holding simulated
//! quantities only. `--scoring-threads` sets the BO/GBO acquisition
//! scoring pool and `--workers` shards the (policy, rep) cells over a
//! bounded worker pool with an index-ordered merge — both are pure
//! wall-clock knobs, so the file is **byte-identical** for any value;
//! `scripts/check.sh` diffs 1 against 8 for each. `--sparse` forces the
//! BO/GBO surrogate onto the sparse inducing-subset path (a *different*
//! trace than exact, but equally byte-identical across thread and worker
//! counts — which check.sh proves the same way).

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_experiments::{
    long_bo_sparse, long_bo_threaded, long_ddpg, parse_workers, results_dir, run_sharded,
};
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::kmeans;
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// One tuning run's best-so-far curve — what the convergence plot draws.
#[derive(Debug, Serialize)]
struct RunRecord {
    policy: &'static str,
    rep: u64,
    seed: u64,
    best_so_far_mins: Vec<f64>,
}

/// Best-so-far trajectory of one tuning session.
fn trajectory(env: &TuningEnv, len: usize) -> Vec<f64> {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for obs in env.history() {
        best = best.min(obs.score_mins);
        out.push(best);
    }
    // Extend to a common length for averaging.
    while out.len() < len {
        out.push(best);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = parse_workers(&args, 1);
    let mut scoring_threads = relm_bo::BoConfig::default().scoring_threads;
    let mut out_path: Option<PathBuf> = None;
    let mut sparse = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scoring-threads" => scoring_threads = value().parse().expect("--scoring-threads"),
            "--out" => out_path = Some(PathBuf::from(value())),
            "--sparse" => sparse = true,
            "--workers" => {
                value();
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = kmeans();
    let reps = 5u64;
    let horizon = 24;

    println!("Figure 20: best-runtime-so-far on K-means (mean [min..max] over {reps} runs)\n");
    print!("{:<5}", "iter");
    for name in ["BO", "GBO", "DDPG"] {
        print!(" {:>22}", name);
    }
    println!();

    // Cell order (policy-major, rep-minor) defines output order; the
    // sharded merge preserves it at any worker count.
    let cells: Vec<(&'static str, u64)> = ["BO", "GBO", "DDPG"]
        .into_iter()
        .flat_map(|policy| (0..reps).map(move |rep| (policy, rep)))
        .collect();
    let records: Vec<RunRecord> = run_sharded(cells, workers, |_, &(policy_name, rep)| {
        let seed = 400 + rep * 19;
        let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
        let bo = |guided: bool| {
            if sparse {
                long_bo_sparse(seed, guided, scoring_threads)
            } else {
                long_bo_threaded(seed, guided, scoring_threads)
            }
        };
        match policy_name {
            "BO" => {
                let _ = bo(false).tune(&mut env);
            }
            "GBO" => {
                let _ = bo(true).tune(&mut env);
            }
            _ => {
                let _ = long_ddpg(seed).tune(&mut env);
            }
        }
        RunRecord {
            policy: policy_name,
            rep,
            seed,
            best_so_far_mins: trajectory(&env, horizon),
        }
    });
    let curves: Vec<Vec<&Vec<f64>>> = records
        .chunks(reps as usize)
        .map(|chunk| chunk.iter().map(|r| &r.best_so_far_mins).collect())
        .collect();

    for i in 0..horizon {
        print!("{:<5}", i + 1);
        for per_rep in &curves {
            let vals: Vec<f64> = per_rep.iter().map(|c| c[i]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            print!(" {:>7.1} [{:>4.1}..{:>4.1}]", mean, min, max);
        }
        println!();
    }

    // The trajectories hold simulated quantities only — no wall clock, no
    // thread count — so this file must not change with --scoring-threads.
    let out = match out_path {
        Some(path) => path,
        None => results_dir()
            .expect("results dir")
            .join("fig20_convergence.jsonl"),
    };
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(&out).expect("create output"));
    for record in &records {
        let line = serde_json::to_string(record).expect("record serializes");
        writeln!(file, "{line}").expect("write record");
    }
    file.flush().expect("flush output");
    println!("\nwrote {}", out.display());
    println!("paper shape: GBO fits earlier than BO; DDPG explores low-reward regions");
    println!("first and converges last.");
}
