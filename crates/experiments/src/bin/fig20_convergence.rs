//! Figure 20: convergence of the tuning policies on K-means. Each tuner
//! runs 5 times; the mean, min, and max of the best-runtime-so-far are
//! reported per iteration.

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_experiments::{long_bo, long_ddpg};
use relm_tune::{Tuner, TuningEnv};
use relm_workloads::kmeans;

/// Best-so-far trajectory of one tuning session.
fn trajectory(env: &TuningEnv, len: usize) -> Vec<f64> {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for obs in env.history() {
        best = best.min(obs.score_mins);
        out.push(best);
    }
    // Extend to a common length for averaging.
    while out.len() < len {
        out.push(best);
    }
    out
}

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_a());
    let app = kmeans();
    let reps = 5u64;
    let horizon = 24;

    println!("Figure 20: best-runtime-so-far on K-means (mean [min..max] over {reps} runs)\n");
    print!("{:<5}", "iter");
    for name in ["BO", "GBO", "DDPG"] {
        print!(" {:>22}", name);
    }
    println!();

    let mut curves: Vec<Vec<Vec<f64>>> = Vec::new();
    for policy_name in ["BO", "GBO", "DDPG"] {
        let mut per_rep = Vec::new();
        for rep in 0..reps {
            let seed = 400 + rep * 19;
            let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
            match policy_name {
                "BO" => {
                    let _ = long_bo(seed, false).tune(&mut env);
                }
                "GBO" => {
                    let _ = long_bo(seed, true).tune(&mut env);
                }
                _ => {
                    let _ = long_ddpg(seed).tune(&mut env);
                }
            }
            per_rep.push(trajectory(&env, horizon));
        }
        curves.push(per_rep);
    }

    for i in 0..horizon {
        print!("{:<5}", i + 1);
        for per_rep in &curves {
            let vals: Vec<f64> = per_rep.iter().map(|c| c[i]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            print!(" {:>7.1} [{:>4.1}..{:>4.1}]", mean, min, max);
        }
        println!();
    }
    println!("\npaper shape: GBO fits earlier than BO; DDPG explores low-reward regions");
    println!("first and converges last.");
}
