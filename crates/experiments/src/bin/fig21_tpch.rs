//! Figure 21: TPC-H on Cluster B — per-query runtime under
//! `MaxResourceAllocation` versus under RelM's recommendation. RelM tunes
//! the workload from one profiled execution of the suite (the paper reports
//! 66 minutes cut to 40, a ~40% saving).

use relm_app::Engine;
use relm_cluster::ClusterSpec;
use relm_core::RelmTuner;
use relm_profile::{derive_stats, DerivedStats};
use relm_workloads::{max_resource_allocation, tpch_queries};

fn main() {
    let engine = Engine::new(ClusterSpec::cluster_b());
    let queries = tpch_queries();

    // Profile the whole suite under the default policy; merge statistics by
    // taking the maximum requirement across queries (a workload-level
    // profile).
    let mut merged: Option<DerivedStats> = None;
    let mut default_total = 0.0;
    let mut default_runtimes = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let cfg = max_resource_allocation(engine.cluster(), q);
        let (r, profile) = engine.run(q, &cfg, 42 + i as u64);
        default_total += r.runtime_mins();
        default_runtimes.push(r.runtime_mins());
        let s = derive_stats(&profile);
        merged = Some(match merged {
            None => s,
            Some(m) => {
                // Take the maximum requirement across queries. For M_u only
                // full-GC-backed estimates participate (§4.1: the fallback
                // over-estimates by orders of magnitude and would poison the
                // whole workload's statistics); if *no* query produced one,
                // the conservative fallback of the first query stands.
                let m_u = match (m.m_u_from_full_gc, s.m_u_from_full_gc) {
                    (true, true) => m.m_u.max(s.m_u),
                    (true, false) => m.m_u,
                    (false, true) => s.m_u,
                    (false, false) => m.m_u.max(s.m_u),
                };
                DerivedStats {
                    m_i: m.m_i.max(s.m_i),
                    m_c: m.m_c.max(s.m_c),
                    m_s: m.m_s.max(s.m_s),
                    m_u,
                    m_u_from_full_gc: m.m_u_from_full_gc || s.m_u_from_full_gc,
                    cpu_avg: m.cpu_avg.max(s.cpu_avg),
                    disk_avg: m.disk_avg.max(s.disk_avg),
                    s: m.s.max(s.s),
                    ..m
                }
            }
        });
    }
    let stats = merged.expect("at least one query");

    // One RelM recommendation for the whole workload.
    let mut relm = RelmTuner::default();
    let config = relm
        .recommend_from_stats(engine.cluster(), stats)
        .expect("RelM recommendation for TPC-H");

    println!("Figure 21: TPC-H per-query runtime, default vs RelM (Cluster B)");
    println!("RelM configuration: {config}\n");
    println!(
        "{:>5} {:>10} {:>10} {:>8}",
        "query", "default", "RelM", "saving"
    );
    let mut relm_total = 0.0;
    for (i, q) in queries.iter().enumerate() {
        let (r, _) = engine.run(q, &config, 4_200 + i as u64);
        relm_total += r.runtime_mins();
        println!(
            "{:>5} {:>9.2}m {:>9.2}m {:>7.0}%",
            format!("Q{}", i + 1),
            default_runtimes[i],
            r.runtime_mins(),
            (1.0 - r.runtime_mins() / default_runtimes[i]) * 100.0
        );
    }
    println!(
        "\ntotal: default {:.0} min -> RelM {:.0} min ({:.0}% saving; paper: 66 -> 40, 40%)",
        default_total,
        relm_total,
        (1.0 - relm_total / default_total) * 100.0
    );
}
