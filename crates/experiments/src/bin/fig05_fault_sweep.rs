//! Figure 5 extension: how each tuning policy degrades as the substrate
//! gets faultier.
//!
//! Sweeps a seeded fault plan (container kills, node loss, stragglers,
//! profile corruption — `FaultConfig::uniform`) over rates 0%, 5%, 10%,
//! and 20%, runs every policy on WordCount under the standard retry
//! policy, and writes one JSONL record per (rate, policy) combination to
//! `results/fig05_fault_sweep.jsonl`.
//!
//! The (rate, policy) cells are enumerated up front and executed on a
//! bounded worker pool (`--workers N`, default 4) with an index-ordered
//! merge, so the output file is **byte-identical at any worker count** —
//! `scripts/check.sh` asserts 1 vs 8. Each cell builds its own isolated
//! observability handle and environment; nothing crosses cells.
//!
//! Evaluations are memoized in a shared content-addressed cache persisted
//! at `results/.evalcache/fig05_fault_sweep.jsonl` (override with
//! `--cache-file PATH`, disable with `--no-cache`): a warm rerun replays
//! every evaluation from the cache and must produce the identical output
//! file — `scripts/check.sh` asserts that too, along with a ≥3× speedup
//! on the `sweep_ms=` line this binary prints.
//!
//! The output contains only simulated quantities — no wall-clock values —
//! so two invocations produce byte-identical files. The binary also
//! self-checks the observability counters: the total `faults.injected`
//! must equal the sum of its per-kind counters, and the abort-cause
//! histogram must reconcile with `env.retries` plus the number of censored
//! observations — live *and* under cache replay. A mismatch aborts the
//! process.

use relm_app::Engine;
use relm_bo::{BayesOpt, BoConfig};
use relm_cluster::ClusterSpec;
use relm_ddpg::DdpgTuner;
use relm_experiments::{parse_workers, results_dir, run_sharded};
use relm_faults::{AbortCause, FaultConfig, FaultPlan};
use relm_obs::Obs;
use relm_tune::{DefaultPolicy, EvalStore, RandomSearch, Tuner, TuningEnv};
use relm_workloads::wordcount;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// One (fault rate, policy) cell of the sweep.
#[derive(Debug, Serialize, Deserialize)]
struct SweepRecord {
    fault_rate: f64,
    policy: String,
    completed: bool,
    evaluations: usize,
    censored: usize,
    abort_causes: Vec<(String, u32)>,
    retries: u32,
    retry_time_ms: f64,
    stress_time_ms: f64,
    injected_faults: u64,
    best_score_mins: Option<f64>,
}

const POLICY_NAMES: [&str; 6] = ["Default", "Random", "RelM", "BO", "GBO", "DDPG"];

fn tuner_for(name: &str, seed: u64) -> Box<dyn Tuner> {
    let short_bo = BoConfig {
        max_iterations: 6,
        min_adaptive_samples: 4,
        ..BoConfig::default()
    };
    match name {
        "Default" => Box::new(DefaultPolicy),
        "Random" => Box::new(RandomSearch::new(6, seed)),
        "RelM" => Box::<relm_core::RelmTuner>::default(),
        "BO" => Box::new(BayesOpt::new(seed).with_config(short_bo)),
        "GBO" => Box::new(BayesOpt::guided(seed).with_config(short_bo)),
        "DDPG" => Box::new(DdpgTuner::new(seed).with_budget(5)),
        other => panic!("unknown policy {other}"),
    }
}

fn run_cell(fault_rate: f64, plan_seed: u64, name: &str, cache: Option<&EvalStore>) -> SweepRecord {
    let mut tuner = tuner_for(name, 7);
    let obs = Obs::enabled();
    let mut engine = Engine::new(ClusterSpec::cluster_a()).with_obs(obs.clone());
    if fault_rate > 0.0 {
        engine = engine.with_faults(FaultPlan::new(plan_seed, FaultConfig::uniform(fault_rate)));
    }
    let mut env = TuningEnv::new(engine, wordcount(), 42);
    if let Some(cache) = cache {
        env = env.with_cache(cache.clone());
    }
    let completed = tuner.tune(&mut env).is_ok();

    // Counter self-check 1: the fault total must equal its parts.
    let injected = obs.counter_value("faults.injected");
    let parts: f64 = [
        "faults.injected.container_kill",
        "faults.injected.node_loss",
        "faults.injected.straggler",
        "faults.injected.profile_corruption",
    ]
    .iter()
    .map(|c| obs.counter_value(c))
    .sum();
    assert_eq!(
        injected, parts,
        "{name}@{fault_rate}: faults.injected does not reconcile with per-kind counters"
    );

    // Counter self-check 2: every abort in the cause histogram was either
    // retried away or settled as a censored observation.
    let abort_histogram: f64 = AbortCause::ALL
        .iter()
        .map(|c| obs.counter_value(&format!("env.aborts.{c}")))
        .sum();
    let retries = obs.counter_value("env.retries");
    let censored = env.history().iter().filter(|o| o.result.aborted).count();
    assert_eq!(
        abort_histogram as u64,
        retries as u64 + censored as u64,
        "{name}@{fault_rate}: abort-cause histogram does not reconcile with retries + censored"
    );
    assert_eq!(env.total_retries() as f64, retries);

    let abort_causes: Vec<(String, u32)> = AbortCause::ALL
        .iter()
        .filter_map(|c| {
            let n = env
                .history()
                .iter()
                .filter(|o| o.result.aborted && o.result.abort_cause == Some(*c))
                .count() as u32;
            (n > 0).then(|| (c.as_str().to_string(), n))
        })
        .collect();

    SweepRecord {
        fault_rate,
        policy: name.to_string(),
        completed,
        evaluations: env.evaluations(),
        censored,
        abort_causes,
        retries: env.total_retries(),
        retry_time_ms: env.retry_time().as_ms(),
        stress_time_ms: env.stress_time().as_ms(),
        injected_faults: injected as u64,
        best_score_mins: env.best().map(|o| o.score_mins),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = parse_workers(&args, 4);
    let use_cache = !args.iter().any(|a| a == "--no-cache");
    let cache_file: PathBuf = args
        .iter()
        .position(|a| a == "--cache-file")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/.evalcache/fig05_fault_sweep.jsonl"));

    let cache = use_cache.then(EvalStore::new);
    if let Some(cache) = &cache {
        if cache_file.exists() {
            let loaded = relm_evalcache::store::load(cache, &cache_file)
                .expect("evaluation cache file is readable and verified");
            println!(
                "evalcache: loaded {loaded} entries from {}",
                cache_file.display()
            );
        }
    }

    let rates = [0.0, 0.05, 0.10, 0.20];
    // Cell order defines output order; the sharded merge preserves it.
    let cells: Vec<(f64, u64, &str)> = rates
        .iter()
        .enumerate()
        .flat_map(|(ri, &rate)| {
            POLICY_NAMES
                .iter()
                .map(move |&name| (rate, 1000 + ri as u64, name))
        })
        .collect();

    println!("Figure 5 extension: tuning under injected faults (WordCount)\n");
    let sweep_start = Instant::now();
    let records = run_sharded(cells, workers, |_, &(rate, plan_seed, name)| {
        run_cell(rate, plan_seed, name, cache.as_ref())
    });
    let sweep_ms = sweep_start.elapsed().as_secs_f64() * 1e3;

    println!(
        "{:<6} {:<8} {:>5} {:>6} {:>8} {:>8} {:>10} {:>10}",
        "rate", "policy", "evals", "cens", "retries", "faults", "stress(m)", "best(m)"
    );
    let mut lines = String::new();
    for (i, rec) in records.iter().enumerate() {
        println!(
            "{:<6} {:<8} {:>5} {:>6} {:>8} {:>8} {:>10.1} {:>10}",
            format!("{:.0}%", rec.fault_rate * 100.0),
            rec.policy,
            rec.evaluations,
            rec.censored,
            rec.retries,
            rec.injected_faults,
            rec.stress_time_ms / 60_000.0,
            rec.best_score_mins
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
        if (i + 1) % POLICY_NAMES.len() == 0 {
            println!();
        }
        lines.push_str(&serde_json::to_string(rec).expect("record serializes"));
        lines.push('\n');
    }

    let dir = results_dir().expect("results dir");
    let path = dir.join("fig05_fault_sweep.jsonl");
    std::fs::write(&path, lines).expect("write sweep results");
    println!("counter reconciliation: OK (totals match per-kind counters and abort histogram)");
    println!("wrote {}", path.display());

    if let Some(cache) = &cache {
        relm_evalcache::store::save(cache, &cache_file).expect("persist evaluation cache");
        let stats = cache.stats();
        println!(
            "evalcache: hits={} misses={} inserts={} entries={} file={}",
            stats.hits,
            stats.misses,
            stats.inserts,
            cache.len(),
            cache_file.display()
        );
    }
    println!("workers={workers} sweep_ms={sweep_ms:.0}");
    println!("\npaper shape: the white-box policies keep recommending near-optimal configs");
    println!("under modest fault rates because censored observations are penalty-scored,");
    println!("not trusted; black-box policies pay for faults with extra stress time.");
}
