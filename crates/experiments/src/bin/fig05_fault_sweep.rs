//! Figure 5 extension: how each tuning policy degrades as the substrate
//! gets faultier.
//!
//! Sweeps a seeded fault plan (container kills, node loss, stragglers,
//! profile corruption — `FaultConfig::uniform`) over rates 0%, 5%, 10%,
//! and 20%, runs every policy on WordCount under the standard retry
//! policy, and writes one JSONL record per (rate, policy) combination to
//! `results/fig05_fault_sweep.jsonl`.
//!
//! The output contains only simulated quantities — no wall-clock values —
//! so two invocations produce byte-identical files. `scripts/check.sh`
//! relies on this: it runs the sweep twice and diffs the outputs as the
//! deterministic-replay smoke test.
//!
//! The binary also self-checks the observability counters: the total
//! `faults.injected` must equal the sum of its per-kind counters, and the
//! abort-cause histogram must reconcile with `env.retries` plus the number
//! of censored observations. A mismatch aborts the process.

use relm_app::Engine;
use relm_bo::{BayesOpt, BoConfig};
use relm_cluster::ClusterSpec;
use relm_ddpg::DdpgTuner;
use relm_experiments::results_dir;
use relm_faults::{AbortCause, FaultConfig, FaultPlan};
use relm_obs::Obs;
use relm_tune::{DefaultPolicy, RandomSearch, Tuner, TuningEnv};
use relm_workloads::wordcount;
use serde::{Deserialize, Serialize};

/// One (fault rate, policy) cell of the sweep.
#[derive(Debug, Serialize, Deserialize)]
struct SweepRecord {
    fault_rate: f64,
    policy: String,
    completed: bool,
    evaluations: usize,
    censored: usize,
    abort_causes: Vec<(String, u32)>,
    retries: u32,
    retry_time_ms: f64,
    stress_time_ms: f64,
    injected_faults: u64,
    best_score_mins: Option<f64>,
}

fn policies(seed: u64) -> Vec<(&'static str, Box<dyn Tuner>)> {
    let short_bo = BoConfig {
        max_iterations: 6,
        min_adaptive_samples: 4,
        ..BoConfig::default()
    };
    vec![
        ("Default", Box::new(DefaultPolicy)),
        ("Random", Box::new(RandomSearch::new(6, seed))),
        ("RelM", Box::<relm_core::RelmTuner>::default()),
        ("BO", Box::new(BayesOpt::new(seed).with_config(short_bo))),
        (
            "GBO",
            Box::new(BayesOpt::guided(seed).with_config(short_bo)),
        ),
        ("DDPG", Box::new(DdpgTuner::new(seed).with_budget(5))),
    ]
}

fn run_cell(fault_rate: f64, plan_seed: u64, name: &str, mut tuner: Box<dyn Tuner>) -> SweepRecord {
    let obs = Obs::enabled();
    let mut engine = Engine::new(ClusterSpec::cluster_a()).with_obs(obs.clone());
    if fault_rate > 0.0 {
        engine = engine.with_faults(FaultPlan::new(plan_seed, FaultConfig::uniform(fault_rate)));
    }
    let mut env = TuningEnv::new(engine, wordcount(), 42);
    let completed = tuner.tune(&mut env).is_ok();

    // Counter self-check 1: the fault total must equal its parts.
    let injected = obs.counter_value("faults.injected");
    let parts: f64 = [
        "faults.injected.container_kill",
        "faults.injected.node_loss",
        "faults.injected.straggler",
        "faults.injected.profile_corruption",
    ]
    .iter()
    .map(|c| obs.counter_value(c))
    .sum();
    assert_eq!(
        injected, parts,
        "{name}@{fault_rate}: faults.injected does not reconcile with per-kind counters"
    );

    // Counter self-check 2: every abort in the cause histogram was either
    // retried away or settled as a censored observation.
    let abort_histogram: f64 = AbortCause::ALL
        .iter()
        .map(|c| obs.counter_value(&format!("env.aborts.{c}")))
        .sum();
    let retries = obs.counter_value("env.retries");
    let censored = env.history().iter().filter(|o| o.result.aborted).count();
    assert_eq!(
        abort_histogram as u64,
        retries as u64 + censored as u64,
        "{name}@{fault_rate}: abort-cause histogram does not reconcile with retries + censored"
    );
    assert_eq!(env.total_retries() as f64, retries);

    let abort_causes: Vec<(String, u32)> = AbortCause::ALL
        .iter()
        .filter_map(|c| {
            let n = env
                .history()
                .iter()
                .filter(|o| o.result.aborted && o.result.abort_cause == Some(*c))
                .count() as u32;
            (n > 0).then(|| (c.as_str().to_string(), n))
        })
        .collect();

    SweepRecord {
        fault_rate,
        policy: name.to_string(),
        completed,
        evaluations: env.evaluations(),
        censored,
        abort_causes,
        retries: env.total_retries(),
        retry_time_ms: env.retry_time().as_ms(),
        stress_time_ms: env.stress_time().as_ms(),
        injected_faults: injected as u64,
        best_score_mins: env.best().map(|o| o.score_mins),
    }
}

fn main() {
    let rates = [0.0, 0.05, 0.10, 0.20];
    println!("Figure 5 extension: tuning under injected faults (WordCount)\n");
    println!(
        "{:<6} {:<8} {:>5} {:>6} {:>8} {:>8} {:>10} {:>10}",
        "rate", "policy", "evals", "cens", "retries", "faults", "stress(m)", "best(m)"
    );

    let mut lines = String::new();
    for (ri, &rate) in rates.iter().enumerate() {
        for (name, tuner) in policies(7) {
            let rec = run_cell(rate, 1000 + ri as u64, name, tuner);
            println!(
                "{:<6} {:<8} {:>5} {:>6} {:>8} {:>8} {:>10.1} {:>10}",
                format!("{:.0}%", rate * 100.0),
                rec.policy,
                rec.evaluations,
                rec.censored,
                rec.retries,
                rec.injected_faults,
                rec.stress_time_ms / 60_000.0,
                rec.best_score_mins
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".into()),
            );
            lines.push_str(&serde_json::to_string(&rec).expect("record serializes"));
            lines.push('\n');
        }
        println!();
    }

    let dir = results_dir().expect("results dir");
    let path = dir.join("fig05_fault_sweep.jsonl");
    std::fs::write(&path, lines).expect("write sweep results");
    println!("counter reconciliation: OK (totals match per-kind counters and abort histogram)");
    println!("wrote {}", path.display());
    println!("\npaper shape: the white-box policies keep recommending near-optimal configs");
    println!("under modest fault rates because censored observations are penalty-scored,");
    println!("not trusted; black-box policies pay for faults with extra stress time.");
}
