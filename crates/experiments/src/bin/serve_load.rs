//! Load generator for `relm-serve`: drives a fleet of concurrent tuning
//! sessions over the TCP frontend and verifies the service's headline
//! guarantees end to end.
//!
//! ```text
//! serve_load [--workers N] [--sessions N] [--steps N] [--guided N]
//!            [--clients N] [--out PATH] [--checkpoint-dir PATH]
//!            [--scrape] [--flightrec-dir PATH]
//!            [--fleet N] [--fleet-kill K]
//!            [--soak] [--evict-after N] [--evict-dir PATH]
//!            [--min-workers N] [--max-workers N] [--slo-p99-ms F]
//!            [--metrics-out PATH]
//! ```
//!
//! `--soak` switches to an overload-and-recover schedule that exercises
//! the heavy-traffic hardening end to end: clients run three barrier-
//! separated phases — (A) drive the first half of the sessions to
//! completion, (B) flood the second half so the evaluation-count epoch
//! clock advances far enough that every phase-A session is evicted to
//! its checkpoint (`--evict-after` epochs idle), then (C) collect
//! `Result` for *every* session, transparently resuming the evicted
//! ones. Sessions cycle priority classes (normal/high/low by index), so
//! graduated admission pushes the low class back first while the
//! deficit-weighted scheduler keeps high-priority work moving. With
//! `--min-workers`/`--max-workers` the pool autoscales: it grows under
//! the phase backlogs and retires back to the floor once the queue runs
//! dry, which the binary waits for before draining. The run then
//! reconciles exactly: zero lost sessions, `evictions == resumes >=
//! sessions/2`, drain tallies equal to the `serve.evictions` /
//! `serve.resumes` / `serve.autoscale.*` counters, per-class rejection
//! counters summing to `serve.rejected.overloaded`, and (with
//! `--slo-p99-ms`) the `serve.slo.latency_p99_ms` gauge within bound.
//! The JSONL stays byte-identical to a plain run of the same
//! `--sessions`/`--steps`: eviction, resume, and autoscaling never touch
//! simulated history.
//!
//! `--fleet N` switches the service into fleet mode
//! ([`relm_serve::Execution::External`]): no in-process evaluation pool;
//! instead a [`relm_fleet::Center`] farms every evaluation to N worker
//! loops and commits their outcomes through the cache-replay path.
//! `--fleet-kill K` arms K of those workers to crash silently right
//! after acking their first task — the monitor detects the silence,
//! reassigns, and the run must still reconcile exactly: the JSONL output
//! stays **byte-identical** to a plain `--workers` run, the drain
//! tally's `reassignments` equals K and agrees with the
//! `fleet.reassignments` counter, and every admitted evaluation commits
//! through exactly one door.
//!
//! `--scrape` starts a scraper thread that hammers the `Metrics` endpoint
//! over its own TCP connection for the whole run and verifies every
//! response is internally consistent *mid-load*: the Prometheus text
//! parses back to exactly the structured snapshot it shipped with,
//! counters never move backwards between scrapes, and the
//! scrape-ordering invariants hold (`serve.slo.evaluations >=
//! serve.evaluations`, evaluate-histogram count `>= serve.evaluations`).
//! After the drain, one final scrape must reconcile **exactly** against
//! the drain report. `--flightrec-dir` enables the flight recorder; the
//! binary then checks the drain froze one readable dump per session.
//!
//! `--guided N` appends N GP-proposed evaluations per session after the
//! sampled bootstrap (`StepGuided`): the client joins the session so the
//! history is settled, then asks the server to propose. Guided proposals
//! are a pure function of the settled history, so the output file stays
//! byte-identical across `--workers` / `--clients` — now exercising the
//! surrogate hot path end to end.
//!
//! Each session's spec is a pure function of its index (workload cycles
//! through the benchmark suite, seeds derive from the index, every third
//! session runs under a seeded fault plan), so the exported histories are
//! too: the JSONL written to `--out` contains only simulated quantities,
//! keyed and sorted by session index, and is **byte-identical** for any
//! `--workers` / `--clients` values. `scripts/check.sh` runs this binary
//! with 1 worker and 8 workers and diffs the outputs.
//!
//! Before exiting, the binary drains the service and reconciles the
//! books: every admitted evaluation completed exactly once, every session
//! was checkpointed, and the observability counters agree with the
//! protocol-level tallies. Any mismatch aborts the process. Wall-clock
//! throughput and latency quantiles go to stdout only.

use relm_experiments::results_dir;
use relm_faults::{FaultConfig, WorkerFaultConfig, WorkerFaultPlan};
use relm_fleet::{run_worker, Center, MonitorConfig, WorkerConfig, WorkerExit, WorkerReport};
use relm_obs::{parse_prometheus, read_dump, MetricsSnapshot, Obs};
use relm_serve::{
    Execution, Priority, Request, Response, ServeConfig, Service, SessionSpec, TcpClient, TcpServer,
};
use relm_tune::Observation;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const WORKLOADS: [&str; 5] = ["WordCount", "SortByKey", "K-means", "SVM", "PageRank"];

/// One session's exported history — simulated quantities only, keyed by
/// the spec index so the file is independent of scheduling.
#[derive(Debug, Serialize, Deserialize)]
struct SessionRecord {
    index: u64,
    workload: String,
    faulty: bool,
    evaluations: usize,
    censored: usize,
    best_score_mins: f64,
    history: Vec<Observation>,
}

/// The session spec for fleet index `i` — a pure function of `i`.
/// Priority cycles through the classes (the faulty `i % 3 == 0` sessions
/// land in the normal class), so every run exercises the deficit-weighted
/// scheduler and graduated admission without touching simulated history.
fn spec_for(i: u64) -> SessionSpec {
    let priority = match i % 3 {
        0 => Priority::Normal,
        1 => Priority::High,
        _ => Priority::Low,
    };
    let mut spec =
        SessionSpec::named(WORKLOADS[(i % 5) as usize], 9000 + 23 * i).with_priority(priority);
    if i.is_multiple_of(3) {
        spec = spec.with_faults(400 + i, FaultConfig::uniform(0.08));
    }
    spec
}

struct Args {
    workers: usize,
    sessions: u64,
    steps: u32,
    guided: u32,
    clients: usize,
    out: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    scrape: bool,
    flightrec_dir: Option<PathBuf>,
    fleet: usize,
    fleet_kill: usize,
    soak: bool,
    evict_after: usize,
    evict_dir: Option<PathBuf>,
    min_workers: usize,
    max_workers: usize,
    slo_p99_ms: f64,
    metrics_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 4,
        sessions: 16,
        steps: 4,
        guided: 0,
        clients: 4,
        out: None,
        checkpoint_dir: None,
        scrape: false,
        flightrec_dir: None,
        fleet: 0,
        fleet_kill: 0,
        soak: false,
        evict_after: 0,
        evict_dir: None,
        min_workers: 0,
        max_workers: 0,
        slo_p99_ms: 0.0,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--workers" => args.workers = value().parse().expect("--workers"),
            "--sessions" => args.sessions = value().parse().expect("--sessions"),
            "--steps" => args.steps = value().parse().expect("--steps"),
            "--guided" => args.guided = value().parse().expect("--guided"),
            "--clients" => args.clients = value().parse().expect("--clients"),
            "--out" => args.out = Some(PathBuf::from(value())),
            "--checkpoint-dir" => args.checkpoint_dir = Some(PathBuf::from(value())),
            "--scrape" => args.scrape = true,
            "--flightrec-dir" => args.flightrec_dir = Some(PathBuf::from(value())),
            "--fleet" => args.fleet = value().parse().expect("--fleet"),
            "--fleet-kill" => args.fleet_kill = value().parse().expect("--fleet-kill"),
            "--soak" => args.soak = true,
            "--evict-after" => args.evict_after = value().parse().expect("--evict-after"),
            "--evict-dir" => args.evict_dir = Some(PathBuf::from(value())),
            "--min-workers" => args.min_workers = value().parse().expect("--min-workers"),
            "--max-workers" => args.max_workers = value().parse().expect("--max-workers"),
            "--slo-p99-ms" => args.slo_p99_ms = value().parse().expect("--slo-p99-ms"),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value())),
            other => panic!("unknown flag {other}"),
        }
    }
    args.clients = args.clients.clamp(1, args.sessions.max(1) as usize);
    assert!(
        args.guided == 0 || args.steps >= 4,
        "--guided needs a bootstrap of at least 4 steps"
    );
    assert!(
        args.fleet_kill == 0 || args.fleet_kill < args.fleet,
        "--fleet-kill needs at least one surviving worker (--fleet > K)"
    );
    if args.soak {
        assert!(args.guided == 0, "--soak drives sampled steps only");
        assert!(args.fleet == 0, "--soak uses the in-process pool");
        assert!(args.sessions >= 4, "--soak needs at least 4 sessions");
        assert!(
            args.evict_after > 0,
            "--soak needs --evict-after (the idle epoch window)"
        );
        assert!(
            args.evict_dir.is_some() || args.checkpoint_dir.is_some(),
            "--soak needs --evict-dir (or --checkpoint-dir) for eviction checkpoints"
        );
        // Phase B must advance the epoch clock past the idle window for
        // every phase-A session, or the eviction guarantee goes soft.
        let phase_b_evals = (args.sessions - args.sessions / 2) as usize * args.steps as usize;
        assert!(
            args.evict_after <= phase_b_evals,
            "--evict-after {} exceeds the phase-B epoch budget {phase_b_evals}",
            args.evict_after
        );
        if args.max_workers > 0 {
            assert!(
                args.steps as usize > relm_serve::AUTOSCALE_BACKLOG_FACTOR,
                "--soak autoscaling needs --steps > {} so one batch triggers growth",
                relm_serve::AUTOSCALE_BACKLOG_FACTOR
            );
        }
    }
    args
}

/// One client thread: drives every fleet index congruent to `client` over
/// its own TCP connection, returns the per-session records.
fn drive_client(
    addr: std::net::SocketAddr,
    client: usize,
    clients: usize,
    sessions: u64,
    steps: u32,
    guided: u32,
    fleet: bool,
) -> Vec<SessionRecord> {
    let mut conn = TcpClient::connect(addr).expect("connect load client");
    let mut records = Vec::new();
    for index in (client as u64..sessions).step_by(clients) {
        let spec = spec_for(index);
        let name = match conn
            .request(&Request::CreateSession { spec: spec.clone() })
            .expect("create request")
        {
            Response::SessionCreated { session } => session,
            other => panic!("create rejected: {other:?}"),
        };
        // Admission control may push back under a small global queue;
        // back off and retry until the batch is accepted whole.
        loop {
            match conn
                .request(&Request::StepAuto {
                    session: name.clone(),
                    evals: steps,
                })
                .expect("step request")
            {
                Response::Accepted { enqueued, .. } => {
                    assert_eq!(enqueued, steps as usize);
                    break;
                }
                Response::Overloaded { .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                other => panic!("step rejected: {other:?}"),
            }
        }
        if guided > 0 {
            // Settle the bootstrap, then ask the server to propose. A
            // rejected guided batch never advances the proposal stream, so
            // the retry loop cannot skew the history.
            match conn
                .request(&Request::Join {
                    session: name.clone(),
                })
                .expect("join request")
            {
                Response::Status(_) => {}
                other => panic!("join rejected: {other:?}"),
            }
            loop {
                match conn
                    .request(&Request::StepGuided {
                        session: name.clone(),
                        evals: guided,
                    })
                    .expect("guided step request")
                {
                    Response::Accepted { enqueued, .. } => {
                        assert_eq!(enqueued, guided as usize);
                        break;
                    }
                    Response::Overloaded { .. } => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    other => panic!("guided step rejected: {other:?}"),
                }
            }
        }
        match conn
            .request(&Request::Result {
                session: name.clone(),
            })
            .expect("result request")
        {
            Response::ResultReady { history, .. } => {
                assert_eq!(
                    history.len(),
                    (steps + guided) as usize,
                    "lost evaluations on {name}"
                );
                records.push(SessionRecord {
                    index,
                    workload: spec.workload.clone(),
                    faulty: spec.faults.is_some(),
                    evaluations: history.len(),
                    censored: history.iter().filter(|o| o.is_censored()).count(),
                    best_score_mins: history
                        .iter()
                        .map(|o| o.score_mins)
                        .fold(f64::INFINITY, f64::min),
                    history,
                });
            }
            other => panic!("result rejected: {other:?}"),
        }
        // Live cost attribution must agree with the settled history: the
        // session did real (simulated) work, waited a non-negative time
        // in queue, and — with no cache configured — replayed nothing.
        match conn
            .request(&Request::Status {
                session: name.clone(),
            })
            .expect("status request")
        {
            Response::Status(status) => {
                let record = records.last().expect("status follows result");
                assert_eq!(status.completed, record.evaluations, "status drift");
                assert_eq!(status.censored, record.censored, "censoring drift");
                assert!(
                    status.stress_time_ms > 0.0,
                    "stress time must accrue: {status:?}"
                );
                assert!(status.queue_wait_ms >= 0.0);
                if fleet {
                    // Fleet commits replay remote outcomes through the
                    // shared cache, so every completion is a hit.
                    assert_eq!(
                        status.evalcache_hits, status.completed as u64,
                        "fleet commits all replay through the cache"
                    );
                } else {
                    assert_eq!(status.evalcache_hits, 0, "no cache configured");
                }
            }
            other => panic!("status rejected: {other:?}"),
        }
    }
    records
}

/// Creates session `index`, drives its sampled steps through admission
/// pushback, and joins it idle. Returns the session's wire name.
fn create_and_settle(conn: &mut TcpClient, index: u64, steps: u32) -> String {
    let spec = spec_for(index);
    let name = match conn
        .request(&Request::CreateSession { spec })
        .expect("create request")
    {
        Response::SessionCreated { session } => session,
        other => panic!("create rejected: {other:?}"),
    };
    // Graduated admission pushes the low class back well before the
    // global bound; retry until the batch lands whole.
    loop {
        match conn
            .request(&Request::StepAuto {
                session: name.clone(),
                evals: steps,
            })
            .expect("step request")
        {
            Response::Accepted { enqueued, .. } => {
                assert_eq!(enqueued, steps as usize);
                break;
            }
            Response::Overloaded { .. } => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            other => panic!("step rejected: {other:?}"),
        }
    }
    match conn
        .request(&Request::Join {
            session: name.clone(),
        })
        .expect("join request")
    {
        Response::Status(status) => assert_eq!(status.completed, steps as usize),
        other => panic!("join rejected: {other:?}"),
    }
    name
}

/// One soak client: phase A settles the first half of its sessions, phase
/// B floods the second half (advancing the epoch clock so phase-A
/// sessions evict), phase C collects every result — transparently
/// resuming the evicted sessions. The barriers make the phases global, so
/// the eviction guarantee holds for *all* phase-A sessions, not just this
/// client's.
fn drive_soak_client(
    addr: std::net::SocketAddr,
    client: usize,
    clients: usize,
    sessions: u64,
    steps: u32,
    barrier: &Barrier,
) -> Vec<SessionRecord> {
    let mut conn = TcpClient::connect(addr).expect("connect soak client");
    let half = sessions / 2;
    let own = |lo: u64, hi: u64| (lo..hi).filter(move |i| *i % clients as u64 == client as u64);
    let mut names: Vec<(u64, String)> = Vec::new();
    for index in own(0, half) {
        names.push((index, create_and_settle(&mut conn, index, steps)));
    }
    barrier.wait();
    for index in own(half, sessions) {
        names.push((index, create_and_settle(&mut conn, index, steps)));
    }
    barrier.wait();
    let mut records = Vec::new();
    for (index, name) in names {
        let spec = spec_for(index);
        match conn
            .request(&Request::Result {
                session: name.clone(),
            })
            .expect("result request")
        {
            Response::ResultReady { history, .. } => {
                assert_eq!(history.len(), steps as usize, "lost evaluations on {name}");
                records.push(SessionRecord {
                    index,
                    workload: spec.workload.clone(),
                    faulty: spec.faults.is_some(),
                    evaluations: history.len(),
                    censored: history.iter().filter(|o| o.is_censored()).count(),
                    best_score_mins: history
                        .iter()
                        .map(|o| o.score_mins)
                        .fold(f64::INFINITY, f64::min),
                    history,
                });
            }
            other => panic!("result rejected: {other:?}"),
        }
        // `Result` resumed the session if it was evicted: the status must
        // show it live again with its full tally intact.
        match conn
            .request(&Request::Status {
                session: name.clone(),
            })
            .expect("status request")
        {
            Response::Status(status) => {
                assert!(!status.evicted, "{name} still evicted after Result");
                assert_eq!(status.completed, steps as usize, "status drift on {name}");
                assert_eq!(status.evalcache_hits, 0, "no cache configured");
                assert!(status.queue_wait_ms >= 0.0);
            }
            other => panic!("status rejected: {other:?}"),
        }
    }
    records
}

fn counter_of(snapshot: &MetricsSnapshot, name: &str) -> Option<f64> {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
}

fn gauge_of(snapshot: &MetricsSnapshot, name: &str) -> Option<f64> {
    snapshot
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
}

/// Scrapes `Metrics` over one response-checked connection, verifying
/// every scrape's internal consistency, until `stop` flips. Returns the
/// scrape count and the eval counter seen on the last scrape.
fn scrape_loop(addr: std::net::SocketAddr, stop: &AtomicBool) -> (usize, f64) {
    let mut conn = TcpClient::connect(addr).expect("connect scraper");
    let mut scrapes = 0usize;
    let mut last_evals = 0.0f64;
    loop {
        let done = stop.load(Ordering::Relaxed);
        let (snapshot, expo) = match conn.request(&Request::Metrics).expect("metrics request") {
            Response::Metrics { snapshot, expo } => (snapshot, expo),
            other => panic!("metrics rejected: {other:?}"),
        };
        // The text half is a faithful projection of the structured half.
        assert_eq!(
            parse_prometheus(&expo).expect("exposition parses"),
            snapshot,
            "Prometheus text diverged from the JSON snapshot"
        );
        let evals = counter_of(&snapshot, "serve.evaluations").unwrap_or(0.0);
        assert!(
            evals >= last_evals,
            "serve.evaluations went backwards: {last_evals} -> {evals}"
        );
        last_evals = evals;
        if evals > 0.0 {
            // Write ordering (histogram, then SLO tracker, then the
            // cumulative counter) + name-sorted read order make these
            // hold in *every* scrape, including mid-evaluation ones.
            let slo = counter_of(&snapshot, "serve.slo.evaluations")
                .expect("slo counter present once evals ran");
            assert!(slo >= evals, "slo counter behind: {slo} < {evals}");
            let hist = snapshot
                .histograms
                .iter()
                .find(|h| h.name == "serve.evaluate_ms")
                .expect("evaluate histogram present once evals ran");
            assert!(hist.count as f64 >= evals, "histogram behind the counter");
        }
        scrapes += 1;
        if done {
            return (scrapes, last_evals);
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

fn main() {
    let args = parse_args();
    let obs = Obs::enabled();
    let service = Arc::new(Service::start(
        ServeConfig {
            workers: args.workers,
            min_workers: args.min_workers,
            max_workers: args.max_workers,
            execution: if args.fleet > 0 {
                Execution::External
            } else {
                Execution::InProcess
            },
            max_sessions: args.sessions as usize,
            session_queue_limit: args.steps.max(args.guided) as usize,
            global_queue_limit: (args.steps as usize) * (args.sessions as usize).min(64),
            checkpoint_dir: args.checkpoint_dir.clone(),
            evict_after_evals: args.evict_after,
            evict_dir: args.evict_dir.clone(),
            flightrec_dir: args.flightrec_dir.clone(),
            ..ServeConfig::default()
        },
        obs.clone(),
    ));
    // Fleet mode: a center routes every evaluation to in-process worker
    // loops (same loop the fleet_worker binary runs, minus the socket).
    // The death timeout (500ms) is far above any legitimate in-process
    // stall, so the only deaths are the K armed kills — which keeps
    // `fleet.reassignments` deterministic.
    let center = (args.fleet > 0).then(|| {
        Center::start(
            Arc::clone(&service),
            MonitorConfig {
                heartbeat_ms: 20,
                missed_threshold: 25,
            },
        )
    });
    let fleet_stop = Arc::new(AtomicBool::new(false));
    let mut fleet_threads = Vec::new();
    // Armed workers start first: each acks one task and dies silently.
    for k in 0..args.fleet_kill {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&fleet_stop);
        fleet_threads.push(std::thread::spawn(move || {
            let config = WorkerConfig::named(format!("lw-kill-{k}"))
                .with_faults(WorkerFaultPlan::new(
                    7000 + k as u64,
                    WorkerFaultConfig {
                        kill_rate: 1.0,
                        ..WorkerFaultConfig::off()
                    },
                ))
                .with_heartbeat_ms(10);
            run_worker(|req| Ok(service.handle(req)), &config, &stop)
        }));
    }
    let server = TcpServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind frontend");
    let addr = server.addr();

    // The concurrent scraper: proves the metrics plane is consistent
    // *while* the load runs, not just at the end.
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = args.scrape.then(|| {
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || scrape_loop(addr, &stop))
    });

    let started = Instant::now();
    let phase_barrier = Arc::new(Barrier::new(args.clients));
    let threads: Vec<_> = (0..args.clients)
        .map(|c| {
            let (clients, sessions, steps, guided, fleet) = (
                args.clients,
                args.sessions,
                args.steps,
                args.guided,
                args.fleet > 0,
            );
            let barrier = Arc::clone(&phase_barrier);
            let soak = args.soak;
            std::thread::spawn(move || {
                if soak {
                    drive_soak_client(addr, c, clients, sessions, steps, &barrier)
                } else {
                    drive_client(addr, c, clients, sessions, steps, guided, fleet)
                }
            })
        })
        .collect();
    if args.fleet > 0 {
        // With kills armed, hold the survivors back until every armed
        // worker has taken a task, died, and been detected — so each kill
        // contributes exactly one reassignment and none goes hungry.
        if args.fleet_kill > 0 {
            let deadline = Instant::now() + std::time::Duration::from_secs(30);
            while obs.counter_value("fleet.reassignments") < args.fleet_kill as f64 {
                assert!(
                    Instant::now() < deadline,
                    "armed workers never died: reassignments={}",
                    obs.counter_value("fleet.reassignments")
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        for w in 0..args.fleet - args.fleet_kill {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&fleet_stop);
            fleet_threads.push(std::thread::spawn(move || {
                run_worker(
                    |req| Ok(service.handle(req)),
                    &WorkerConfig::named(format!("lw-{w}")).with_heartbeat_ms(10),
                    &stop,
                )
            }));
        }
    }
    let mut records: Vec<SessionRecord> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread panicked"))
        .collect();
    records.sort_by_key(|r| r.index);
    let elapsed = started.elapsed().as_secs_f64();

    // Every client got its Result, so every evaluation is committed: the
    // fleet can retire before the drain (an empty fleet also proves the
    // drain needs no workers to run reassignment limbo dry).
    fleet_stop.store(true, Ordering::Relaxed);
    let fleet_reports: Vec<WorkerReport> = fleet_threads
        .into_iter()
        .map(|t| t.join().expect("fleet worker thread panicked"))
        .collect();

    // With autoscaling on, the pool must retire itself back to the floor
    // now that the queue is dry — completion-edge driven, so it needs no
    // further traffic, only time for the cascade.
    let autoscale_floor = (args.max_workers > 0).then(|| args.min_workers.max(1));
    if let Some(floor) = autoscale_floor {
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let alive = gauge_of(&obs.metrics_snapshot(), "serve.workers.alive").unwrap_or(0.0);
            if alive as usize == floor {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "pool never retired to the floor: alive={alive}, floor={floor}"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    // Graceful shutdown: every session checkpointed, nothing in flight.
    let mut admin = TcpClient::connect(addr).expect("connect admin client");
    let drained = match admin.request(&Request::Drain).expect("drain request") {
        Response::Drained {
            sessions,
            evaluations,
            checkpointed,
            flight_dumped,
            reassignments,
            evictions,
            resumes,
            workers_grown,
            workers_shrunk,
        } => (
            sessions,
            evaluations,
            checkpointed,
            flight_dumped,
            reassignments,
            evictions,
            resumes,
            workers_grown,
            workers_shrunk,
        ),
        other => panic!("drain rejected: {other:?}"),
    };
    let (
        drained_sessions,
        drained_evals,
        checkpointed,
        flight_dumped,
        drained_reassignments,
        drained_evictions,
        drained_resumes,
        workers_grown,
        workers_shrunk,
    ) = drained;
    scrape_stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.map(|t| t.join().expect("scraper panicked"));

    // Reconciliation: the protocol-level tallies, the drain report, and
    // the observability counters must all agree exactly.
    let expected_evals = args.sessions as usize * (args.steps + args.guided) as usize;
    assert_eq!(records.len(), args.sessions as usize, "lost sessions");
    assert_eq!(drained_sessions, args.sessions as usize, "lost sessions");
    assert_eq!(drained_evals, expected_evals, "lost/duplicated evaluations");
    assert_eq!(
        obs.counter_value("serve.evaluations"),
        expected_evals as f64
    );
    assert_eq!(
        obs.counter_value("serve.sessions.created"),
        args.sessions as f64
    );
    if args.checkpoint_dir.is_some() {
        assert_eq!(checkpointed, args.sessions as usize, "missing checkpoints");
    }

    // Eviction/autoscale reconciliation: the drain tallies must equal the
    // observability counters exactly, in every mode (both are zero when
    // the features are off).
    assert_eq!(
        drained_evictions as f64,
        obs.counter_value("serve.evictions"),
        "drain tally and eviction counter disagree"
    );
    assert_eq!(
        drained_resumes as f64,
        obs.counter_value("serve.resumes"),
        "drain tally and resume counter disagree"
    );
    assert_eq!(
        workers_grown as f64,
        obs.counter_value("serve.autoscale.grow"),
        "drain tally and grow counter disagree"
    );
    assert_eq!(
        workers_shrunk as f64,
        obs.counter_value("serve.autoscale.shrink"),
        "drain tally and shrink counter disagree"
    );
    assert_eq!(obs.counter_value("serve.evict_errors"), 0.0);
    assert_eq!(obs.counter_value("serve.resume_errors"), 0.0);
    // Every admission rejection lands in exactly one priority class.
    let class_rejections: f64 = ["low", "normal", "high"]
        .iter()
        .map(|c| obs.counter_value(&format!("serve.rejected.overloaded.class.{c}")))
        .sum();
    assert_eq!(
        class_rejections,
        obs.counter_value("serve.rejected.overloaded"),
        "per-class rejection counters don't sum to the global one"
    );
    if args.soak {
        // Every phase-A session went idle long enough to evict, and every
        // eviction was matched by exactly one transparent resume (phase C
        // collected all results, so nothing stays checkpointed out).
        let half = (args.sessions / 2) as usize;
        assert!(
            drained_evictions >= half,
            "only {drained_evictions} evictions; every phase-A session ({half}) must evict"
        );
        assert!(
            drained_evictions <= args.sessions as usize,
            "more evictions than sessions"
        );
        assert_eq!(
            drained_evictions, drained_resumes,
            "evictions and resumes must pair up"
        );
        if let Some(floor) = autoscale_floor {
            let ceiling = args.max_workers.max(floor);
            let initial = args.workers.clamp(floor, ceiling);
            assert!(workers_grown >= 1, "the pool never grew under backlog");
            assert!(
                workers_grown + initial <= ceiling + workers_shrunk,
                "pool accounting exceeded the ceiling"
            );
            // The pre-drain poll saw the pool back at the floor, so the
            // books must balance exactly: initial + grown - shrunk = floor.
            assert_eq!(
                initial + workers_grown - workers_shrunk,
                floor,
                "pool did not retire cleanly to the floor"
            );
        }
    } else if args.evict_after == 0 {
        assert_eq!(drained_evictions, 0, "evictions without an eviction window");
        assert_eq!(drained_resumes, 0, "resumes without an eviction window");
    }

    // Fleet reconciliation: the drain tally, the counter, and the armed
    // kill count must all agree, every armed worker died without
    // evaluating, the survivors did all the work, and every admitted
    // evaluation committed through exactly one door.
    assert_eq!(
        drained_reassignments as f64,
        obs.counter_value("fleet.reassignments"),
        "drain tally and reassignment counter disagree"
    );
    if args.fleet > 0 {
        assert_eq!(
            drained_reassignments, args.fleet_kill,
            "each armed kill must cause exactly one reassignment"
        );
        for report in &fleet_reports {
            if report.id.starts_with("lw-kill-") {
                assert_eq!(report.exit, WorkerExit::Killed, "{} survived", report.id);
                assert_eq!(
                    report.evaluations, 0,
                    "{} evaluated before dying",
                    report.id
                );
            } else {
                assert_eq!(report.exit, WorkerExit::Stopped, "{} died", report.id);
                assert_eq!(report.deposed, 0, "{} was falsely deposed", report.id);
            }
        }
        let executed: usize = fleet_reports.iter().map(|r| r.evaluations).sum();
        assert_eq!(
            executed, expected_evals,
            "workers executed a different number"
        );
        let commits = obs.counter_value("fleet.tasks_completed")
            + obs.counter_value("fleet.cache_commits")
            + obs.counter_value("fleet.local_commits");
        assert_eq!(
            commits, expected_evals as f64,
            "commit doors don't sum to the admitted total"
        );
    } else {
        assert_eq!(drained_reassignments, 0, "reassignments without a fleet");
    }
    if let Some(center) = &center {
        assert_eq!(center.outstanding(), 0, "tasks left in the table");
    }

    // Final scrape: now that the service is quiescent, the live metrics
    // plane must reconcile *exactly* against the drain report.
    let final_snapshot = match admin.request(&Request::Metrics).expect("final scrape") {
        Response::Metrics { snapshot, expo } => {
            assert_eq!(
                parse_prometheus(&expo).expect("final exposition parses"),
                snapshot
            );
            snapshot
        }
        other => panic!("final scrape rejected: {other:?}"),
    };
    let final_counter = |name: &str| {
        counter_of(&final_snapshot, name)
            .unwrap_or_else(|| panic!("{name} missing from final scrape"))
    };
    assert_eq!(final_counter("serve.evaluations"), drained_evals as f64);
    assert_eq!(
        final_counter("serve.slo.evaluations"),
        drained_evals as f64,
        "SLO tracker out of step with the drain report"
    );
    let final_hist = final_snapshot
        .histograms
        .iter()
        .find(|h| h.name == "serve.evaluate_ms")
        .expect("evaluate histogram in final scrape");
    assert_eq!(final_hist.count as usize, drained_evals);
    if let Some((scrapes, last_seen)) = scrapes {
        assert!(scrapes > 0, "scraper never ran");
        assert_eq!(
            last_seen, drained_evals as f64,
            "scraper's post-drain view disagrees with the drain report"
        );
    }

    // SLO gate: the windowed p99 latency gauge (fed by every completed
    // evaluation, eviction/resume overhead included) must sit inside the
    // configured bound now that the run is quiescent.
    if args.slo_p99_ms > 0.0 {
        let p99 = gauge_of(&final_snapshot, "serve.slo.latency_p99_ms")
            .expect("SLO p99 gauge in final scrape");
        assert!(
            p99 <= args.slo_p99_ms,
            "SLO violated: serve.slo.latency_p99_ms {p99:.3} > {:.3}",
            args.slo_p99_ms
        );
    }

    // The final snapshot to JSON, for the metrics-catalog drift test.
    if let Some(path) = &args.metrics_out {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create metrics-out dir");
        }
        let json = serde_json::to_string_pretty(&final_snapshot).expect("snapshot serializes");
        std::fs::write(path, json).expect("write metrics-out");
    }

    // Flight recorder: the drain froze one readable, checksummed dump per
    // session, and the dump counter reconciles with the files on disk.
    if let Some(dir) = &args.flightrec_dir {
        assert_eq!(flight_dumped, args.sessions as usize, "missed drain dumps");
        let dumps: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("flightrec dir")
            .map(|e| e.expect("flightrec entry").path())
            .filter(|p| p.to_string_lossy().ends_with(".flight.json"))
            .collect();
        assert_eq!(
            dumps.len() as f64,
            obs.counter_value("serve.flightrec.dumps"),
            "dump files on disk disagree with the dump counter"
        );
        assert_eq!(obs.counter_value("serve.flightrec.errors"), 0.0);
        let drain_dumps = dumps
            .iter()
            .filter(|p| p.to_string_lossy().contains("-drain-"))
            .count();
        assert_eq!(drain_dumps, args.sessions as usize, "one drain dump each");
        for path in &dumps {
            let dump = read_dump(path).expect("every dump parses and verifies");
            assert!(!dump.events.is_empty(), "empty flight dump {path:?}");
        }
    } else {
        assert_eq!(flight_dumped, 0, "dumps without a flightrec dir");
    }

    // Histories to JSONL — deterministic, wall-clock free.
    let out = match &args.out {
        Some(path) => path.clone(),
        None => results_dir().expect("results dir").join("serve_load.jsonl"),
    };
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(&out).expect("create output"));
    for record in &records {
        let line = serde_json::to_string(record).expect("record serializes");
        writeln!(file, "{line}").expect("write record");
    }
    file.flush().expect("flush output");

    // Wall-clock numbers go to stdout only.
    let q = |p: f64| {
        obs.histogram_quantile("serve.evaluate_ms", p)
            .unwrap_or(0.0)
    };
    println!(
        "serve_load: {} sessions x {}+{} evals on {} workers / {} clients in {:.2}s ({:.0} evals/s)",
        args.sessions,
        args.steps,
        args.guided,
        args.workers,
        args.clients,
        elapsed,
        expected_evals as f64 / elapsed.max(1e-9),
    );
    println!(
        "serve.evaluate_ms: p50={:.3} p95={:.3} p99={:.3}",
        q(0.50),
        q(0.95),
        q(0.99)
    );
    println!(
        "rejected: overloaded={} malformed={} oversized={}",
        obs.counter_value("serve.rejected.overloaded"),
        obs.counter_value("serve.rejected.malformed"),
        obs.counter_value("serve.rejected.oversized"),
    );
    if args.soak {
        println!(
            "soak: evictions={drained_evictions} resumes={drained_resumes} \
             grown={workers_grown} shrunk={workers_shrunk} \
             pushback: low={} normal={} high={} slo_p99_ms={:.3}",
            obs.counter_value("serve.rejected.overloaded.class.low"),
            obs.counter_value("serve.rejected.overloaded.class.normal"),
            obs.counter_value("serve.rejected.overloaded.class.high"),
            gauge_of(&final_snapshot, "serve.slo.latency_p99_ms").unwrap_or(0.0),
        );
    }
    if let Some(center) = center {
        println!(
            "fleet: {} workers ({} armed to die), reassignments={}, \
             commits: remote={} cache={} local={}, heartbeats_missed={}",
            args.fleet,
            args.fleet_kill,
            drained_reassignments,
            obs.counter_value("fleet.tasks_completed"),
            obs.counter_value("fleet.cache_commits"),
            obs.counter_value("fleet.local_commits"),
            obs.counter_value("fleet.heartbeats_missed"),
        );
        center.stop();
    }
    if let Some((scrapes, _)) = scrapes {
        println!(
            "scraper: {scrapes} consistent scrapes, flight dumps: {} ({} on drain)",
            obs.counter_value("serve.flightrec.dumps"),
            flight_dumped,
        );
    }
    println!("wrote {}", out.display());
}
