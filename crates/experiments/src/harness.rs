//! Shared helpers for the experiment binaries: the sharded replication
//! runner, run repetition, the exhaustive-search baseline, and "train
//! until top-5%-quality" loops used by the training-overhead figures.

use relm_app::{AppSpec, Engine, RunResult};
use relm_bo::BayesOpt;
use relm_common::{MemoryConfig, Millis};
use relm_ddpg::DdpgTuner;
use relm_tune::{Observation, Tuner, TuningEnv};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs one closure per cell on a bounded worker pool and merges the
/// results back in **cell-index order** — the backbone of every sharded
/// experiment sweep.
///
/// Cells are enumerated up front; workers claim the next unclaimed index
/// from a shared atomic counter, so the pool is busy until the last cell
/// without any static partitioning skew. Because each result lands in its
/// cell's slot, the merged output is byte-identical at any worker count —
/// the experiment binaries assert exactly that in CI (1 worker vs 8).
///
/// `workers` is clamped to `[1, cells.len()]` (an empty cell list returns
/// an empty vec without spawning).
///
/// Panics in a cell closure propagate: the sweep fails loudly rather than
/// silently dropping a cell.
pub fn run_sharded<C, R, F>(cells: Vec<C>, workers: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C) -> R + Sync,
{
    if cells.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, cells.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let result = f(i, cell);
                *slots[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .unwrap_or_else(|| panic!("cell {i} produced no result"))
        })
        .collect()
}

/// Parses a `--workers N` style flag shared by the experiment binaries;
/// returns `default` when the flag is absent.
pub fn parse_workers(args: &[String], default: usize) -> usize {
    args.iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .map(|w: usize| w.max(1))
        .unwrap_or(default)
}

/// Runs an application `repeats` times with distinct seeds and returns every
/// result (the paper repeats each stochastic setup 5–10 times).
pub fn repeat_runs(
    engine: &Engine,
    app: &AppSpec,
    config: &MemoryConfig,
    repeats: u64,
    base_seed: u64,
) -> Vec<RunResult> {
    (0..repeats)
        .map(|i| engine.run(app, config, base_seed + i * 7919).0)
        .collect()
}

/// Mean runtime in minutes over a set of runs.
pub fn mean_runtime_mins(results: &[RunResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(RunResult::runtime_mins).sum::<f64>() / results.len() as f64
}

/// Total container failures over a set of runs.
pub fn total_failures(results: &[RunResult]) -> u32 {
    results.iter().map(|r| r.container_failures).sum()
}

/// Number of aborted runs.
pub fn aborted_count(results: &[RunResult]) -> usize {
    results.iter().filter(|r| r.aborted).count()
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// The exhaustive-search baseline for an application: every grid
/// observation, the best score, and the top-5-percentile threshold the
/// paper trains black-box policies toward (§6.2).
pub struct ExhaustiveBaseline {
    /// Every grid evaluation.
    pub observations: Vec<Observation>,
    /// Best (lowest) objective over the grid, in minutes.
    pub best_mins: f64,
    /// The 5th-percentile objective over the grid.
    pub top5_mins: f64,
    /// Total stress time of the full grid.
    pub stress_time: Millis,
}

/// Runs the 192-configuration exhaustive search.
pub fn exhaustive_baseline(engine: &Engine, app: &AppSpec, seed: u64) -> ExhaustiveBaseline {
    let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
    for config in env.space().grid() {
        env.evaluate(&config);
    }
    let mut scores: Vec<f64> = env.history().iter().map(|o| o.score_mins).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
    let best_mins = scores[0];
    let top5_mins = scores[(scores.len() as f64 * 0.05) as usize];
    ExhaustiveBaseline {
        observations: env.history().to_vec(),
        best_mins,
        top5_mins,
        stress_time: env.stress_time(),
    }
}

/// Outcome of a train-until-quality session.
pub struct TrainingCost {
    /// Stress tests until the first observation met the threshold (the full
    /// budget if it never did).
    pub iterations: usize,
    /// Stress time over those iterations.
    pub stress_time: Millis,
    /// Whether the threshold was met.
    pub converged: bool,
}

/// Trains a policy until its history contains an observation at or below
/// `threshold_mins` (§6.2's procedure: "black-box policies are trained on
/// each application individually until they find a configuration with
/// performance within top 5 percentile of the baseline").
pub fn train_until(
    policy: &mut dyn Tuner,
    env: &mut TuningEnv,
    threshold_mins: f64,
) -> TrainingCost {
    let _ = policy.tune(env);
    let mut stress = Millis::ZERO;
    for (i, obs) in env.history().iter().enumerate() {
        stress += obs.result.runtime;
        if obs.score_mins <= threshold_mins {
            return TrainingCost {
                iterations: i + 1,
                stress_time: stress,
                converged: true,
            };
        }
    }
    TrainingCost {
        iterations: env.evaluations(),
        stress_time: env.stress_time(),
        converged: false,
    }
}

/// A long-budget BO (no early stop) for convergence studies.
pub fn long_bo(seed: u64, guided: bool) -> BayesOpt {
    long_bo_threaded(seed, guided, relm_bo::BoConfig::default().scoring_threads)
}

/// [`long_bo`] with an explicit acquisition-scoring thread count. Purely a
/// wall-clock knob: the tuning trace is bit-identical at any value, which
/// `fig20_convergence --scoring-threads N` exploits to prove it end to end.
pub fn long_bo_threaded(seed: u64, guided: bool, scoring_threads: usize) -> BayesOpt {
    let base = if guided {
        BayesOpt::guided(seed)
    } else {
        BayesOpt::new(seed)
    };
    base.with_config(relm_bo::BoConfig {
        max_iterations: 28,
        min_adaptive_samples: 28,
        scoring_threads,
        ..relm_bo::BoConfig::default()
    })
}

/// [`long_bo_threaded`] with the surrogate forced onto the sparse
/// inducing-subset path (threshold low enough that every adaptive fit is
/// sparse). The sparse trace differs from the exact one by design, but is
/// itself bit-identical at any thread or worker count —
/// `fig20_convergence --sparse` proves that end to end.
pub fn long_bo_sparse(seed: u64, guided: bool, scoring_threads: usize) -> BayesOpt {
    let base = if guided {
        BayesOpt::guided(seed)
    } else {
        BayesOpt::new(seed)
    };
    base.with_config(relm_bo::BoConfig {
        max_iterations: 28,
        min_adaptive_samples: 28,
        scoring_threads,
        sparse: relm_surrogate::SparsePolicy {
            threshold: 8,
            inducing: 8,
        },
        ..relm_bo::BoConfig::default()
    })
}

/// A long-budget DDPG for convergence studies.
pub fn long_ddpg(seed: u64) -> DdpgTuner {
    DdpgTuner::new(seed).with_budget(30)
}

/// Five-number helper re-export for box plots.
pub use relm_common::stats::five_number;

#[cfg(test)]
mod tests {
    use super::*;
    use relm_cluster::ClusterSpec;
    use relm_workloads::{max_resource_allocation, wordcount};

    #[test]
    fn run_sharded_merges_in_index_order_at_any_worker_count() {
        let cells: Vec<u64> = (0..37).collect();
        let serial = run_sharded(cells.clone(), 1, |i, c| (i, c * 3));
        for workers in [2, 5, 8, 64] {
            let parallel = run_sharded(cells.clone(), workers, |i, c| (i, c * 3));
            assert_eq!(parallel, serial, "diverged at {workers} workers");
        }
        assert_eq!(serial[5], (5, 15));
        assert!(run_sharded(Vec::<u64>::new(), 4, |_, _: &u64| 0u64).is_empty());
    }

    #[test]
    fn parse_workers_reads_the_flag() {
        let args: Vec<String> = ["--out", "x.jsonl", "--workers", "6"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_workers(&args, 1), 6);
        assert_eq!(parse_workers(&args[..2], 3), 3);
        let bad: Vec<String> = ["--workers", "zero"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_workers(&bad, 2), 2);
    }

    #[test]
    fn repeat_runs_uses_distinct_seeds() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let app = wordcount();
        let cfg = max_resource_allocation(engine.cluster(), &app);
        let results = repeat_runs(&engine, &app, &cfg, 3, 1);
        assert_eq!(results.len(), 3);
        assert!(
            results[0].runtime != results[1].runtime || results[1].runtime != results[2].runtime
        );
        assert!(mean_runtime_mins(&results) > 0.0);
    }

    #[test]
    fn train_until_counts_iterations_to_threshold() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let mut env = TuningEnv::new(engine, wordcount(), 3);
        let mut policy = relm_tune::RandomSearch::new(8, 3);
        // An absurdly lax threshold: the very first sample qualifies.
        let cost = train_until(&mut policy, &mut env, f64::INFINITY);
        assert!(cost.converged);
        assert_eq!(cost.iterations, 1);
        // An impossible threshold: never converges, full budget spent.
        let engine = Engine::new(ClusterSpec::cluster_a());
        let mut env = TuningEnv::new(engine, wordcount(), 3);
        let mut policy = relm_tune::RandomSearch::new(8, 3);
        let cost = train_until(&mut policy, &mut env, 0.0);
        assert!(!cost.converged);
        assert_eq!(cost.iterations, 8);
    }
}
