//! Shared helpers for the experiment binaries: run repetition, the
//! exhaustive-search baseline, and "train until top-5%-quality" loops used
//! by the training-overhead figures.

use relm_app::{AppSpec, Engine, RunResult};
use relm_bo::BayesOpt;
use relm_common::{MemoryConfig, Millis};
use relm_ddpg::DdpgTuner;
use relm_tune::{Observation, Tuner, TuningEnv};

/// Runs an application `repeats` times with distinct seeds and returns every
/// result (the paper repeats each stochastic setup 5–10 times).
pub fn repeat_runs(
    engine: &Engine,
    app: &AppSpec,
    config: &MemoryConfig,
    repeats: u64,
    base_seed: u64,
) -> Vec<RunResult> {
    (0..repeats)
        .map(|i| engine.run(app, config, base_seed + i * 7919).0)
        .collect()
}

/// Mean runtime in minutes over a set of runs.
pub fn mean_runtime_mins(results: &[RunResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(RunResult::runtime_mins).sum::<f64>() / results.len() as f64
}

/// Total container failures over a set of runs.
pub fn total_failures(results: &[RunResult]) -> u32 {
    results.iter().map(|r| r.container_failures).sum()
}

/// Number of aborted runs.
pub fn aborted_count(results: &[RunResult]) -> usize {
    results.iter().filter(|r| r.aborted).count()
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// The exhaustive-search baseline for an application: every grid
/// observation, the best score, and the top-5-percentile threshold the
/// paper trains black-box policies toward (§6.2).
pub struct ExhaustiveBaseline {
    /// Every grid evaluation.
    pub observations: Vec<Observation>,
    /// Best (lowest) objective over the grid, in minutes.
    pub best_mins: f64,
    /// The 5th-percentile objective over the grid.
    pub top5_mins: f64,
    /// Total stress time of the full grid.
    pub stress_time: Millis,
}

/// Runs the 192-configuration exhaustive search.
pub fn exhaustive_baseline(engine: &Engine, app: &AppSpec, seed: u64) -> ExhaustiveBaseline {
    let mut env = TuningEnv::new(engine.clone(), app.clone(), seed);
    for config in env.space().grid() {
        env.evaluate(&config);
    }
    let mut scores: Vec<f64> = env.history().iter().map(|o| o.score_mins).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
    let best_mins = scores[0];
    let top5_mins = scores[(scores.len() as f64 * 0.05) as usize];
    ExhaustiveBaseline {
        observations: env.history().to_vec(),
        best_mins,
        top5_mins,
        stress_time: env.stress_time(),
    }
}

/// Outcome of a train-until-quality session.
pub struct TrainingCost {
    /// Stress tests until the first observation met the threshold (the full
    /// budget if it never did).
    pub iterations: usize,
    /// Stress time over those iterations.
    pub stress_time: Millis,
    /// Whether the threshold was met.
    pub converged: bool,
}

/// Trains a policy until its history contains an observation at or below
/// `threshold_mins` (§6.2's procedure: "black-box policies are trained on
/// each application individually until they find a configuration with
/// performance within top 5 percentile of the baseline").
pub fn train_until(
    policy: &mut dyn Tuner,
    env: &mut TuningEnv,
    threshold_mins: f64,
) -> TrainingCost {
    let _ = policy.tune(env);
    let mut stress = Millis::ZERO;
    for (i, obs) in env.history().iter().enumerate() {
        stress += obs.result.runtime;
        if obs.score_mins <= threshold_mins {
            return TrainingCost {
                iterations: i + 1,
                stress_time: stress,
                converged: true,
            };
        }
    }
    TrainingCost {
        iterations: env.evaluations(),
        stress_time: env.stress_time(),
        converged: false,
    }
}

/// A long-budget BO (no early stop) for convergence studies.
pub fn long_bo(seed: u64, guided: bool) -> BayesOpt {
    long_bo_threaded(seed, guided, relm_bo::BoConfig::default().scoring_threads)
}

/// [`long_bo`] with an explicit acquisition-scoring thread count. Purely a
/// wall-clock knob: the tuning trace is bit-identical at any value, which
/// `fig20_convergence --scoring-threads N` exploits to prove it end to end.
pub fn long_bo_threaded(seed: u64, guided: bool, scoring_threads: usize) -> BayesOpt {
    let base = if guided {
        BayesOpt::guided(seed)
    } else {
        BayesOpt::new(seed)
    };
    base.with_config(relm_bo::BoConfig {
        max_iterations: 28,
        min_adaptive_samples: 28,
        scoring_threads,
        ..relm_bo::BoConfig::default()
    })
}

/// A long-budget DDPG for convergence studies.
pub fn long_ddpg(seed: u64) -> DdpgTuner {
    DdpgTuner::new(seed).with_budget(30)
}

/// Five-number helper re-export for box plots.
pub use relm_common::stats::five_number;

#[cfg(test)]
mod tests {
    use super::*;
    use relm_cluster::ClusterSpec;
    use relm_workloads::{max_resource_allocation, wordcount};

    #[test]
    fn repeat_runs_uses_distinct_seeds() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let app = wordcount();
        let cfg = max_resource_allocation(engine.cluster(), &app);
        let results = repeat_runs(&engine, &app, &cfg, 3, 1);
        assert_eq!(results.len(), 3);
        assert!(
            results[0].runtime != results[1].runtime || results[1].runtime != results[2].runtime
        );
        assert!(mean_runtime_mins(&results) > 0.0);
    }

    #[test]
    fn train_until_counts_iterations_to_threshold() {
        let engine = Engine::new(ClusterSpec::cluster_a());
        let mut env = TuningEnv::new(engine, wordcount(), 3);
        let mut policy = relm_tune::RandomSearch::new(8, 3);
        // An absurdly lax threshold: the very first sample qualifies.
        let cost = train_until(&mut policy, &mut env, f64::INFINITY);
        assert!(cost.converged);
        assert_eq!(cost.iterations, 1);
        // An impossible threshold: never converges, full budget spent.
        let engine = Engine::new(ClusterSpec::cluster_a());
        let mut env = TuningEnv::new(engine, wordcount(), 3);
        let mut policy = relm_tune::RandomSearch::new(8, 3);
        let cost = train_until(&mut policy, &mut env, 0.0);
        assert!(!cost.converged);
        assert_eq!(cost.iterations, 8);
    }
}
