//! # relm-experiments
//!
//! The evaluation harness: one binary per table/figure of the paper plus a
//! shared library of helpers (run repetition, policy training loops, output
//! formatting). See `DESIGN.md`'s experiment index for the mapping.

pub mod harness;
pub mod telemetry;

pub use harness::*;
pub use telemetry::{obs_from_env, results_dir, write_run_telemetry};
