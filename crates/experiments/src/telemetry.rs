//! Run-level telemetry for the experiment binaries: each binary can attach
//! a [`relm_obs::Obs`] handle to its engines and drop a JSONL telemetry
//! file next to its `results/` outputs.

use relm_obs::Obs;
use std::io;
use std::path::PathBuf;

/// The experiments' output directory (`./results`), created on demand.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// The observability handle for an experiment binary: enabled when
/// `RELM_OBS=1` is set, a no-op otherwise.
pub fn obs_from_env() -> Obs {
    Obs::from_env()
}

/// Writes the handle's snapshot as `results/<name>.telemetry.jsonl` and
/// returns the path. A disabled handle writes nothing and returns `None`.
pub fn write_run_telemetry(obs: &Obs, name: &str) -> io::Result<Option<PathBuf>> {
    if !obs.is_enabled() {
        return Ok(None);
    }
    let path = results_dir()?.join(format!("{name}.telemetry.jsonl"));
    obs.write_jsonl(&path)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_writes_nothing() {
        let obs = Obs::disabled();
        assert_eq!(
            write_run_telemetry(&obs, "unit_test_disabled").unwrap(),
            None
        );
    }

    #[test]
    fn enabled_handle_writes_readable_jsonl() {
        let obs = Obs::enabled();
        obs.inc("unit.counter");
        obs.record("unit.lat_ms", 3.0);
        let path = write_run_telemetry(&obs, "unit_test_enabled")
            .unwrap()
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = relm_obs::read_jsonl(&text).unwrap();
        assert!(!events.is_empty());
        std::fs::remove_file(path).ok();
    }
}
