//! JSON facade over the in-tree [`serde`] subset, mirroring the parts of
//! `serde_json`'s API this workspace uses.

pub use serde::{Error, Map, Number, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.to_value(), 0))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&serde::parse(text)?)
}

/// Converts a value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

fn pretty(v: &Value, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            let inner: Vec<String> = items
                .iter()
                .map(|i| format!("{pad}{}", pretty(i, indent + 1)))
                .collect();
            format!("[\n{}\n{close}]", inner.join(",\n"))
        }
        Value::Object(m) if !m.is_empty() => {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, val)| {
                    let mut key = String::new();
                    serde::write_escaped(&mut key, k).expect("string write");
                    format!("{pad}{key}: {}", pretty(val, indent + 1))
                })
                .collect();
            format!("{{\n{}\n{close}}}", inner.join(",\n"))
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let v = vec![1.5f64, 2.25, -3.0];
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_reparses() {
        let text = r#"{"a":[1,2],"b":{"c":true},"d":[]}"#;
        let v: Value = from_str(text).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
