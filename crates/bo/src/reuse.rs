//! OtterTune-style model reuse (§6.6): "OtterTune re-uses the Bayesian
//! model trained on a prior workload by mapping the present workload based
//! on the measurements of a set of external performance metrics. The
//! OtterTune strategy is replicated in our setup by matching two
//! applications based on the performance statistics derived on the default
//! configuration."
//!
//! A [`ModelRepository`] stores the (statistics fingerprint, observation
//! history) of past tuning sessions; a new session fingerprints its workload
//! from one default-configuration profile, retrieves the nearest past
//! workload, and warm-starts the Gaussian process with its observations.
//! As §6.6 notes, "the saved regression models cannot be adapted to changes
//! in hardware configuration and input data" — the repository is keyed to a
//! cluster.

use relm_profile::DerivedStats;
use serde::{Deserialize, Serialize};

/// The fingerprint used for workload matching: the Table-6 statistics,
/// normalized to dimensionless features.
pub fn stats_fingerprint(stats: &DerivedStats) -> [f64; 8] {
    let heap = stats.heap.as_mb().max(1.0);
    [
        stats.cpu_avg / 100.0,
        stats.disk_avg / 100.0,
        stats.m_i.as_mb() / heap,
        stats.m_c.as_mb() / heap,
        stats.m_s.as_mb() / heap,
        stats.m_u.as_mb() / heap,
        stats.h,
        stats.s,
    ]
}

/// One stored tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredModel {
    /// Workload name (informational).
    pub workload: String,
    /// Fingerprint of the workload under the default configuration.
    pub fingerprint: [f64; 8],
    /// Encoded observations `(x ∈ [0,1]^4, objective minutes)`.
    pub observations: Vec<(Vec<f64>, f64)>,
}

/// A repository of past tuning sessions for one cluster.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelRepository {
    models: Vec<StoredModel>,
}

impl ModelRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a finished session.
    pub fn store(
        &mut self,
        workload: &str,
        stats: &DerivedStats,
        observations: Vec<(Vec<f64>, f64)>,
    ) {
        self.models.push(StoredModel {
            workload: workload.to_owned(),
            fingerprint: stats_fingerprint(stats),
            observations,
        });
    }

    /// Number of stored sessions.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True if nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Finds the stored workload closest to the given statistics
    /// (Euclidean distance between fingerprints).
    pub fn nearest(&self, stats: &DerivedStats) -> Option<&StoredModel> {
        let f = stats_fingerprint(stats);
        self.models.iter().min_by(|a, b| {
            let da = distance(&a.fingerprint, &f);
            let db = distance(&b.fingerprint, &f);
            da.partial_cmp(&db).expect("NaN distance")
        })
    }
}

fn distance(a: &[f64; 8], b: &[f64; 8]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_common::Mem;

    fn stats(m_c: f64, m_u: f64, h: f64) -> DerivedStats {
        DerivedStats {
            containers_per_node: 1,
            heap: Mem::mb(4404.0),
            cpu_avg: 20.0,
            disk_avg: 10.0,
            m_i: Mem::mb(110.0),
            m_c: Mem::mb(m_c),
            m_s: Mem::ZERO,
            m_u: Mem::mb(m_u),
            p: 2,
            h,
            s: 0.0,
            m_u_from_full_gc: true,
        }
    }

    #[test]
    fn nearest_matches_by_statistics() {
        let mut repo = ModelRepository::new();
        repo.store(
            "cache-heavy",
            &stats(2500.0, 400.0, 0.5),
            vec![(vec![0.1; 4], 10.0)],
        );
        repo.store(
            "shuffle-app",
            &stats(0.0, 100.0, 1.0),
            vec![(vec![0.9; 4], 3.0)],
        );

        let query = stats(2300.0, 350.0, 0.55); // looks like the cache app
        let hit = repo.nearest(&query).unwrap();
        assert_eq!(hit.workload, "cache-heavy");

        let query = stats(0.0, 120.0, 1.0);
        assert_eq!(repo.nearest(&query).unwrap().workload, "shuffle-app");
    }

    #[test]
    fn empty_repository_has_no_match() {
        let repo = ModelRepository::new();
        assert!(repo.nearest(&stats(1.0, 1.0, 1.0)).is_none());
        assert!(repo.is_empty());
    }

    #[test]
    fn fingerprints_are_dimensionless() {
        let f = stats_fingerprint(&stats(2200.0, 440.0, 0.3));
        assert!(
            f.iter().all(|v| v.is_finite() && *v >= 0.0 && *v <= 1.5),
            "{f:?}"
        );
    }
}
