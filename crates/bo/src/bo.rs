//! The BO/GBO tuning loop.

use relm_common::{MemoryConfig, Result, Rng};
use relm_core::QModel;
use relm_profile::derive_stats;
use relm_surrogate::{
    maximize_ei_threaded, Forest, ForestParams, GpFitStats, GpFitter, SparsePolicy, Surrogate,
};
use relm_tune::{recommendation, ConfigSpace, Recommendation, Tuner, TuningEnv};
use serde::{Deserialize, Serialize};

/// Which surrogate model the optimizer fits (§6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SurrogateKind {
    /// Gaussian process (the default, with confidence-bound guarantees).
    GaussianProcess,
    /// Random forest (better at non-linear interactions, heuristic
    /// uncertainty).
    RandomForest,
}

/// Optimizer settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoConfig {
    /// Bootstrap samples drawn by Latin Hypercube Sampling — the paper uses
    /// 4, matching the dimensionality of the space.
    pub bootstrap_samples: usize,
    /// Minimum adaptive samples before the stopping rule can fire
    /// (CherryPick's 6).
    pub min_adaptive_samples: usize,
    /// Stop when the maximum expected improvement falls below this fraction
    /// of the incumbent's objective (10%).
    pub ei_threshold: f64,
    /// Hard cap on adaptive iterations.
    pub max_iterations: usize,
    /// Surrogate model.
    pub surrogate: SurrogateKind,
    /// Re-tune the GP hyperparameters (full marginal-likelihood search)
    /// every this many adaptive iterations; in between, the factor is
    /// extended incrementally at the retained hyperparameters (O(n²) per
    /// observation instead of O(n³) per search). `1` re-tunes every
    /// iteration — the pre-optimization behavior, kept as the default so
    /// historical traces replay byte-identically.
    pub refit_period: usize,
    /// Threads used to score hyperparameter proposals and acquisition
    /// candidates. Results are bit-identical at every value, so this is a
    /// pure wall-clock knob.
    pub scoring_threads: usize,
    /// Sparse large-n surrogate policy. The default
    /// ([`SparsePolicy::exact`]) never approximates, so historical traces
    /// replay byte-identically; [`SparsePolicy::large_n`] caps GP fits at a
    /// deterministic inducing subset once the history (including any warm
    /// start) outgrows the threshold.
    pub sparse: SparsePolicy,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            bootstrap_samples: 4,
            min_adaptive_samples: 6,
            ei_threshold: 0.1,
            max_iterations: 24,
            surrogate: SurrogateKind::GaussianProcess,
            refit_period: 1,
            scoring_threads: 4,
            sparse: SparsePolicy::exact(),
        }
    }
}

/// One optimizer step, for the convergence plots (Figure 20, Table 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoStep {
    /// The point in the unit hypercube.
    pub x: Vec<f64>,
    /// The decoded configuration.
    pub config: MemoryConfig,
    /// The objective value observed.
    pub score_mins: f64,
    /// Whether this was a bootstrap (LHS) sample.
    pub bootstrap: bool,
    /// The EI the acquisition assigned (bootstrap samples have none).
    pub ei: Option<f64>,
}

/// The Bayesian optimizer. `guided = true` turns it into GBO.
#[derive(Debug, Clone)]
pub struct BayesOpt {
    cfg: BoConfig,
    guided: bool,
    seed: u64,
    trace: Vec<BoStep>,
    q_locked: bool,
    warm_start: Vec<(Vec<f64>, f64)>,
}

impl BayesOpt {
    /// Vanilla BO.
    pub fn new(seed: u64) -> Self {
        BayesOpt {
            cfg: BoConfig::default(),
            guided: false,
            seed,
            trace: Vec::new(),
            q_locked: false,
            warm_start: Vec::new(),
        }
    }

    /// Guided BO (§5.2).
    pub fn guided(seed: u64) -> Self {
        BayesOpt {
            cfg: BoConfig::default(),
            guided: true,
            seed,
            trace: Vec::new(),
            q_locked: false,
            warm_start: Vec::new(),
        }
    }

    /// Overrides the optimizer settings.
    pub fn with_config(mut self, cfg: BoConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Warm-starts the surrogate with observations from a previously tuned,
    /// similar workload (OtterTune-style model reuse, §6.6). The seeded
    /// observations inform the model but cost no stress tests; they replace
    /// the LHS bootstrap.
    pub fn with_warm_start(mut self, observations: Vec<(Vec<f64>, f64)>) -> Self {
        self.warm_start = observations;
        self
    }

    /// Warm-starts from a cross-session memory prior
    /// ([`relm_memory::PriorBundle`]): the similarity-allocated GP
    /// observations seed the surrogate in place of the LHS bootstrap. An
    /// empty prior (a retrieval miss) leaves the tuner cold.
    pub fn with_memory_prior(self, prior: &relm_memory::PriorBundle) -> Self {
        if prior.gp_obs.is_empty() {
            return self;
        }
        self.with_warm_start(prior.gp_obs.clone())
    }

    /// The step trace of the last tuning session.
    pub fn trace(&self) -> &[BoStep] {
        &self.trace
    }

    /// Whether this instance runs guided.
    pub fn is_guided(&self) -> bool {
        self.guided
    }

    /// Builds the surrogate's feature vector for a point: the raw
    /// coordinates, extended with model-Q metrics when guided.
    pub fn features(space: &ConfigSpace, q: Option<&QModel>, x: &[f64]) -> Vec<f64> {
        let mut f = x.to_vec();
        if let Some(q) = q {
            let config = space.decode(x);
            let mut qv = [0.0; 3];
            q.q_into(&config, &mut qv);
            f.extend(qv);
        }
        f
    }
}

/// Adapter: a surrogate over extended features exposed as a surrogate over
/// the raw 4-dimensional space (Q metrics are deterministic functions of the
/// configuration, so they are appended on the fly during acquisition).
struct SpaceSurrogate<'a> {
    inner: &'a dyn Surrogate,
    space: &'a ConfigSpace,
    q: Option<&'a QModel>,
}

impl Surrogate for SpaceSurrogate<'_> {
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let f = BayesOpt::features(self.space, self.q, x);
        self.inner.predict(&f)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        // Map the whole batch to feature space once, then let the inner
        // surrogate amortize its solve buffers over the fused batch. The
        // inner contract (batch ≡ per-point, bitwise) carries through.
        let feats: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| BayesOpt::features(self.space, self.q, x))
            .collect();
        self.inner.predict_batch(&feats)
    }
}

impl Tuner for BayesOpt {
    fn name(&self) -> &'static str {
        if self.guided {
            "GBO"
        } else {
            match self.cfg.surrogate {
                SurrogateKind::GaussianProcess => "BO",
                SurrogateKind::RandomForest => "BO-RF",
            }
        }
    }

    fn tune(&mut self, env: &mut TuningEnv) -> Result<Recommendation> {
        self.trace.clear();
        self.q_locked = false;
        let telemetry = env.obs().clone();
        let _session = telemetry.span("tuner.tune").with("policy", self.name());
        let metric_prefix = self.name().to_ascii_lowercase();
        let mut rng = Rng::new(self.seed);
        let space = env.space().clone();
        let dims = 4;

        // Bootstrap with LHS samples — unless a warm start from a mapped
        // prior workload replaces them; GBO derives the white-box model from
        // the first bootstrap run's profile.
        let lhs = if self.warm_start.is_empty() {
            relm_surrogate::latin_hypercube(self.cfg.bootstrap_samples, dims, &mut rng)
        } else {
            // Incumbent transfer: the single bootstrap evaluation goes to
            // the prior's best-known point, not a random LHS sample — the
            // mapped workload's incumbent is the highest-value probe, and
            // re-scoring it on *this* workload anchors the surrogate where
            // the prior claims the optimum lives.
            let best = self
                .warm_start
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(x, _)| x.clone())
                .expect("warm start is non-empty");
            vec![best]
        };
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        let mut qmodel: Option<QModel> = None;
        for (x, y) in self.warm_start.clone() {
            xs.push(x);
            scores.push(y);
        }

        for x in lhs {
            let config = space.decode(&x);
            let (obs, profile) = env.evaluate_profiled(&config);
            // GBO's guiding model comes from "a prior execution, not
            // necessarily using the same configuration" (§5.2). Prefer the
            // first *clean* bootstrap run — a censored run's truncated
            // profile, or one degraded by injected faults, would poison the
            // guidance — falling back to whatever profile exists if every
            // bootstrap run failed.
            if self.guided && !self.q_locked {
                qmodel = Some(QModel::new(
                    derive_stats(&profile),
                    relm_core::DEFAULT_SAFETY,
                ));
                self.q_locked = !obs.result.aborted && obs.result.injected_faults == 0;
            }
            self.trace.push(BoStep {
                x: x.clone(),
                config,
                score_mins: obs.score_mins,
                bootstrap: true,
                ei: None,
            });
            xs.push(x);
            scores.push(obs.score_mins);
        }

        // Persistent GP fitter: the Gram cache of pairwise feature
        // differences survives across iterations (the q-model is locked
        // after bootstrap, so feature vectors are stable), and between full
        // hyperparameter re-tunes the Cholesky factor is extended one row
        // per observation.
        let mut fitter = GpFitter::new(self.cfg.scoring_threads).with_policy(self.cfg.sparse);
        for (x, y) in xs.iter().zip(&scores) {
            fitter.observe(Self::features(&space, qmodel.as_ref(), x), *y)?;
        }
        let refit_period = self.cfg.refit_period.max(1);
        let mut last_stats = GpFitStats::default();

        // Adaptive sampling.
        let mut adaptive = 0usize;
        while adaptive < self.cfg.max_iterations {
            let fit_started = std::time::Instant::now();
            let surrogate: Box<dyn Surrogate> = {
                let _fit = telemetry
                    .span("bo.fit_surrogate")
                    .with("iter", adaptive)
                    .with("samples", xs.len())
                    .with("guided", self.guided);
                match self.cfg.surrogate {
                    SurrogateKind::GaussianProcess => {
                        let gp = if !fitter.has_fit() || adaptive.is_multiple_of(refit_period) {
                            fitter.fit_full(self.seed ^ (adaptive as u64) << 8)?
                        } else {
                            fitter.refit()?
                        };
                        Box::new(gp)
                    }
                    SurrogateKind::RandomForest => {
                        let features: Vec<Vec<f64>> = xs
                            .iter()
                            .map(|x| Self::features(&space, qmodel.as_ref(), x))
                            .collect();
                        Box::new(Forest::fit(
                            &features,
                            &scores,
                            ForestParams::default(),
                            self.seed ^ (adaptive as u64) << 8,
                        )?)
                    }
                }
            };
            let fit_ms = fit_started.elapsed().as_secs_f64() * 1e3;
            telemetry.record(&format!("{metric_prefix}.fit_ms"), fit_ms);
            telemetry.record("surrogate.fit_ms", fit_ms);
            let stats = fitter.stats();
            telemetry.add(
                "surrogate.gram_reuse",
                (stats.gram_reused_dims - last_stats.gram_reused_dims) as f64,
            );
            telemetry.add(
                "surrogate.incremental_fits",
                (stats.incremental_fits - last_stats.incremental_fits) as f64,
            );
            telemetry.add(
                "surrogate.chol_jitter_retries",
                (stats.chol_jitter_retries - last_stats.chol_jitter_retries) as f64,
            );
            telemetry.add(
                "surrogate.sparse_fits",
                (stats.sparse_fits - last_stats.sparse_fits) as f64,
            );
            last_stats = stats;
            let tau = scores.iter().cloned().fold(f64::INFINITY, f64::min);

            let acq_started = std::time::Instant::now();
            let (x_next, ei) = {
                let _acq = telemetry
                    .span("bo.maximize_ei")
                    .with("iter", adaptive)
                    .with("tau", tau);
                let wrapped = SpaceSurrogate {
                    inner: surrogate.as_ref(),
                    space: &space,
                    q: qmodel.as_ref(),
                };
                maximize_ei_threaded(&wrapped, dims, tau, &mut rng, self.cfg.scoring_threads)
            };
            telemetry.record(
                &format!("{metric_prefix}.acq_ms"),
                acq_started.elapsed().as_secs_f64() * 1e3,
            );

            let config = space.decode(&x_next);
            let obs = env.evaluate(&config);
            self.trace.push(BoStep {
                x: x_next.clone(),
                config,
                score_mins: obs.score_mins,
                bootstrap: false,
                ei: Some(ei),
            });
            fitter.observe(
                Self::features(&space, qmodel.as_ref(), &x_next),
                obs.score_mins,
            )?;
            xs.push(x_next);
            scores.push(obs.score_mins);
            adaptive += 1;

            // CherryPick stopping rule: enough adaptive samples and the
            // expected improvement has fallen below 10% of the incumbent.
            if adaptive >= self.cfg.min_adaptive_samples && ei < self.cfg.ei_threshold * tau {
                break;
            }
        }

        let best = env
            .best()
            .ok_or_else(|| relm_common::Error::Tuning("no observations".into()))?
            .config;
        Ok(recommendation(self.name(), env, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relm_app::Engine;
    use relm_cluster::ClusterSpec;
    use relm_workloads::{max_resource_allocation, sortbykey, svm};

    fn env(app: relm_app::AppSpec, seed: u64) -> TuningEnv {
        TuningEnv::new(Engine::new(ClusterSpec::cluster_a()), app, seed)
    }

    #[test]
    fn bo_respects_bootstrap_and_minimum_samples() {
        let mut e = env(sortbykey(), 1);
        let mut bo = BayesOpt::new(1);
        let rec = bo.tune(&mut e).unwrap();
        // 4 bootstrap + at least 6 adaptive.
        assert!(rec.evaluations >= 10, "evaluations = {}", rec.evaluations);
        assert!(rec.evaluations <= 4 + 24);
        let bootstraps = bo.trace().iter().filter(|s| s.bootstrap).count();
        assert_eq!(bootstraps, 4);
    }

    #[test]
    fn bo_improves_on_the_default() {
        let mut e = env(sortbykey(), 2);
        let rec = BayesOpt::new(7).tune(&mut e).unwrap();
        let engine = Engine::new(ClusterSpec::cluster_a());
        let app = sortbykey();
        let default = max_resource_allocation(engine.cluster(), &app);
        let (d, _) = engine.run(&app, &default, 900);
        let (b, _) = engine.run(&app, &rec.config, 900);
        assert!(
            b.runtime_mins() <= d.runtime_mins() * 1.05,
            "BO ({}) should not lose to the default ({})",
            b.runtime_mins(),
            d.runtime_mins()
        );
    }

    #[test]
    fn gbo_uses_q_features() {
        let mut e = env(svm(), 3);
        let mut gbo = BayesOpt::guided(3);
        let rec = gbo.tune(&mut e).unwrap();
        assert!(gbo.is_guided());
        assert_eq!(rec.policy, "GBO");
        assert!(rec.evaluations >= 10);
    }

    #[test]
    fn forest_surrogate_works() {
        let mut e = env(sortbykey(), 4);
        let mut bo = BayesOpt::new(4).with_config(BoConfig {
            surrogate: SurrogateKind::RandomForest,
            max_iterations: 8,
            ..BoConfig::default()
        });
        let rec = bo.tune(&mut e).unwrap();
        assert_eq!(rec.policy, "BO-RF");
        assert!(rec.evaluations >= 10);
    }

    #[test]
    fn trace_is_reproducible_given_seeds() {
        let mut e1 = env(sortbykey(), 5);
        let mut e2 = env(sortbykey(), 5);
        let mut a = BayesOpt::new(11);
        let mut b = BayesOpt::new(11);
        let ra = a.tune(&mut e1).unwrap();
        let rb = b.tune(&mut e2).unwrap();
        assert_eq!(ra.config, rb.config);
        assert_eq!(a.trace().len(), b.trace().len());
    }

    #[test]
    fn scoring_threads_do_not_change_the_trace() {
        // The whole point of the deterministic parallel scoring: any thread
        // count must reproduce the serial trace to the last bit.
        let run = |threads: usize| {
            let mut e = env(sortbykey(), 6);
            let mut bo = BayesOpt::new(13).with_config(BoConfig {
                scoring_threads: threads,
                max_iterations: 10,
                ..BoConfig::default()
            });
            bo.tune(&mut e).unwrap();
            bo.trace().to_vec()
        };
        let serial = run(1);
        for threads in [2, 8] {
            assert_eq!(serial, run(threads), "trace diverged at {threads} threads");
        }
    }

    #[test]
    fn incremental_refit_period_is_deterministic_across_thread_counts() {
        // K > 1 changes the trace (fewer hyperparameter re-tunes) but must
        // stay deterministic, guided included, at every thread count.
        let run = |threads: usize, guided: bool| {
            let mut e = env(svm(), 8);
            let mut bo = if guided {
                BayesOpt::guided(21)
            } else {
                BayesOpt::new(21)
            };
            bo = bo.with_config(BoConfig {
                refit_period: 4,
                scoring_threads: threads,
                max_iterations: 12,
                ..BoConfig::default()
            });
            bo.tune(&mut e).unwrap();
            bo.trace().to_vec()
        };
        for guided in [false, true] {
            let serial = run(1, guided);
            assert!(serial.iter().any(|s| !s.bootstrap));
            for threads in [2, 8] {
                assert_eq!(serial, run(threads, guided), "guided={guided}");
            }
        }
    }

    #[test]
    fn sparse_policy_below_threshold_leaves_the_trace_identical() {
        // A large-n policy whose threshold the run never crosses must be
        // invisible: byte-identical trace to the exact default.
        let run = |sparse: SparsePolicy| {
            let mut e = env(sortbykey(), 9);
            let mut bo = BayesOpt::new(17).with_config(BoConfig {
                sparse,
                max_iterations: 10,
                ..BoConfig::default()
            });
            bo.tune(&mut e).unwrap();
            bo.trace().to_vec()
        };
        let exact = run(SparsePolicy::exact());
        let sparse = run(SparsePolicy::large_n());
        assert_eq!(exact, sparse, "large_n policy engaged below threshold");
    }

    #[test]
    fn sparse_trace_is_deterministic_across_scoring_threads() {
        // Force the sparse path with a tiny threshold: the subset fits must
        // stay byte-identical at every thread count, exactly like exact.
        let run = |threads: usize, guided: bool| {
            let mut e = env(svm(), 10);
            let mut bo = if guided {
                BayesOpt::guided(23)
            } else {
                BayesOpt::new(23)
            };
            bo = bo.with_config(BoConfig {
                sparse: SparsePolicy {
                    threshold: 8,
                    inducing: 8,
                },
                refit_period: 4,
                scoring_threads: threads,
                max_iterations: 12,
                min_adaptive_samples: 12,
                ..BoConfig::default()
            });
            bo.tune(&mut e).unwrap();
            bo.trace().to_vec()
        };
        for guided in [false, true] {
            let serial = run(1, guided);
            assert!(
                serial.len() > 8 + 4,
                "trace must actually cross the sparse threshold"
            );
            for threads in [2, 8] {
                assert_eq!(serial, run(threads, guided), "guided={guided}");
            }
        }
    }

    #[test]
    fn sparse_proposals_stay_within_five_percent_of_exact() {
        // The regret gate: over fig20-style seeded runs, the best score a
        // sparse-surrogate BO reaches must stay within 5% of the exact-GP
        // best on the same workload and seeds.
        let best_with = |sparse: SparsePolicy, seed: u64| -> f64 {
            let mut e = env(sortbykey(), 30 + seed);
            let mut bo = BayesOpt::new(400 + seed * 19).with_config(BoConfig {
                sparse,
                max_iterations: 16,
                min_adaptive_samples: 16,
                ..BoConfig::default()
            });
            bo.tune(&mut e).unwrap();
            bo.trace()
                .iter()
                .map(|s| s.score_mins)
                .fold(f64::INFINITY, f64::min)
        };
        let tiny = SparsePolicy {
            threshold: 8,
            inducing: 8,
        };
        let mut exact_total = 0.0;
        let mut sparse_total = 0.0;
        for seed in 0..3 {
            let exact = best_with(SparsePolicy::exact(), seed);
            let sparse = best_with(tiny, seed);
            assert!(
                sparse <= exact * 1.05,
                "seed {seed}: sparse best {sparse} vs exact best {exact}"
            );
            exact_total += exact;
            sparse_total += sparse;
        }
        assert!(
            sparse_total <= exact_total * 1.05,
            "aggregate regret: sparse {sparse_total} vs exact {exact_total}"
        );
    }

    #[test]
    fn features_extend_with_q_when_guided() {
        let cluster = ClusterSpec::cluster_a();
        let space = ConfigSpace::for_app(&cluster, &svm());
        let x = [0.3, 0.5, 0.7, 0.2];
        let plain = BayesOpt::features(&space, None, &x);
        assert_eq!(plain.len(), 4);
    }
}
