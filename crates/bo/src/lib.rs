//! # relm-bo
//!
//! The Bayesian-Optimization tuners of §5:
//!
//! * [`BayesOpt`] — vanilla BO: a Gaussian-process surrogate over the
//!   4-dimensional configuration space, bootstrapped with Latin Hypercube
//!   samples (Table 7), driven by Expected Improvement, stopped by the
//!   CherryPick rule (EI below 10% of the incumbent and at least 6 adaptive
//!   samples).
//! * **GBO** (Guided Bayesian Optimization, §5.2) — the same optimizer with
//!   the surrogate's input extended by the three white-box metrics of model
//!   Q (Equation 8), computed from a profile of the first bootstrap run.
//! * Both variants can swap the Gaussian process for a Random Forest
//!   surrogate (§6.5, Figure 26).

pub mod bo;
pub mod reuse;

pub use bo::{BayesOpt, BoConfig, BoStep, SurrogateKind};
pub use reuse::{stats_fingerprint, ModelRepository, StoredModel};
