//! JSON text: a writer for [`Value`] trees and a recursive-descent parser.

use crate::value::{Map, Number, Value};
use crate::Error;
use std::fmt;

/// Writes a string with JSON escaping (quotes included).
pub fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0C}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

pub(crate) fn write_value(out: &mut impl fmt::Write, v: &Value) -> fmt::Result {
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(true) => out.write_str("true"),
        Value::Bool(false) => out.write_str("false"),
        Value::Number(Number::U64(x)) => write!(out, "{x}"),
        Value::Number(Number::I64(x)) => write!(out, "{x}"),
        Value::Number(Number::F64(x)) => {
            if x.is_finite() {
                // Rust's shortest-round-trip formatting: parsing the output
                // recovers the exact bit pattern.
                write!(out, "{x}")
            } else {
                // JSON has no Infinity/NaN literals; follow serde_json.
                out.write_str("null")
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_value(out, item)?;
            }
            out.write_char(']')
        }
        Value::Object(m) => {
            out.write_char('{')?;
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_escaped(out, k)?;
                out.write_char(':')?;
                write_value(out, item)?;
            }
            out.write_char('}')
        }
    }
}

/// Parses a JSON document into a [`Value`]. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            m.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let code = u32::from_str_radix(chunk, 16)
            .map_err(|_| Error::msg(format!("invalid \\u escape at byte {}", self.pos)))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let num = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer; fall back to f64 on i64 overflow.
            match stripped.parse::<i64>() {
                Ok(x) => Number::I64(-x),
                Err(_) => Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(x) => Number::U64(x),
                Err(_) => Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, 3.5, "x\n", true, null], "b": {"c": 0.25}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let a = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(a[3].as_str(), Some("x\n"));
        assert_eq!(
            obj.get("b")
                .unwrap()
                .as_object()
                .unwrap()
                .get("c")
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
    }

    #[test]
    fn writer_output_reparses() {
        let v = parse(r#"{"k":"quote \" backslash \\ tab \t","n":[1e-3,12345678901234567890]}"#)
            .unwrap();
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nulL").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
    }
}
