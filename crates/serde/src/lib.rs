//! An offline, dependency-free subset of `serde` with the same surface the
//! rest of this workspace uses: `#[derive(Serialize, Deserialize)]`,
//! `#[serde(transparent)]`, and JSON text round-trips via the sibling
//! `serde_json` facade.
//!
//! Unlike upstream serde's zero-copy visitor architecture, this subset pivots
//! every serialization through an owned [`Value`] tree — simpler, fully
//! deterministic (object keys keep insertion order), and fast enough for the
//! profiles and telemetry this workspace serializes. The build environment
//! has no access to crates.io, so the workspace resolves `serde`,
//! `serde_json`, `proptest`, and `criterion` to these in-tree
//! implementations via path dependencies.

mod text;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use text::{parse, write_escaped};
pub use value::{Map, Number, Value};

use std::fmt;

/// Serialization/deserialization error: a human-readable message describing
/// the first mismatch encountered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Standard "expected X, found Y" shape.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A value that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], or explains why it cannot.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up and deserializes a required object field (derive helper).
pub fn field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => Err(Error(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_int {
    ($($t:ty => $variant:ident as $prim:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $prim))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => *n,
                    _ => return Err(Error::expected(stringify!($t), v)),
                };
                let out = match n {
                    Number::U64(x) => <$t>::try_from(x)
                        .map_err(|_| Error::msg(format!("{x} out of range for {}", stringify!($t)))),
                    Number::I64(x) => <$t>::try_from(x)
                        .map_err(|_| Error::msg(format!("{x} out of range for {}", stringify!($t)))),
                    Number::F64(_) => Err(Error::expected(stringify!($t), v)),
                };
                out
            }
        }
    )*};
}

impl_ser_de_int! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::msg(format!(
                        "expected array of length {LEN}, found {}",
                        items.len()
                    ))),
                    _ => Err(Error::expected("array", v)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0.0f64, -1.5, 1e300, 0.1 + 0.2] {
            let text = v.to_value().to_string();
            let back = f64::from_value(&parse(&text).unwrap()).unwrap();
            assert_eq!(v, back, "f64 {v} round-trips exactly");
        }
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&i64::MIN.to_value()).unwrap(), i64::MIN);
        assert_eq!(
            String::from_value(&"a\"b\\c\n".to_value()).unwrap(),
            "a\"b\\c\n"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back = Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let arr = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(arr, back);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&1.0.to_value()).unwrap(),
            Some(1.0)
        );
    }

    #[test]
    fn missing_field_reports_key() {
        let m = Map::new();
        let err = field::<f64>(&m, "runtime").unwrap_err();
        assert!(err.to_string().contains("runtime"));
    }
}
