//! The JSON data model: [`Value`], [`Number`], and an insertion-ordered
//! [`Map`].

use std::fmt;

/// A JSON number. Integers keep their exact representation so that `u64`
/// counters survive a round-trip without passing through `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer literal.
    U64(u64),
    /// Negative integer literal.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(x) => x as f64,
            Number::I64(x) => x as f64,
            Number::F64(x) => x,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b,
            // Mixed integer comparisons promote to i128.
            (Number::U64(a), Number::I64(b)) | (Number::I64(b), Number::U64(a)) => {
                a as i128 == b as i128
            }
            (a @ Number::F64(_), b) | (b, a @ Number::F64(_)) => a.as_f64() == b.as_f64(),
        }
    }
}

/// An insertion-ordered string→value map. JSON objects in this workspace are
/// small (struct fields), so linear lookup beats hashing and — more
/// importantly — serialization output is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Appends a key/value pair (replaces an existing key).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Numeric literal.
    Number(Number),
    /// String literal.
    String(String),
    /// `[ ... ]`
    Array(Vec<Value>),
    /// `{ ... }`
    Object(Map),
}

impl Value {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(x)) => Some(*x),
            Value::Number(Number::I64(x)) => u64::try_from(*x).ok(),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::text::write_value(f, self)
    }
}
