//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree serde
//! subset.
//!
//! The registry is unreachable in this build environment, so `syn`/`quote`
//! are unavailable; the input item is parsed directly from the
//! `proc_macro::TokenStream` and the generated impl is assembled as source
//! text. Supported shapes cover everything this workspace derives:
//!
//! * structs with named fields (including plain type generics, e.g.
//!   `Timeline<T>`),
//! * newtype/tuple structs (newtypes serialize transparently, matching both
//!   upstream serde's newtype behavior and `#[serde(transparent)]`),
//! * enums with unit, tuple, and struct variants (externally tagged:
//!   `"Variant"` or `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
}

enum Body {
    /// `struct S;`
    Unit,
    /// `struct S { a: A, b: B }`
    Named(Vec<Field>),
    /// `struct S(A, B);` — arity recorded.
    Tuple(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input);
    let source = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    source.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected item name, found {t}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            t => panic!("unsupported struct body: {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            t => panic!("expected enum body, found {t:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        body,
    }
}

/// Skips outer attributes (`#[...]`, including doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parses `<A, B, ...>` after the item name, returning the plain type-param
/// names. Bounds, lifetimes, defaults, and const params are not needed by
/// this workspace and are rejected loudly rather than silently mis-derived.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*i) else {
        return params;
    };
    if p.as_char() != '<' {
        return params;
    }
    *i += 1;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *i += 1;
                return params;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => *i += 1,
            Some(TokenTree::Ident(id)) => {
                params.push(id.to_string());
                *i += 1;
            }
            t => panic!("unsupported generic parameter: {t:?}"),
        }
    }
}

/// Parses `name: Type, ...` (with per-field attributes and visibility).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected field name, found {t}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("expected `:` after field `{name}`, found {t}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name });
    }
    fields
}

/// Counts the fields of a tuple struct/variant (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 == tokens.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, found {t}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        // Skip a discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<A: Bound, B: Bound> Trait for Name<A, B>` header pieces.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Named(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(\"{0}\", ::serde::Serialize::to_value(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "Self::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{vname}({binds}) => {{\n\
                             let mut __o = ::serde::Map::new();\n\
                             __o.insert(\"{vname}\", {inner});\n\
                             ::serde::Value::Object(__o)\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut __m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(\"{0}\", ::serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{vname} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __o = ::serde::Map::new();\n\
                             __o.insert(\"{vname}\", ::serde::Value::Object(__m));\n\
                             ::serde::Value::Object(__o)\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
        Body::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 Ok({name}({items})),\n\
                 __other => Err(::serde::Error::expected(\"array of length {n}\", __other)),\n}}",
                items = items.join(", ")
            )
        }
        Body::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{0}: ::serde::field(__m, \"{0}\")?", f.name))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Object(__m) => Ok({name} {{ {items} }}),\n\
                 __other => Err(::serde::Error::expected(\"object\", __other)),\n}}",
                items = items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok(Self::{vname}),\n"))
                    }
                    VariantBody::Tuple(n) => {
                        let inner = if *n == 1 {
                            format!("Ok(Self::{vname}(::serde::Deserialize::from_value(__inner)?))")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "match __inner {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                                 Ok(Self::{vname}({items})),\n\
                                 __other => Err(::serde::Error::expected(\
                                 \"array of length {n}\", __other)),\n}}",
                                items = items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vname}\" => {{ {inner} }}\n"));
                    }
                    VariantBody::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{0}: ::serde::field(__m, \"{0}\")?", f.name))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                             ::serde::Value::Object(__m) => \
                             Ok(Self::{vname} {{ {items} }}),\n\
                             __other => Err(::serde::Error::expected(\"object\", __other)),\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __inner) = __o.iter().next().expect(\"len checked\");\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}}\n\
                 __other => Err(::serde::Error::expected(\"{name} variant\", __other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
